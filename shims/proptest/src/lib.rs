//! In-tree shim for the `proptest` API surface this workspace's tests
//! use: the [`Strategy`] trait (ranges, tuples, `prop_map`, `Just`,
//! collections, `any`), the `proptest!`/`prop_oneof!` macros and the
//! `prop_assert*` family.
//!
//! Differences from the real crate, deliberate for a registry-less
//! build: no shrinking (a failing case panics with the generated inputs
//! still bound — rerun under a debugger or add prints), and generation
//! is driven by a fixed per-test seed derived from the test name, so
//! runs are deterministic.

use std::rc::Rc;

pub mod test_runner {
    /// Per-test configuration. Only `cases` matters to the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a generated case did not pass. `prop_assert*` panic instead
    /// (no shrink phase), but bodies may still build and `?`-propagate
    /// these explicitly.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property is false for this input.
        Fail(String),
        /// The input should not count as a case.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Deterministic generation source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            // Multiply-shift; bias is negligible for test generation.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A value generator. Unlike the real crate there is no intermediate
/// value tree: strategies produce final values directly.
pub trait Strategy: Clone {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Retry until `pred` holds (bounded; panics if the predicate is
    /// never satisfied in 1000 draws).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
    }
}

/// A type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O + Clone> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool + Clone> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter never satisfied: {}", self.reason);
    }
}

/// A constant strategy.
#[derive(Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Weighted union of same-valued strategies (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty());
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof weights sum to zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

// Ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "anything" strategy (the shim's `Arbitrary`).
pub trait Arbitrary: Sized + Clone + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T`.
#[derive(Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Sizes acceptable to the collection strategies: a fixed `usize` or
    /// a `Range<usize>`.
    #[derive(Clone)]
    pub enum SizeRange {
        Fixed(usize),
        Range(Range<usize>),
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            match self {
                SizeRange::Fixed(n) => *n,
                SizeRange::Range(r) => {
                    assert!(r.start < r.end, "empty collection size range");
                    r.start + rng.below((r.end - r.start) as u64) as usize
                }
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Range(r)
        }
    }

    /// `Vec` of generated elements.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeMap` of generated entries. The size bound applies to the
    /// number of *insertions*; duplicate keys collapse, matching the
    /// real crate's semantics loosely.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    /// Any boolean.
    pub const ANY: crate::Any<bool> = crate::Any(std::marker::PhantomData);
}

/// One generated case per property; see the `proptest!` macro.
#[macro_export]
macro_rules! prop_oneof {
    // Weighted arms: `w => strategy`.
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    // Unweighted arms.
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Assertion macros: the shim panics immediately (no shrink phase).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// The property-test entry point. Supports the forms used in this
/// workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0u64..100, ys in prop::collection::vec(any::<bool>(), 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = $cfg:expr; ) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Deterministic per-test seed: runs are reproducible.
            let seed = {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                stringify!($name).hash(&mut h);
                h.finish()
            };
            let mut rng = $crate::test_runner::TestRng::seed(seed);
            #[allow(clippy::redundant_clone)]
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                // Bodies may `?`-propagate TestCaseError like the real
                // crate; assertion macros panic directly.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!("proptest case {} {e}", _case),
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// Everything the tests import.
pub mod prelude {
    /// The real crate re-exports itself as `prop` in the prelude so
    /// `prop::collection::vec(..)` resolves.
    pub use crate as prop;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed(1);
        for _ in 0..1000 {
            let v = (0u64..10, 5usize..6).generate(&mut rng);
            assert!(v.0 < 10);
            assert_eq!(v.1, 5);
        }
    }

    #[test]
    fn oneof_respects_weights_loosely() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::test_runner::TestRng::seed(2);
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 700, "weighted arm starved: {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(
            xs in prop::collection::vec(0u64..50, 1..20),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(xs.iter().all(|&x| x < 50));
            prop_assert!(!xs.is_empty());
            let _ = flag;
        }
    }
}
