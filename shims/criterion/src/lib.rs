//! In-tree shim for the `criterion` API surface this workspace's benches
//! use. Measurement is deliberately simple: each benchmark runs for up to
//! `sample_size` samples or `measurement_time`, whichever bound hits
//! first, after a single warm-up run, and the mean wall-clock time per
//! iteration is printed as
//!
//! ```text
//! bench  <group>/<id>  <mean>  [<throughput> elem/s]
//! ```
//!
//! No statistics, plots, or baselines — swap in the real crate when the
//! registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost (ignored by the shim: every
/// batch is one input).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_millis(800),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Builder: number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Builder: measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Builder: warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.cfg,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_one(&self.cfg, "", &id.into().id, None, f);
    }

    /// No-op (the real crate prints its summary here).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: Config,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Measurement budget within this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Warm-up budget within this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_one(&self.cfg, &self.name, &id.into().id, self.throughput, f);
    }

    /// Run a parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.cfg, &self.name, &id.id, self.throughput, |b| {
            f(b, input)
        });
    }

    /// Close the group (no-op).
    pub fn finish(self) {}
}

fn run_one(
    cfg: &Config,
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        cfg: *cfg,
    };
    f(&mut b);
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.iters == 0 {
        println!("bench  {full:<48} (no iterations)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let mut line = format!("bench  {full:<48} {}", fmt_ns(per_iter));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / (per_iter / 1e9);
        line.push_str(&format!("   {rate:.3e} {unit}"));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:8.1} µs/iter", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.1} ms/iter", ns / 1e6)
    } else {
        format!("{:8.2}  s/iter", ns / 1e9)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    cfg: Config,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: a single run (bounded by nothing — benches here are
        // short; the real crate runs for warm_up_time).
        black_box(routine());
        let deadline = Instant::now() + self.cfg.measurement_time;
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.cfg.measurement_time;
        for _ in 0..self.cfg.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Define a benchmark group function, mirroring the real macro's two
/// forms (with and without an explicit `config`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
