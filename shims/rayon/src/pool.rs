//! The work-stealing fork-join runtime behind [`join`].
//!
//! ## Shape
//!
//! A lazily-initialized **global pool** of `N` worker threads (`N` from
//! [`std::thread::available_parallelism`], overridable with the
//! `MVCC_POOL_THREADS` environment variable; `N = 1` spawns no threads
//! and degenerates to sequential execution). Each worker owns a LIFO
//! deque of pending jobs; threads that are not pool workers submit
//! through a shared FIFO **injector**. Idle workers steal from the back
//! of the injector's front and from random siblings' deque fronts.
//!
//! ## The `join` protocol
//!
//! `join(a, b)` publishes `b` as a stack-allocated job (own deque if the
//! caller is a worker, injector otherwise), runs `a` inline, then tries
//! to get `b` back: the LIFO pop usually recovers it untouched
//! (steal-back — the common, allocation-cheap path), and if another
//! thread already stole `b` the caller *helps*: it executes other
//! pending jobs while waiting on `b`'s latch instead of blocking. A
//! panic in either closure is captured and re-thrown at the `join` call
//! site — but only after **both** halves have finished, because `b`
//! borrows the caller's stack frame.
//!
//! ## Lifecycle
//!
//! [`shutdown`] stops and joins every worker (see [`live_workers`]) and
//! returns the global slot to "uninitialized": the next `join` builds a
//! fresh pool. [`set_pool_threads`] does the same and overrides the
//! worker count — benches use it to sweep 1/2/4/`nproc` in-process.
//! Blocked `join`s survive a concurrent shutdown: a caller that cannot
//! find its stolen half simply executes the job itself once the queues
//! drain, so no job is ever abandoned.
//!
//! ## Safety
//!
//! Jobs are raw pointers to stack frames (`StackJob`), erased through
//! `JobRef`. The invariant making this sound: a `JobRef` is consumed
//! by exactly one executor (deque/injector pops are destructive), and
//! the frame that owns the job never returns before the job's latch is
//! set, which happens only after execution finished and the result (or
//! panic payload) was stored.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread;
use std::time::Duration;

// ---------------------------------------------------------------------
// Jobs and latches
// ---------------------------------------------------------------------

/// Type-erased pointer to a [`StackJob`] pending on some queue.
struct JobRef {
    ptr: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: the pointee is a `StackJob` whose closure and result types are
// `Send`; the single-consumer queue discipline (see module docs) means
// exactly one thread dereferences the pointer.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Execute the job. The caller must have popped this ref from a
    /// queue (sole ownership).
    unsafe fn execute(self) {
        unsafe { (self.exec)(self.ptr) }
    }
}

/// Completion flag wired to the forking thread for prompt wake-up.
struct Latch {
    done: AtomicBool,
    /// The thread blocked in `join` waiting on this latch.
    owner: thread::Thread,
}

impl Latch {
    fn new() -> Self {
        Latch {
            done: AtomicBool::new(false),
            owner: thread::current(),
        }
    }

    #[inline]
    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn set(&self) {
        // Clone the handle *before* publishing: the instant `done` reads
        // true the owner may take the result, return, and pop the stack
        // frame holding this latch — `self` must not be touched after
        // the store.
        let owner = self.owner.clone();
        self.done.store(true, Ordering::Release);
        owner.unpark();
    }
}

/// A fork-join job allocated on the forker's stack: closure in, result
/// (or panic payload) out, completion signalled through a [`Latch`].
struct StackJob<F, R> {
    func: Cell<Option<F>>,
    result: Cell<Option<thread::Result<R>>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        StackJob {
            func: Cell::new(Some(f)),
            result: Cell::new(None),
            latch: Latch::new(),
        }
    }

    /// Erase into a queueable [`JobRef`].
    ///
    /// # Safety
    /// The caller must keep `self` alive (and at a stable address) until
    /// the latch is set, and must enqueue the ref on at most one queue.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            ptr: self as *const Self as *const (),
            exec: Self::execute_erased,
        }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let this = unsafe { &*(ptr as *const Self) };
        let func = this.func.take().expect("job executed twice");
        // Capture a panic instead of unwinding through the worker loop;
        // the payload re-throws at the join call site.
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        this.result.set(Some(result));
        this.latch.set();
    }

    /// Take the stored result. Only valid after the latch is set.
    fn take_result(&self) -> thread::Result<R> {
        self.result.take().expect("join result missing")
    }
}

// SAFETY: a `StackJob` is shared across threads as a raw pointer but the
// protocol gives each field a single writer at a time: `func` is taken
// once by the sole executor, `result` is written by the executor and read
// by the owner only after the latch's release/acquire edge.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

// ---------------------------------------------------------------------
// Pool core
// ---------------------------------------------------------------------

/// One worker's job queue. The owner pushes and pops at the back (LIFO:
/// hot, recently forked subtrees first); thieves pop at the front
/// (FIFO: the biggest, oldest subtrees — classic work-stealing order).
struct Worker {
    deque: Mutex<VecDeque<JobRef>>,
}

struct PoolCore {
    /// Distinguishes pool generations so a thread-local worker identity
    /// from a shut-down pool is never mistaken for a current one.
    id: usize,
    workers: Box<[Worker]>,
    /// FIFO queue for submissions from threads outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// Sleep support: workers with nothing to do wait here.
    idle: Mutex<()>,
    idle_cv: Condvar,
    /// Number of workers currently waiting on `idle_cv` (gates the
    /// notify so an all-busy pool never touches the idle lock).
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
}

/// Workers alive across all pool generations — observability for the
/// "no leaked threads" tests.
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Worker identity of the current thread: `(pool generation id, worker
/// index)`, or `NOT_A_WORKER`.
const NOT_A_WORKER: (usize, usize) = (0, 0);

thread_local! {
    static WORKER_ID: Cell<(usize, usize)> = const { Cell::new(NOT_A_WORKER) };
    /// How many *alien* jobs (other computations' forks) the current
    /// thread is executing nested inside `join` wait loops right now.
    static HELP_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Cap on nested alien helps per worker thread: each help level can add
/// a whole sequential subtree recursion to the stack, so an unbounded
/// chain (thousands of pending jobs on a loaded pool) overflows. Workers
/// get [`WORKER_STACK`]-sized stacks to match this budget.
const MAX_HELP_DEPTH_WORKER: usize = 32;
/// External (non-pool) threads help too, but their stacks are whatever
/// the embedding application chose (test threads: 2 MiB), so they get a
/// much smaller budget and park sooner.
const MAX_HELP_DEPTH_EXTERNAL: usize = 2;
/// Worker thread stack size: roomy enough for the help-depth budget
/// times a deep sequential recursion (virtual memory, mapped lazily).
const WORKER_STACK: usize = 16 << 20;

#[inline]
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Job closures run outside any guard and workers catch their panics,
    // so poisoning can only come from a user panic at a harmless point;
    // the queues themselves are always consistent between locks.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Cheap xorshift for the randomized steal order.
#[inline]
fn xorshift(seed: &mut u64) -> u64 {
    let mut x = *seed;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *seed = x;
    x
}

impl PoolCore {
    /// This thread's worker index in *this* pool, if any.
    fn my_index(&self) -> Option<usize> {
        let (pool, index) = WORKER_ID.with(|w| w.get());
        (pool == self.id).then_some(index)
    }

    /// Enqueue a job from the current thread and wake a sleeper.
    ///
    /// # Safety
    /// See [`StackJob::as_job_ref`]: the job must outlive its execution.
    unsafe fn publish(&self, job: JobRef) {
        match self.my_index() {
            Some(i) => lock(&self.workers[i].deque).push_back(job),
            None => lock(&self.injector).push_back(job),
        }
        self.notify();
    }

    fn notify(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            // Taking the idle lock orders this notify after any sleeper
            // that incremented `sleepers` but has not started waiting.
            // One job was published, so one waker suffices — waking the
            // whole pool per fork is a thundering herd of deque-lock
            // sweeps (the wait timeout covers any lost-wakeup edge).
            let _g = lock(&self.idle);
            self.idle_cv.notify_one();
        }
    }

    /// Pop one pending job: own deque back (LIFO steal-back), then the
    /// injector, then a randomized sweep of sibling deque fronts.
    fn find_work(&self, my: Option<usize>, seed: &mut u64) -> Option<JobRef> {
        if let Some(i) = my {
            if let Some(job) = lock(&self.workers[i].deque).pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = lock(&self.injector).pop_front() {
            return Some(job);
        }
        let n = self.workers.len();
        let start = (xorshift(seed) % n as u64) as usize;
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == my {
                continue;
            }
            if let Some(job) = lock(&self.workers[victim].deque).pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Remove and return the specific pending job `target` if it is
    /// still claimable by its forker: the back of the forker's own deque
    /// (LIFO discipline puts the current frame's fork on top whenever
    /// the forker is at its wait loop), or anywhere in the injector for
    /// an external forker. Address comparison is unambiguous — a queued
    /// ref and a live `StackJob` at the same address are the same job.
    fn reclaim(&self, my: Option<usize>, target: *const ()) -> Option<JobRef> {
        match my {
            Some(i) => {
                let mut dq = lock(&self.workers[i].deque);
                if dq.back().is_some_and(|j| j.ptr == target) {
                    dq.pop_back()
                } else {
                    None
                }
            }
            None => {
                let mut inj = lock(&self.injector);
                let pos = inj.iter().position(|j| j.ptr == target)?;
                inj.remove(pos)
            }
        }
    }

    /// Racy "is anything queued" check used only on the idle path.
    fn has_queued(&self) -> bool {
        if !lock(&self.injector).is_empty() {
            return true;
        }
        self.workers.iter().any(|w| !lock(&w.deque).is_empty())
    }
}

fn worker_main(core: Arc<PoolCore>, index: usize) {
    WORKER_ID.with(|w| w.set((core.id, index)));
    let mut seed = 0x9E37_79B9_7F4A_7C15u64 ^ ((index as u64 + 1) << 32) ^ core.id as u64;
    loop {
        if let Some(job) = core.find_work(Some(index), &mut seed) {
            // SAFETY: popped from a queue — we are the sole executor.
            unsafe { job.execute() };
            continue;
        }
        if core.shutdown.load(Ordering::Acquire) {
            // Quiescent and told to stop. Any job published after our
            // last sweep is picked up by its (still-live) forker, which
            // self-executes once the queues stay empty.
            break;
        }
        let guard = lock(&core.idle);
        if core.shutdown.load(Ordering::Acquire) || core.has_queued() {
            continue;
        }
        core.sleepers.fetch_add(1, Ordering::Relaxed);
        // Wake-ups are notify-driven (`publish` → `notify`); the timeout
        // only bounds the one unavoidable race (a publish between our
        // `has_queued` sweep and the wait), so it can be generous —
        // short timeouts make idle workers churn the scheduler, which
        // costs real throughput on time-sliced single-core hosts.
        let _ = core.idle_cv.wait_timeout(guard, Duration::from_millis(20));
        core.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
    LIVE_WORKERS.fetch_sub(1, Ordering::Release);
}

// ---------------------------------------------------------------------
// Global pool slot
// ---------------------------------------------------------------------

enum State {
    /// No decision yet: the next `join` initializes.
    Uninit,
    /// One usable thread — run every `join` sequentially, spawn nothing.
    Sequential,
    Running(PoolHandle),
}

struct PoolHandle {
    core: Arc<PoolCore>,
    handles: Vec<thread::JoinHandle<()>>,
}

static STATE: RwLock<State> = RwLock::new(State::Uninit);
/// Worker-count override installed by [`set_pool_threads`]; 0 = unset
/// (fall back to `MVCC_POOL_THREADS`, then `available_parallelism`).
static OVERRIDE_THREADS: AtomicUsize = AtomicUsize::new(0);
/// Pool generation ids (start at 1 so `NOT_A_WORKER` never matches).
static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(1);

/// The worker count the next (re)initialization will use.
fn configured_threads() -> usize {
    let over = OVERRIDE_THREADS.load(Ordering::Relaxed);
    if over != 0 {
        return over;
    }
    match std::env::var("MVCC_POOL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        // `0` reads as "no workers" — sequential, like `1` (and unlike
        // `set_pool_threads(0)`, whose 0 clears the override).
        Some(n) => n.max(1),
        None => thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

fn read_state() -> std::sync::RwLockReadGuard<'static, State> {
    STATE.read().unwrap_or_else(|e| e.into_inner())
}

fn write_state() -> std::sync::RwLockWriteGuard<'static, State> {
    STATE.write().unwrap_or_else(|e| e.into_inner())
}

/// The running pool, initializing it on first use. `None` means
/// sequential mode.
fn current_core() -> Option<Arc<PoolCore>> {
    loop {
        match &*read_state() {
            State::Sequential => return None,
            State::Running(h) => return Some(h.core.clone()),
            State::Uninit => {}
        }
        // A pool worker observing Uninit is racing a shutdown() that
        // already detached its generation and is now joining it.
        // Re-creating the global pool from inside the dying one would
        // hand shutdown's caller live workers it can never see; run
        // this join inline instead (always correct, and the worker is
        // about to exit anyway).
        if WORKER_ID.with(|w| w.get()) != NOT_A_WORKER {
            return None;
        }
        let mut state = write_state();
        if let State::Uninit = &*state {
            *state = init_pool(configured_threads());
        }
    }
}

fn init_pool(threads: usize) -> State {
    if threads <= 1 {
        return State::Sequential;
    }
    let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
    let core = Arc::new(PoolCore {
        id,
        workers: (0..threads)
            .map(|_| Worker {
                deque: Mutex::new(VecDeque::new()),
            })
            .collect(),
        injector: Mutex::new(VecDeque::new()),
        idle: Mutex::new(()),
        idle_cv: Condvar::new(),
        sleepers: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
    });
    let handles = (0..threads)
        .map(|index| {
            let core = Arc::clone(&core);
            LIVE_WORKERS.fetch_add(1, Ordering::Relaxed);
            thread::Builder::new()
                .name(format!("mvcc-pool-{index}"))
                .stack_size(WORKER_STACK)
                .spawn(move || worker_main(core, index))
                .expect("failed to spawn pool worker")
        })
        .collect();
    State::Running(PoolHandle { core, handles })
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Run both closures, potentially in parallel, and return their results.
///
/// With a multi-threaded pool `b` is published for stealing while `a`
/// runs inline on the calling thread; the caller then steals `b` back
/// (or helps execute other pending jobs until `b`'s thief finishes). A
/// panic in either closure propagates to the caller — after both halves
/// have completed, so borrowed stack data stays valid throughout.
///
/// With `MVCC_POOL_THREADS=1` (or a single-core host) this is exactly
/// the old sequential shim: `a` then `b` on the calling thread.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_core() {
        None => (oper_a(), oper_b()),
        Some(core) => join_parallel(&core, oper_a, oper_b),
    }
}

fn join_parallel<A, B, RA, RB>(core: &PoolCore, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(oper_b);
    // SAFETY: `job_b` lives on this frame, and this function does not
    // return before `job_b.latch` is set (the wait loop below), so the
    // erased pointer outlives its single execution.
    unsafe { core.publish(job_b.as_job_ref()) };

    // Run `a` inline. A panic may not unwind yet: `b` borrows this frame.
    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    let my = core.my_index();
    let b_ptr = &job_b as *const StackJob<B, RB> as *const ();
    let mut seed = (b_ptr as u64) | 1;
    while !job_b.latch.probe() {
        // Steal-back first: if nobody took `b`, reclaim it and run it
        // inline — the common path, costing one lock and no context
        // switch, and (like sequential execution would) adding only the
        // computation's own recursion depth to the stack.
        if let Some(job) = core.reclaim(my, b_ptr) {
            // SAFETY: removed from a queue — sole executor.
            unsafe { job.execute() };
            continue; // latch is now set
        }
        // `b` was stolen and is running on its thief. Help with other
        // pending jobs instead of blocking — but only up to a depth
        // budget, because every alien job can itself wait and help,
        // and an unbounded chain overflows the stack. Past the budget
        // we park; `b`'s completion is the thief's responsibility and
        // its latch-set unparks us (the timeout bounds the
        // probe-to-park race and any missed work re-check).
        let depth = HELP_DEPTH.get();
        let budget = if my.is_some() {
            MAX_HELP_DEPTH_WORKER
        } else {
            MAX_HELP_DEPTH_EXTERNAL
        };
        if depth < budget {
            if let Some(job) = core.find_work(my, &mut seed) {
                HELP_DEPTH.set(depth + 1);
                // SAFETY: popped from a queue — sole executor.
                unsafe { job.execute() };
                HELP_DEPTH.set(depth);
                continue;
            }
        }
        if !job_b.latch.probe() {
            thread::park_timeout(Duration::from_micros(100));
        }
    }
    let result_b = job_b.take_result();

    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        // `a`'s panic wins when both halves panicked (it happened first
        // from the program-order point of view); `b`'s payload is
        // dropped in that case.
        (Err(payload), _) => panic::resume_unwind(payload),
        (_, Err(payload)) => panic::resume_unwind(payload),
    }
}

/// Number of threads `join` currently fans out over: the live pool's
/// worker count, or what the next initialization would use.
pub fn current_num_threads() -> usize {
    match &*read_state() {
        State::Running(h) => h.core.workers.len(),
        State::Sequential => 1,
        State::Uninit => configured_threads(),
    }
}

/// Workers currently alive (0 after a completed [`shutdown`]) — the
/// thread-leak oracle for tests.
pub fn live_workers() -> usize {
    LIVE_WORKERS.load(Ordering::Acquire)
}

/// Stop and join every worker of the global pool, returning the slot to
/// "uninitialized" (the next [`join`] re-creates it). Safe to call
/// concurrently with in-flight `join`s: their forkers self-execute any
/// job the exiting workers left behind. Intended for tests, benches and
/// orderly teardown; a process exit without it is also fine (workers
/// never hold resources that outlive the process).
pub fn shutdown() {
    let prev = std::mem::replace(&mut *write_state(), State::Uninit);
    if let State::Running(handle) = prev {
        handle.core.shutdown.store(true, Ordering::Release);
        {
            let _g = lock(&handle.core.idle);
            handle.core.idle_cv.notify_all();
        }
        for h in handle.handles {
            let _ = h.join();
        }
    }
}

/// Shut the pool down and pin the worker count of the next
/// initialization to `threads` (`0` clears the override, restoring the
/// `MVCC_POOL_THREADS`/`available_parallelism` default). Benches use
/// this to sweep worker counts in one process.
pub fn set_pool_threads(threads: usize) {
    // Install the override *before* tearing the pool down so a join
    // racing the shutdown re-initializes at the new width, not the old.
    OVERRIDE_THREADS.store(threads, Ordering::Relaxed);
    shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Every test reconfigures the one global pool, so they serialize.
    static POOL_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = lock(&POOL_TEST_LOCK);
        set_pool_threads(n);
        let r = f();
        set_pool_threads(0);
        shutdown();
        assert_eq!(live_workers(), 0, "workers must not leak across tests");
        r
    }

    /// Parallel recursive sum over a range — exercises nested joins at
    /// every level.
    fn sum(lo: u64, hi: u64) -> u64 {
        if hi - lo <= 64 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
        a + b
    }

    #[test]
    fn nested_joins_compute_correctly() {
        for threads in [1, 2, 4] {
            let got = with_threads(threads, || sum(0, 100_000));
            assert_eq!(got, (0..100_000u64).sum::<u64>(), "threads={threads}");
        }
    }

    #[test]
    fn join_runs_closures_exactly_once() {
        with_threads(3, || {
            let calls = AtomicU64::new(0);
            for _ in 0..1_000 {
                let ((), ()) = join(
                    || {
                        calls.fetch_add(1, Ordering::Relaxed);
                    },
                    || {
                        calls.fetch_add(1 << 32, Ordering::Relaxed);
                    },
                );
            }
            let v = calls.load(Ordering::Relaxed);
            assert_eq!(v & 0xFFFF_FFFF, 1_000);
            assert_eq!(v >> 32, 1_000);
        });
    }

    #[test]
    fn panic_in_either_half_propagates() {
        with_threads(2, || {
            for (which, expect) in [("a", "boom-a"), ("b", "boom-b")] {
                let caught = panic::catch_unwind(|| {
                    join(
                        || {
                            if which == "a" {
                                panic!("boom-a")
                            }
                        },
                        || {
                            if which == "b" {
                                panic!("boom-b")
                            }
                        },
                    )
                });
                let payload = caught.expect_err("panic must propagate");
                let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, expect);
            }
            // The pool survives propagated panics.
            assert_eq!(join(|| 1, || 2), (1, 2));
        });
    }

    #[test]
    fn deep_panic_under_load_does_not_deadlock() {
        with_threads(4, || {
            for round in 0..50 {
                let r = panic::catch_unwind(|| {
                    join(
                        || sum(0, 50_000),
                        || {
                            let _ = sum(0, 10_000);
                            panic!("late panic {round}");
                        },
                    )
                });
                assert!(r.is_err());
            }
            assert_eq!(join(|| 1, || 2), (1, 2));
        });
    }

    #[test]
    fn sequential_fallback_spawns_no_threads() {
        with_threads(1, || {
            assert_eq!(current_num_threads(), 1);
            assert_eq!(sum(0, 10_000), (0..10_000u64).sum::<u64>());
            assert_eq!(live_workers(), 0, "N=1 must not spawn workers");
        });
    }

    #[test]
    fn join_from_external_thread_completes() {
        with_threads(2, || {
            // The spawned thread is not a pool worker: its `b` goes
            // through the injector and it helps while waiting.
            let out = thread::spawn(|| sum(0, 200_000)).join().unwrap();
            assert_eq!(out, (0..200_000u64).sum::<u64>());
        });
    }

    #[test]
    fn shutdown_joins_all_workers_and_pool_reinitializes() {
        let _g = lock(&POOL_TEST_LOCK);
        set_pool_threads(4);
        assert_eq!(join(|| 40, || 2), (40, 2));
        assert_eq!(live_workers(), 4);
        shutdown();
        assert_eq!(live_workers(), 0, "shutdown must join every worker");
        // Next join lazily re-creates the pool at the configured width.
        assert_eq!(join(|| 4, || 2), (4, 2));
        assert_eq!(live_workers(), 4);
        set_pool_threads(0);
        shutdown();
        assert_eq!(live_workers(), 0);
    }

    #[test]
    fn results_move_through_join() {
        with_threads(2, || {
            let (a, b) = join(|| vec![1u8, 2, 3], || "hello".to_string());
            assert_eq!(a, vec![1, 2, 3]);
            assert_eq!(b, "hello");
        });
    }
}
