//! In-tree shim for the `rayon` API surface this workspace uses, backed
//! by a real work-stealing fork-join pool (see [`pool`]).
//!
//! Historical note: this shim used to execute `join(a, b)` sequentially,
//! and tree code leaned on a documented crutch — "same-thread execution
//! keeps thread-local `AllocCtx` pins in effect across both halves".
//! **That guarantee is gone.** `join` now runs its halves on a global
//! pool of `N` workers (`N` from [`std::thread::available_parallelism`]):
//! the second closure may execute on a different thread, with that
//! thread's own thread-local state. Code that routes allocation through
//! thread-local pins must re-acquire a per-task context inside each
//! closure (`mvcc-ftree` does this via `Arena::task_ctx`).
//!
//! ## Forcing sequential execution
//!
//! Set `MVCC_POOL_THREADS=1` (or `0`) to restore the old behaviour
//! exactly — no worker threads are spawned and `join(a, b)` runs `a`
//! then `b` on the calling thread. This is the supported escape hatch
//! for debugging (deterministic schedules, clean backtraces, `perf` on
//! one thread). Values ≥ 2 pin the worker count; unset or unparseable,
//! the pool sizes itself to the host. Programmatic equivalent:
//! [`pool::set_pool_threads`] (where `0` instead clears the override).

pub mod pool;

pub use pool::join;
