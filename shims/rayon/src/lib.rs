//! In-tree shim for the `rayon` API surface this workspace uses.
//!
//! The build environment has no registry access, so fork-join calls
//! execute sequentially: `join(a, b)` runs `a` then `b` on the calling
//! thread. This preserves every correctness property the tree code
//! relies on (same-thread execution also keeps arena allocation-context
//! pins, which are thread-local, in effect across both halves). Swap in
//! the real crate for multi-core span benefits.

/// Run both closures and return their results. Sequential: `a` first.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}
