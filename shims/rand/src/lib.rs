//! In-tree shim for the `rand` API surface this workspace uses: the
//! `Rng`/`RngCore`/`SeedableRng` traits, `StdRng`/`SmallRng` (both
//! SplitMix64 — deterministic, fast, statistically fine for workload
//! generation, NOT cryptographic), slice shuffling, and uniform range
//! sampling for the integer/float types the workspace draws.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types drawable uniformly from an [`RngCore`] via [`Rng::gen`].
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform draw in `[0, n)` via 128-bit multiply
/// with rejection on the biased zone (Lemire's method).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// PRNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard PRNG (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// A small fast PRNG (same core as [`StdRng`] in this shim).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng {
            state: seed ^ 0xA076_1D64_78BD_642F,
        }
    }
}

/// Named-RNG module mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::{SmallRng, StdRng};
}

/// Slice extensions (Fisher–Yates shuffle).
pub trait SliceRandom {
    type Item;

    /// Uniform random permutation in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniform random element, `None` on empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

/// Everything a workload generator needs in one import.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom, SmallRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..10_000 {
            let x: u64 = a.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = a.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
            let i: i32 = a.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn range_draws_cover_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
