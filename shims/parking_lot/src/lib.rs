//! In-tree shim for the `parking_lot` API surface this workspace uses:
//! `Mutex`, `RwLock` (including the `arc_lock` owned guards). Locks are
//! word-sized spin locks that yield to the scheduler while contended —
//! no poisoning, same guard types and method names as the real crate.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

const WRITER: u32 = 1 << 31;

/// Marker type standing in for `parking_lot::RawRwLock` in guard types.
pub struct RawRwLock(());

#[inline]
fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A mutual exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized> {
    state: AtomicU32,
    value: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            state: AtomicU32::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, spinning/yielding until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let mut spins = 0;
        while self
            .state
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff(&mut spins);
        }
        MutexGuard { lock: self }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.state
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| MutexGuard { lock: self })
    }

    /// Exclusive access through a unique reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        unsafe { &mut *self.value.get() }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.state.store(0, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A reader-writer lock (no poisoning, writer-preferring is not
/// guaranteed — acquisition order is a CAS race like a spin lock).
pub struct RwLock<T: ?Sized> {
    state: AtomicU32, // WRITER bit | reader count
    value: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Create an unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            state: AtomicU32::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn acquire_shared(&self) {
        let mut spins = 0;
        loop {
            let s = self.state.load(Ordering::Relaxed);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            backoff(&mut spins);
        }
    }

    fn acquire_exclusive(&self) {
        let mut spins = 0;
        while self
            .state
            .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff(&mut spins);
        }
    }

    fn release_shared(&self) {
        self.state.fetch_sub(1, Ordering::Release);
    }

    fn release_exclusive(&self) {
        self.state.store(0, Ordering::Release);
    }

    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.acquire_shared();
        RwLockReadGuard { lock: self }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.acquire_exclusive();
        RwLockWriteGuard { lock: self }
    }

    /// Exclusive access through a unique reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        unsafe { &mut *self.value.get() }
    }
}

impl<T> RwLock<T> {
    /// Shared access with an owned, `Arc`-backed guard (the `arc_lock`
    /// feature of the real crate).
    pub fn read_arc(self: &Arc<Self>) -> ArcRwLockReadGuard<RawRwLock, T> {
        self.acquire_shared();
        ArcRwLockReadGuard {
            lock: Arc::clone(self),
            _raw: PhantomData,
        }
    }

    /// Exclusive access with an owned, `Arc`-backed guard.
    pub fn write_arc(self: &Arc<Self>) -> ArcRwLockWriteGuard<RawRwLock, T> {
        self.acquire_exclusive();
        ArcRwLockWriteGuard {
            lock: Arc::clone(self),
            _raw: PhantomData,
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release_shared();
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release_exclusive();
    }
}

/// Owned shared guard: keeps the `Arc<RwLock<T>>` alive while held.
pub struct ArcRwLockReadGuard<R, T> {
    lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T> Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.value.get() }
    }
}

impl<R, T> Drop for ArcRwLockReadGuard<R, T> {
    fn drop(&mut self) {
        self.lock.release_shared();
    }
}

/// Owned exclusive guard: keeps the `Arc<RwLock<T>>` alive while held.
pub struct ArcRwLockWriteGuard<R, T> {
    lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T> Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.value.get() }
    }
}

impl<R, T> DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<R, T> Drop for ArcRwLockWriteGuard<R, T> {
    fn drop(&mut self) {
        self.lock.release_exclusive();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        // Second lock attempt must fail while held.
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_readers_share_writer_excludes() {
        let l = Arc::new(RwLock::new(1));
        let r1 = l.read();
        let r2 = l.read_arc();
        assert_eq!(*r1 + *r2, 2);
        drop(r1);
        drop(r2);
        let mut w = l.write_arc();
        *w = 7;
        drop(w);
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn contended_mutex_counts_correctly() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 40_000);
    }
}
