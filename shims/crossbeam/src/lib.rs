//! In-tree shim for the `crossbeam` API surface this workspace uses:
//! `queue::ArrayQueue` and `utils::CachePadded`. The queue is a bounded
//! MPMC queue implemented with a mutex-protected ring — correct under
//! arbitrary concurrency, though not lock-free like the real crate.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Bounded multi-producer multi-consumer queue.
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        cap: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Create a queue holding at most `cap` elements.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be positive");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(cap)),
                cap,
            }
        }

        /// Push; hands the element back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut g = self.inner.lock().unwrap();
            if g.len() == self.cap {
                return Err(value);
            }
            g.push_back(value);
            Ok(())
        }

        /// Pop the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// Current length (racy snapshot).
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        /// True if empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Maximum capacity.
        pub fn capacity(&self) -> usize {
            self.cap
        }
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so neighbouring values never
    /// share a cache line (two lines to defeat adjacent-line prefetch).
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.value.fmt(f)
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}
