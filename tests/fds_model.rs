//! Property-based model checking for the `mvcc-fds` structures.
//!
//! Each persistent structure is driven by a random operation sequence
//! against its obvious sequential model (`Vec`, `VecDeque`,
//! `BinaryHeap`), with two extra obligations the models do not have:
//!
//! * **persistence** — randomly retained snapshots must still equal the
//!   model state captured at retention time, no matter what happens
//!   after;
//! * **precision** — once every snapshot is released, the arena must
//!   hold exactly the tuples of the final version (Definition 2.1).

use std::collections::{BinaryHeap, VecDeque};

use multiversion::fds::{Heap, Queue, Stack};
use multiversion::plm::OptNodeId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    /// Retain the current version as a snapshot.
    Snap,
    /// Release the oldest retained snapshot.
    Unsnap,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u64>().prop_map(Op::Push),
        2 => Just(Op::Pop),
        1 => Just(Op::Snap),
        1 => Just(Op::Unsnap),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn stack_matches_vec_with_snapshots(ops in prop::collection::vec(op(), 1..120)) {
        let s: Stack<u64> = Stack::new();
        let mut cur = s.empty();
        let mut model: Vec<u64> = Vec::new();
        // (snapshot root, model state at retention)
        let mut snaps: VecDeque<(OptNodeId, Vec<u64>)> = VecDeque::new();

        for o in ops {
            match o {
                Op::Push(v) => {
                    cur = s.push(cur, v);
                    model.push(v);
                }
                Op::Pop => {
                    let (rest, v) = s.pop(cur);
                    cur = rest;
                    prop_assert_eq!(v, model.pop());
                }
                Op::Snap => {
                    s.retain(cur);
                    snaps.push_back((cur, model.clone()));
                }
                Op::Unsnap => {
                    if let Some((root, at)) = snaps.pop_front() {
                        let mut got = s.to_vec(root);
                        got.reverse(); // to_vec is top-first
                        prop_assert_eq!(&got, &at, "snapshot drifted");
                        s.release(root);
                    }
                }
            }
            // Live snapshots stay exact mid-run too.
            if let Some((root, at)) = snaps.front() {
                prop_assert_eq!(s.len(*root), at.len());
            }
        }
        // Final state matches; then precision once everything releases.
        let mut got = s.to_vec(cur);
        got.reverse();
        prop_assert_eq!(&got, &model);
        for (root, at) in snaps.drain(..) {
            let mut g = s.to_vec(root);
            g.reverse();
            prop_assert_eq!(&g, &at);
            s.release(root);
        }
        s.release(cur);
        prop_assert_eq!(s.arena().live(), 0, "precision: all tuples freed");
    }

    #[test]
    fn queue_matches_vecdeque_with_snapshots(ops in prop::collection::vec(op(), 1..120)) {
        let q: Queue<u64> = Queue::new();
        let mut cur = q.empty();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut snaps: Vec<(OptNodeId, Vec<u64>)> = Vec::new();

        for o in ops {
            match o {
                Op::Push(v) => {
                    cur = q.enqueue(cur, v);
                    model.push_back(v);
                }
                Op::Pop => {
                    let (rest, v) = q.dequeue(cur);
                    cur = rest;
                    prop_assert_eq!(v, model.pop_front());
                }
                Op::Snap => {
                    q.retain(cur);
                    snaps.push((cur, model.iter().copied().collect()));
                }
                Op::Unsnap => {
                    if let Some((root, at)) = snaps.pop() {
                        prop_assert_eq!(q.to_vec(root), at, "snapshot drifted");
                        q.release(root);
                    }
                }
            }
            prop_assert_eq!(q.len(cur), model.len());
        }
        prop_assert_eq!(q.to_vec(cur), model.iter().copied().collect::<Vec<_>>());
        for (root, at) in snaps.drain(..) {
            prop_assert_eq!(q.to_vec(root), at);
            q.release(root);
        }
        q.release(cur);
        prop_assert_eq!(q.arena().live(), 0, "precision: all tuples freed");
    }

    #[test]
    fn heap_matches_binaryheap_with_snapshots(ops in prop::collection::vec(op(), 1..120)) {
        let h: Heap<u64> = Heap::new();
        let mut cur = h.empty();
        let mut model: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
        let mut snaps: Vec<(OptNodeId, usize, Option<u64>)> = Vec::new();

        for o in ops {
            match o {
                Op::Push(v) => {
                    cur = h.insert(cur, v);
                    model.push(std::cmp::Reverse(v));
                }
                Op::Pop => {
                    let (rest, v) = h.pop_min(cur);
                    cur = rest;
                    prop_assert_eq!(v, model.pop().map(|r| r.0));
                }
                Op::Snap => {
                    h.retain(cur);
                    snaps.push((cur, model.len(), model.peek().map(|r| r.0)));
                }
                Op::Unsnap => {
                    if let Some((root, len, min)) = snaps.pop() {
                        prop_assert_eq!(h.len(root), len);
                        prop_assert_eq!(h.peek_min(root).copied(), min);
                        h.check_invariants(root).map_err(|e| {
                            TestCaseError::fail(format!("heap invariant: {e}"))
                        })?;
                        h.release(root);
                    }
                }
            }
            prop_assert_eq!(h.peek_min(cur).copied(), model.peek().map(|r| r.0));
        }
        // Full drain comes out sorted and matches the model multiset.
        let mut drained = Vec::new();
        loop {
            let (rest, v) = h.pop_min(cur);
            cur = rest;
            match v {
                Some(v) => drained.push(v),
                None => break,
            }
        }
        let mut expect: Vec<u64> = model.into_iter().map(|r| r.0).collect();
        expect.sort_unstable();
        prop_assert_eq!(drained, expect);
        for (root, _, _) in snaps.drain(..) {
            h.release(root);
        }
        prop_assert_eq!(h.arena().live(), 0, "precision: all tuples freed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Version-list map against a timestamped reference: every historical
    /// snapshot (not just the latest) must replay exactly.
    #[test]
    fn vlist_snapshots_replay_history(
        ops in prop::collection::vec((0u64..32, any::<u16>()), 1..100),
        probe_keys in prop::collection::vec(0u64..32, 4),
    ) {
        use multiversion::vlist::VersionListMap;
        use std::collections::BTreeMap;

        let m = VersionListMap::new(1);
        // history[i] = model state after i+1 commits
        let mut history: Vec<BTreeMap<u64, u64>> = Vec::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (k, v) in &ops {
            if *v % 5 == 0 {
                m.remove(*k);
                model.remove(k);
            } else {
                m.insert(*k, *v as u64);
                model.insert(*k, *v as u64);
            }
            history.push(model.clone());
        }
        // Probe a few historical timestamps via time-travel tickets —
        // the map's commit_ts counts 1.. in lockstep with `history`.
        for (i, snap) in history.iter().enumerate().step_by(7) {
            let ts = i as u64 + 1;
            for k in &probe_keys {
                let t = m.begin_read_at(0, ts);
                prop_assert_eq!(m.get_at(&t, *k), snap.get(k).copied(),
                    "key {} at ts {}", k, ts);
                m.end_read(t);
            }
        }
        // After a vacuum with no readers, only the newest survives and
        // current reads are unchanged.
        m.vacuum();
        let t = m.begin_read(0);
        for k in 0..32u64 {
            prop_assert_eq!(m.get_at(&t, k), model.get(&k).copied());
        }
        m.end_read(t);
    }
}
