//! Cross-crate integration tests: the full transactional stack (arena +
//! VM + functional tree) under concurrency, for every VM algorithm,
//! driven through leased sessions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use multiversion::core::Database;
use multiversion::ftree::{SumU64Map, U64Map};
use multiversion::vm::VmKind;

/// Strict serializability witness: every snapshot of a constant-sum map
/// must show the same total, for every VM algorithm.
#[test]
fn constant_sum_invariant_all_vm_kinds() {
    for kind in VmKind::ALL {
        let readers = 3usize;
        let db: Arc<Database<SumU64Map, _>> = Arc::new(Database::with_kind(kind, readers + 1));
        let mut writer = db.session().unwrap();
        writer.write(|txn| {
            let init: Vec<(u64, u64)> = (0..32).map(|k| (k, 500)).collect();
            txn.multi_insert(init, |_o, v| *v);
        });
        let expected = 32 * 500u64;
        std::thread::scope(|s| {
            for r in 0..readers {
                let db = db.clone();
                s.spawn(move || {
                    let mut session = db.session().unwrap();
                    // A fixed read count (rather than a stop flag) keeps the
                    // check meaningful even when the scheduler runs the
                    // writer to completion first.
                    for _ in 0..400 {
                        let total = session.read(|snap| snap.aug_total());
                        assert_eq!(total, expected, "{kind:?}: torn snapshot (reader {r})");
                    }
                });
            }
            for i in 0..500u64 {
                let from = i % 32;
                let to = (i * 13 + 7) % 32;
                if from == to {
                    continue;
                }
                writer.write(|txn| {
                    let a = *txn.get(&from).unwrap();
                    let b = *txn.get(&to).unwrap();
                    let m = a.min(25);
                    txn.insert(from, a - m);
                    txn.insert(to, b + m);
                });
            }
        });
        assert_eq!(writer.read(|s| s.aug_total()), expected, "{kind:?}");
    }
}

/// Multiple concurrent writers are lock-free under PSWF: all operations
/// eventually commit, with aborts possible but bounded by progress.
#[test]
fn multi_writer_lock_free_progress() {
    let writers = 3usize;
    let per_writer = 300u64;
    let db: Arc<Database<U64Map>> = Arc::new(Database::new(writers));
    std::thread::scope(|s| {
        for w in 0..writers {
            let db = db.clone();
            s.spawn(move || {
                let mut session = db.session().unwrap();
                for i in 0..per_writer {
                    let key = (w as u64) << 32 | i;
                    // write() retries on abort — lock-free guarantee says
                    // this terminates.
                    session.insert(key, i);
                }
            });
        }
    });
    // Every session dropped: local counters are flushed.
    let stats = db.stats();
    assert_eq!(stats.commits, writers as u64 * per_writer);
    let mut check = db.session().unwrap();
    for w in 0..writers {
        for i in 0..per_writer {
            let key = (w as u64) << 32 | i;
            assert_eq!(check.get(&key), Some(i), "lost write {w}/{i}");
        }
    }
    assert_eq!(db.live_versions(), 1);
}

/// A paused reader (simulating a faulting/sleeping process, the RCU
/// pathology of §1) never blocks a PSWF writer, and precise GC bounds the
/// uncollected versions by the number of distinct pinned snapshots.
#[test]
fn stalled_reader_does_not_block_pswf_writer() {
    let db: Arc<Database<U64Map>> = Arc::new(Database::new(3));
    let mut writer = db.session().unwrap();
    let mut reader = db.session().unwrap();
    writer.insert(1, 1);

    let guard = reader.begin_read(); // reader parks on this version
    let before = guard.snapshot().len();

    // Writer commits 500 more transactions, unimpeded.
    let t0 = std::time::Instant::now();
    for i in 0..500u64 {
        writer.insert(100 + i, i);
    }
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(10),
        "writer must not block on the stalled reader"
    );
    // Precision: only the pinned version and the current one are live
    // (the pinned snapshot pins exactly one version).
    assert!(
        db.live_versions() <= 3,
        "at most pinned + current (+1 transient), saw {}",
        db.live_versions()
    );
    assert_eq!(guard.snapshot().len(), before, "pinned snapshot moved");
    drop(guard);
    assert_eq!(db.live_versions(), 1);
}

/// Read transactions per process are monotone: once a process observes
/// version t, it never observes an older version (regular reads would
/// violate this only if acquire returned stale versions).
#[test]
fn per_process_monotone_snapshots() {
    for kind in VmKind::ALL {
        let readers = 2usize;
        let db: Arc<Database<U64Map, _>> = Arc::new(Database::with_kind(kind, readers + 1));
        let mut writer = db.session().unwrap();
        writer.insert(0, 0);
        let stop = Arc::new(AtomicBool::new(false));
        let committed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for r in 0..readers {
                let db = db.clone();
                let stop = stop.clone();
                let committed = committed.clone();
                s.spawn(move || {
                    let mut session = db.session().unwrap();
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let seen = session.read(|snap| *snap.get(&0).unwrap());
                        assert!(
                            seen >= last,
                            "{kind:?}: reader {r} went back in time {last} -> {seen}"
                        );
                        // Freshness: what we see can't be newer than what
                        // has been committed (sanity) ...
                        assert!(seen <= committed.load(Ordering::Relaxed) + 1);
                        last = seen;
                    }
                });
            }
            for i in 1..=300u64 {
                writer.insert(0, i);
                committed.store(i, Ordering::Relaxed);
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}

/// try_write surfaces aborts instead of retrying, and aborted effects are
/// fully rolled back (speculative nodes collected).
#[test]
fn aborted_writes_leave_no_trace() {
    let db: Database<U64Map> = Database::new(2);
    let mut rival = db.session().unwrap();
    let mut loser = db.session().unwrap();
    rival.insert(1, 1);
    let live_before = db.forest().arena().live();
    for _ in 0..10 {
        let r = loser.try_write(|txn| {
            let bumped = rival.get(&1).unwrap() + 1;
            rival.insert(1, bumped); // competing commit
            txn.insert(999, 999);
        });
        assert!(r.is_err());
    }
    assert_eq!(rival.get(&999), None);
    assert_eq!(loser.stats().aborts, 10);
    // 10 competing inserts overwrote key 1 in place: the tree still has
    // exactly one entry for it plus key 1's original; no speculative
    // garbage survives.
    assert_eq!(db.forest().arena().live(), live_before);
    assert_eq!(db.live_versions(), 1);
}
