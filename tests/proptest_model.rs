//! Property-based tests: the transactional map, the functional tree's
//! bulk algebra, and the batching writer are all checked against
//! `BTreeMap` models over arbitrary operation sequences.

use std::collections::BTreeMap;

use proptest::prelude::*;

use multiversion::core::{BatchWriter, Database, MapOp};
use multiversion::ftree::{Forest, SumU64Map, U64Map};
use multiversion::vm::VmKind;

#[derive(Debug, Clone)]
enum DbOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    RangeSum(u64, u64),
    MultiInsert(Vec<(u64, u64)>),
    MultiRemove(Vec<u64>),
}

fn db_op() -> impl Strategy<Value = DbOp> {
    let key = 0u64..64;
    let val = 0u64..1000;
    prop_oneof![
        (key.clone(), val.clone()).prop_map(|(k, v)| DbOp::Insert(k, v)),
        key.clone().prop_map(DbOp::Remove),
        key.clone().prop_map(DbOp::Get),
        (key.clone(), key.clone()).prop_map(|(a, b)| DbOp::RangeSum(a.min(b), a.max(b))),
        prop::collection::vec((key.clone(), val), 0..20).prop_map(DbOp::MultiInsert),
        prop::collection::vec(key, 0..20).prop_map(DbOp::MultiRemove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The transactional database behaves exactly like a sequential
    /// BTreeMap for any op sequence, under every VM algorithm, and ends
    /// with a spotless arena. Writes run through one leased session,
    /// reads through another.
    #[test]
    fn database_matches_btreemap(ops in prop::collection::vec(db_op(), 1..80)) {
        for kind in VmKind::ALL {
            let db: Database<SumU64Map, _> = Database::with_kind(kind, 2);
            let mut writer = db.session().unwrap();
            let mut reader = db.session().unwrap();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for op in &ops {
                match op {
                    DbOp::Insert(k, v) => {
                        writer.insert(*k, *v);
                        model.insert(*k, *v);
                    }
                    DbOp::Remove(k) => {
                        let got = writer.remove(k);
                        prop_assert_eq!(got, model.remove(k), "{:?}", kind);
                    }
                    DbOp::Get(k) => {
                        prop_assert_eq!(reader.get(k), model.get(k).copied(), "{:?}", kind);
                    }
                    DbOp::RangeSum(lo, hi) => {
                        let got = reader.read(|s| s.aug_range(lo, hi));
                        let want: u64 = model.range(lo..=hi).map(|(_, v)| *v).sum();
                        prop_assert_eq!(got, want, "{:?}", kind);
                    }
                    DbOp::MultiInsert(batch) => {
                        let b = batch.clone();
                        writer.write(|txn| txn.multi_insert(b.clone(), |_o, v| *v));
                        for (k, v) in batch {
                            model.insert(*k, *v);
                        }
                    }
                    DbOp::MultiRemove(keys) => {
                        let ks = keys.clone();
                        writer.write(|txn| txn.multi_remove(ks.clone()));
                        for k in keys {
                            model.remove(k);
                        }
                    }
                }
            }
            let got = reader.read(|s| s.to_vec());
            let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want, "{:?}", kind);
            // Precise algorithms end with exactly the current footprint.
            if kind.is_precise() {
                prop_assert_eq!(db.live_versions(), 1, "{:?}", kind);
                prop_assert_eq!(
                    db.forest().arena().live(),
                    model.len() as u64,
                    "{:?}",
                    kind
                );
            }
        }
    }

    /// Set algebra on the functional tree: union/intersection/difference
    /// agree with the model, inputs stay intact, and nothing leaks.
    #[test]
    fn bulk_set_algebra(
        a in prop::collection::btree_map(0u64..128, 0u64..100, 0..60),
        b in prop::collection::btree_map(0u64..128, 0u64..100, 0..60),
    ) {
        let f: Forest<U64Map> = Forest::new();
        let av: Vec<(u64, u64)> = a.iter().map(|(k, v)| (*k, *v)).collect();
        let bv: Vec<(u64, u64)> = b.iter().map(|(k, v)| (*k, *v)).collect();
        let ta = f.build_sorted(&av);
        let tb = f.build_sorted(&bv);

        // union (b wins)
        f.retain(ta);
        f.retain(tb);
        let tu = f.union(ta, tb);
        let mut mu = a.clone();
        mu.extend(b.iter().map(|(k, v)| (*k, *v)));
        prop_assert_eq!(f.to_vec(tu), mu.into_iter().collect::<Vec<_>>());

        // intersection (sum values)
        f.retain(ta);
        f.retain(tb);
        let ti = f.intersection_with(ta, tb, |x, y| x + y);
        let mi: Vec<(u64, u64)> = a
            .iter()
            .filter_map(|(k, v)| b.get(k).map(|w| (*k, v + w)))
            .collect();
        prop_assert_eq!(f.to_vec(ti), mi);

        // difference
        let td = f.difference(ta, tb);
        let md: Vec<(u64, u64)> = a
            .iter()
            .filter(|(k, _)| !b.contains_key(k))
            .map(|(k, v)| (*k, *v))
            .collect();
        prop_assert_eq!(f.to_vec(td), md);

        f.check_invariants(tu);
        f.check_invariants(ti);
        f.check_invariants(td);
        f.release(tu);
        f.release(ti);
        f.release(td);
        prop_assert_eq!(f.arena().live(), 0);
    }

    /// Split/join2 round-trips: for any tree and pivot,
    /// `join2(split(t, k))` equals `t` minus `k`.
    #[test]
    fn split_join_roundtrip(
        entries in prop::collection::btree_map(0u64..256, 0u64..100, 0..80),
        pivot in 0u64..256,
    ) {
        let f: Forest<U64Map> = Forest::new();
        let v: Vec<(u64, u64)> = entries.iter().map(|(k, v)| (*k, *v)).collect();
        let t = f.build_sorted(&v);
        let (l, m, r) = f.split(t, &pivot);
        prop_assert_eq!(m.map(|(k, _)| k), entries.get(&pivot).map(|_| pivot));
        let joined = f.join2(l, r);
        let want: Vec<(u64, u64)> = entries
            .iter()
            .filter(|(k, _)| **k != pivot)
            .map(|(k, v)| (*k, *v))
            .collect();
        prop_assert_eq!(f.to_vec(joined), want);
        f.check_invariants(joined);
        f.release(joined);
        prop_assert_eq!(f.arena().live(), 0);
    }

    /// The batching writer applies any submission pattern equivalently to
    /// a sequential last-writer-wins replay.
    #[test]
    fn batch_writer_matches_replay(
        batches in prop::collection::vec(
            prop::collection::vec((0u64..32, 0u64..100, prop::bool::ANY), 0..12),
            1..8
        ),
    ) {
        let db: Database<U64Map> = Database::new(1);
        let mut combiner = db.session().unwrap();
        let bw: BatchWriter<U64Map> = BatchWriter::new(1, 256);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for batch in &batches {
            for (k, v, is_insert) in batch {
                if *is_insert {
                    bw.submit(0, MapOp::Insert(*k, *v)).unwrap();
                    model.insert(*k, *v);
                } else {
                    bw.submit(0, MapOp::Remove(*k)).unwrap();
                    model.remove(k);
                }
            }
            bw.combine(&mut combiner);
        }
        let got = combiner.read(|s| s.to_vec());
        prop_assert_eq!(got, model.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(db.live_versions(), 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Rank/range operations agree with the BTreeMap model: split_rank
    /// partitions by order statistics, range_tree/remove_range use
    /// inclusive bounds, symmetric_difference is the set XOR — and every
    /// path leaves a spotless arena.
    #[test]
    fn range_ops_match_model(
        entries in prop::collection::btree_map(0u64..200, 0u64..100, 0..70),
        i in 0usize..80,
        bounds in (0u64..200, 0u64..200),
        other in prop::collection::btree_map(0u64..200, 0u64..100, 0..70),
    ) {
        let f: Forest<U64Map> = Forest::new();
        let ev: Vec<(u64, u64)> = entries.iter().map(|(k, v)| (*k, *v)).collect();
        let (lo, hi) = (bounds.0.min(bounds.1), bounds.0.max(bounds.1));

        // split_rank
        let t = f.build_sorted(&ev);
        let (a, b) = f.split_rank(t, i);
        let cut = i.min(ev.len());
        prop_assert_eq!(f.to_vec(a), ev[..cut].to_vec());
        prop_assert_eq!(f.to_vec(b), ev[cut..].to_vec());
        f.release(a);
        f.release(b);
        prop_assert_eq!(f.arena().live(), 0);

        // range_tree (inclusive)
        let t = f.build_sorted(&ev);
        let sub = f.range_tree(t, &lo, &hi);
        let msub: Vec<(u64, u64)> = entries
            .range(lo..=hi)
            .map(|(k, v)| (*k, *v))
            .collect();
        prop_assert_eq!(f.to_vec(sub), msub);
        f.release(sub);
        prop_assert_eq!(f.arena().live(), 0);

        // remove_range (inclusive)
        let t = f.build_sorted(&ev);
        let t = f.remove_range(t, &lo, &hi);
        let mrem: Vec<(u64, u64)> = entries
            .iter()
            .filter(|(k, _)| **k < lo || **k > hi)
            .map(|(k, v)| (*k, *v))
            .collect();
        prop_assert_eq!(f.to_vec(t), mrem);
        f.check_invariants(t);
        f.release(t);
        prop_assert_eq!(f.arena().live(), 0);

        // symmetric_difference
        let ov: Vec<(u64, u64)> = other.iter().map(|(k, v)| (*k, *v)).collect();
        let ta = f.build_sorted(&ev);
        let tb = f.build_sorted(&ov);
        let ts = f.symmetric_difference(ta, tb);
        let msym: Vec<(u64, u64)> = entries
            .iter()
            .filter(|(k, _)| !other.contains_key(k))
            .map(|(k, v)| (*k, *v))
            .chain(
                other
                    .iter()
                    .filter(|(k, _)| !entries.contains_key(k))
                    .map(|(k, v)| (*k, *v)),
            )
            .collect::<std::collections::BTreeMap<u64, u64>>()
            .into_iter()
            .collect();
        prop_assert_eq!(f.to_vec(ts), msym);
        f.check_invariants(ts);
        f.release(ts);
        prop_assert_eq!(f.arena().live(), 0);
    }
}
