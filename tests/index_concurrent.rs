//! Table 3's *dynamic setting* as an integration test: documents are
//! added and removed by a single writer while query threads run and-
//! queries concurrently — "the queries will never read a partially
//! updated document in the database" (§7.2). All access runs through
//! leased `IndexSession` handles.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use multiversion::index::InvertedIndex;

/// Every document carries both marker terms, so any query snapshot must
/// see a document in *both* posting lists or in neither.
#[test]
fn document_commits_are_atomic_under_queries() {
    churn_under_queries_scaled(400);
}

/// Stress-tier churn: the same atomicity oracle over 15× the writer
/// rounds (and so 15× the posting-list versions collected while queries
/// run). Run via the CI `stress` job (`cargo test --release -- --ignored`).
#[test]
#[ignore = "stress tier: long-running, run with --ignored in release"]
fn document_commits_are_atomic_under_queries_stress() {
    churn_under_queries_scaled(6_000);
}

fn churn_under_queries_scaled(rounds: u64) {
    const TERM_A: u64 = 1;
    const TERM_B: u64 = 2;
    let idx: Arc<InvertedIndex> = Arc::new(InvertedIndex::new(4));
    let stop = Arc::new(AtomicBool::new(false));
    let added = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Writer: each batch adds one doc with both terms (equal weights)
        // and, every third batch, removes the oldest remaining doc.
        {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            let added = Arc::clone(&added);
            s.spawn(move || {
                let mut writer = idx.session().unwrap();
                let mut next_doc = 0u64;
                let mut oldest = 0u64;
                for round in 0..rounds {
                    writer.add_documents(&[(
                        next_doc,
                        vec![(TERM_A, next_doc + 1), (TERM_B, next_doc + 1)],
                    )]);
                    next_doc += 1;
                    added.store(next_doc, Ordering::SeqCst);
                    if round % 3 == 2 && oldest + 1 < next_doc {
                        writer.remove_documents(&[oldest]);
                        oldest += 1;
                    }
                }
                stop.store(true, Ordering::SeqCst);
            });
        }
        // Queriers: and-queries must only return docs whose weights match
        // in both lists (weight = doc id + 1 for both terms), and the
        // result set must never be "half a document".
        for q in 1..4 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut session = idx.session().unwrap();
                let mut largest_seen = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let hits = session.and_query(TERM_A, TERM_B, 10);
                    for (doc, weight) in &hits {
                        // and_query ranks by *combined* weight; both terms
                        // carry doc+1, so any torn (half-committed) doc
                        // would surface as an odd weight or a missing hit.
                        assert_eq!(
                            *weight,
                            2 * (doc + 1),
                            "querier {q}: torn weight for doc {doc}"
                        );
                    }
                    // Top-k by weight: results sorted descending.
                    for w in hits.windows(2) {
                        assert!(w[0].1 >= w[1].1, "top-k not sorted: {hits:?}");
                    }
                    if let Some((doc, _)) = hits.first() {
                        // Monotone snapshots per leased process id.
                        assert!(
                            *doc + 1 >= largest_seen,
                            "querier {q} went back in time: {largest_seen} -> {doc}"
                        );
                        largest_seen = doc + 1;
                    }
                }
            });
        }
    });

    // Quiescence: the index is precise — one live version.
    assert_eq!(idx.database().live_versions(), 1);
    let total = added.load(Ordering::SeqCst);
    let mut audit = idx.session().unwrap();
    let df = audit.doc_frequency(TERM_A);
    assert!(df > 0 && df <= total as usize);
    assert_eq!(df, audit.doc_frequency(TERM_B));
}

/// Removing every document leaves an index that answers empty, with all
/// superseded posting-list versions collected.
#[test]
fn full_teardown_reclaims_everything() {
    let idx: InvertedIndex = InvertedIndex::new(2);
    let mut s = idx.session().unwrap();
    let docs: Vec<(u64, Vec<(u64, u64)>)> = (0..50)
        .map(|d| (d, vec![(d % 7, d + 1), (d % 11, d + 2)]))
        .collect();
    s.add_documents(&docs);
    assert!(s.term_count() > 0);

    let ids: Vec<u64> = (0..50).collect();
    s.remove_documents(&ids);
    assert_eq!(s.term_count(), 0, "empty posting lists must be dropped");
    for t in 0..12 {
        assert_eq!(s.doc_frequency(t), 0);
    }
    assert_eq!(idx.database().live_versions(), 1);
    assert_eq!(
        idx.database().forest().arena().live(),
        0,
        "empty index holds no tuples"
    );
}

/// Interleaved adds of the same term from successive batches keep the
/// posting list sorted, deduplicated and max-weight-augmented.
#[test]
fn posting_lists_merge_across_batches() {
    let idx: InvertedIndex = InvertedIndex::new(2);
    let mut s = idx.session().unwrap();
    // Three batches touch the same term with different docs.
    s.add_documents(&[(10, vec![(5, 100)])]);
    s.add_documents(&[(20, vec![(5, 300)])]);
    s.add_documents(&[(15, vec![(5, 200)])]);

    assert_eq!(s.doc_frequency(5), 3);
    assert_eq!(s.max_weight_in_range(5, 5), 300);

    // Self-intersection returns every posting with doubled weight.
    let hits = s.and_query(5, 5, 10);
    assert_eq!(hits.len(), 3);
    assert_eq!(hits[0], (20, 600), "top hit by combined weight");

    // Updating an existing (term, doc) pair overrides the weight.
    s.add_documents(&[(10, vec![(5, 999)])]);
    assert_eq!(s.doc_frequency(5), 3, "no duplicate posting");
    assert_eq!(s.max_weight_in_range(5, 5), 999);
}
