//! The parallel bulk-operation contract: running `union` / `difference`
//! / `filter` on the work-stealing pool produces **exactly** the result
//! of the old sequential shim, panics propagate across `join` without
//! deadlock, and no pool thread outlives a shutdown.
//!
//! Every test reconfigures the process-global pool, so they serialize on
//! one mutex and restore the default (and assert zero live workers) on
//! the way out.

use std::collections::BTreeMap;
use std::sync::{Mutex, Once};

use mvcc_ftree::{Forest, Root, U64Map};
use rand::{Rng, SeedableRng, SmallRng};
use rayon::pool;

static POOL_LOCK: Mutex<()> = Mutex::new(());
static CUTOFF: Once = Once::new();

/// Run `f` with the global pool pinned to `threads` workers, then tear
/// the pool down and verify no worker thread leaked. A small fork
/// cutoff makes even modest trees fork hundreds of tasks.
fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    CUTOFF.call_once(|| std::env::set_var("MVCC_PAR_CUTOFF", "192"));
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pool::set_pool_threads(threads);
    let out = f();
    pool::set_pool_threads(0); // restore default; also shuts down
    assert_eq!(pool::live_workers(), 0, "pool threads must not leak");
    out
}

fn build(f: &Forest<U64Map>, pairs: &[(u64, u64)]) -> Root {
    let mut t = f.empty();
    for &(k, v) in pairs {
        t = f.insert(t, k, v);
    }
    t
}

fn random_pairs(rng: &mut SmallRng, n: usize, key_space: u64) -> Vec<(u64, u64)> {
    let mut m = BTreeMap::new();
    for _ in 0..n {
        m.insert(rng.gen_range(0..key_space), rng.gen::<u64>());
    }
    m.into_iter().collect()
}

/// Seeded property test: for random inputs, `union` and `difference`
/// computed on a 4-worker pool equal both the sequential-shim result
/// (`MVCC_POOL_THREADS=1` semantics) and the `BTreeMap` model.
#[test]
fn parallel_union_difference_match_sequential_shim() {
    let mut rng = SmallRng::seed_from_u64(0xB01D_FACE);
    for round in 0..8 {
        let a = random_pairs(&mut rng, 4_000, 6_000);
        let b = random_pairs(&mut rng, 3_000, 6_000);

        let run = |threads: usize| {
            with_pool(threads, || {
                let f: Forest<U64Map> = Forest::new();
                let (ta, tb) = (build(&f, &a), build(&f, &b));
                f.retain(ta);
                f.retain(tb);
                let u = f.union(ta, tb);
                let union_vec = f.to_vec(u);
                f.check_invariants(u);
                f.release(u);
                let d = f.difference(ta, tb);
                let diff_vec = f.to_vec(d);
                f.check_invariants(d);
                f.release(d);
                assert_eq!(f.arena().live(), 0, "precise GC after parallel ops");
                (union_vec, diff_vec)
            })
        };

        let par = run(4);
        let seq = run(1);
        assert_eq!(par, seq, "round {round}: schedule changed the result");

        let mut union_model: BTreeMap<u64, u64> = a.iter().copied().collect();
        union_model.extend(b.iter().copied()); // b wins duplicates
        assert_eq!(par.0, union_model.into_iter().collect::<Vec<_>>());
        let bkeys: std::collections::BTreeSet<u64> = b.iter().map(|(k, _)| *k).collect();
        let diff_model: Vec<(u64, u64)> = a
            .iter()
            .filter(|(k, _)| !bkeys.contains(k))
            .copied()
            .collect();
        assert_eq!(par.1, diff_model, "round {round}: difference model");
    }
}

/// Deeply nested joins: a bulk op above the cutoff forks at every level
/// of the recursion; `multi_insert`/`multi_remove`/`filter` chain them.
#[test]
fn nested_parallel_bulk_ops_keep_invariants() {
    with_pool(4, || {
        let f: Forest<U64Map> = Forest::new();
        let base: Vec<(u64, u64)> = (0..30_000u64).map(|k| (k * 2, k)).collect();
        let t = f.build_sorted(&base);
        let batch: Vec<(u64, u64)> = (0..20_000u64).map(|k| (k * 3, k + 1)).collect();
        let t = f.multi_insert(t, batch.clone(), |_o, n| *n);
        let t = f.filter(t, |k, _| k % 5 != 0);
        let t = f.multi_remove(t, (0..10_000u64).map(|k| k * 6).collect());
        f.check_invariants(t);

        let mut model: BTreeMap<u64, u64> = base.iter().copied().collect();
        for (k, v) in &batch {
            model.insert(*k, *v);
        }
        model.retain(|k, _| k % 5 != 0);
        for k in (0..10_000u64).map(|k| k * 6) {
            model.remove(&k);
        }
        assert_eq!(f.to_vec(t), model.into_iter().collect::<Vec<_>>());
        f.release(t);
        assert_eq!(f.arena().live(), 0);
    });
}

/// A panic in one half of a parallel bulk op propagates to the caller
/// without deadlocking the pool or killing its workers. (The aborted
/// operation leaks its tree into the arena — same as a sequential
/// panic — so this test uses a throwaway forest.)
#[test]
fn panic_inside_parallel_filter_propagates() {
    with_pool(4, || {
        let f: Forest<U64Map> = Forest::new();
        let items: Vec<(u64, u64)> = (0..20_000u64).map(|k| (k, k)).collect();
        let t = f.build_sorted(&items);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f.filter(t, |k, _| {
                if *k == 17_321 {
                    panic!("predicate exploded");
                }
                true
            })
        }));
        let payload = caught.expect_err("panic must reach the caller");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("predicate exploded")
        );
        // The pool survives and still computes correctly afterwards.
        let g: Forest<U64Map> = Forest::new();
        let u = g.union(g.build_sorted(&items), g.empty());
        assert_eq!(g.size(u), items.len());
        g.release(u);
    });
}

/// `MVCC_POOL_THREADS=1` (here via the programmatic equivalent) is the
/// documented sequential escape hatch: no workers are spawned and
/// results are identical to the multi-threaded pool's.
#[test]
fn single_thread_fallback_is_equivalent_and_spawns_nothing() {
    let expected: Vec<(u64, u64)> = (0..12_000u64).map(|k| (k, k ^ 7)).collect();
    let seq = with_pool(1, || {
        assert_eq!(pool::current_num_threads(), 1);
        let f: Forest<U64Map> = Forest::new();
        let t = f.build_sorted(&expected);
        let v = f.to_vec(t);
        assert_eq!(
            pool::live_workers(),
            0,
            "sequential mode must spawn no pool threads"
        );
        f.release(t);
        v
    });
    assert_eq!(seq, expected);
}
