//! Concurrency stress tests for the Figure-7 baseline structures.
//!
//! The baselines' own crates carry a sequential conformance suite; these
//! tests exercise the *concurrent* contracts the YCSB harness relies on:
//! linearizable insert/remove return values (each key's state transition
//! is won by exactly one racer) and reads that never observe torn or
//! invented values.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use multiversion::baselines::{BPlusTree, CoarseMap, ConcurrentMap, LazySkipList, LockFreeBst};

fn all_maps() -> Vec<Box<dyn ConcurrentMap>> {
    vec![
        Box::new(LazySkipList::new()),
        Box::new(BPlusTree::new()),
        Box::new(LockFreeBst::new()),
        Box::new(CoarseMap::new()),
    ]
}

/// Disjoint key ranges per writer: everything lands, nothing is lost.
#[test]
fn disjoint_writers_all_keys_survive() {
    const WRITERS: usize = 4;
    const PER: u64 = 2_000;
    for map in all_maps() {
        let map = Arc::new(map);
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let base = w as u64 * PER;
                    for i in 0..PER {
                        assert!(
                            map.insert(base + i, i),
                            "{}: fresh key reported as overwrite",
                            map.name()
                        );
                    }
                });
            }
        });
        for k in 0..WRITERS as u64 * PER {
            assert_eq!(map.get(k), Some(k % PER), "{}: key {k}", map.name());
        }
    }
}

/// Racing inserts on the same fresh key: exactly one racer sees "newly
/// inserted" — the linearizable insert contract.
#[test]
fn exactly_one_winner_per_fresh_key() {
    const THREADS: usize = 4;
    const KEYS: u64 = 1_000;
    for map in all_maps() {
        let map = Arc::new(map);
        let wins = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let map = Arc::clone(&map);
                let wins = Arc::clone(&wins);
                s.spawn(move || {
                    let mut local = 0;
                    for k in 0..KEYS {
                        if map.insert(k, t as u64) {
                            local += 1;
                        }
                    }
                    wins.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            wins.load(Ordering::Relaxed),
            KEYS,
            "{}: each fresh key must have exactly one insert winner",
            map.name()
        );
        for k in 0..KEYS {
            let v = map
                .get(k)
                .unwrap_or_else(|| panic!("{}: lost {k}", map.name()));
            assert!(v < THREADS as u64, "{}: invented value {v}", map.name());
        }
    }
}

/// Racing removes of pre-inserted keys: each key is reclaimed by exactly
/// one racer, and is gone afterwards.
#[test]
fn exactly_one_remover_per_key() {
    const THREADS: usize = 4;
    const KEYS: u64 = 1_000;
    for map in all_maps() {
        let map = Arc::new(map);
        for k in 0..KEYS {
            map.insert(k, k);
        }
        let removed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let map = Arc::clone(&map);
                let removed = Arc::clone(&removed);
                s.spawn(move || {
                    let mut local = 0;
                    for k in 0..KEYS {
                        if map.remove(k) {
                            local += 1;
                        }
                    }
                    removed.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            removed.load(Ordering::Relaxed),
            KEYS,
            "{}: each key removed exactly once",
            map.name()
        );
        for k in 0..KEYS {
            assert_eq!(map.get(k), None, "{}: ghost key {k}", map.name());
        }
    }
}

/// Readers racing a writer never observe values that were never written
/// to their key (value = key * 1000 + round).
#[test]
fn readers_never_see_foreign_values() {
    const KEYS: u64 = 128;
    for map in all_maps() {
        let map = Arc::new(map);
        for k in 0..KEYS {
            map.insert(k, k * 1000);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut round = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        for k in 0..KEYS {
                            map.insert(k, k * 1000 + (round % 1000));
                        }
                        round += 1;
                    }
                });
            }
            for _ in 0..3 {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let k = fastrand_key(KEYS);
                        if let Some(v) = map.get(k) {
                            assert_eq!(v / 1000, k, "{}: foreign value {v} at key {k}", map.name());
                        }
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });
    }
}

/// Insert/remove churn on a narrow hot range, with concurrent readers —
/// hammers the structures' deletion paths (marks, merges, retries).
#[test]
fn hot_range_churn_stays_consistent() {
    const HOT: u64 = 16;
    for map in all_maps() {
        let map = Arc::new(map);
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for w in 0..2 {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let k = (i * 7 + w) % HOT;
                        if i.is_multiple_of(3) {
                            map.remove(k);
                        } else {
                            map.insert(k, k + 100);
                        }
                        i += 1;
                    }
                });
            }
            {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    for _ in 0..50_000 {
                        let k = fastrand_key(HOT);
                        if let Some(v) = map.get(k) {
                            assert_eq!(v, k + 100, "{}: corrupt value", map.name());
                        }
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });
        // Post-quiescence: structure still behaves like a map.
        map.insert(999, 1);
        assert_eq!(map.get(999), Some(1), "{}", map.name());
        assert!(map.remove(999), "{}", map.name());
        assert_eq!(map.get(999), None, "{}", map.name());
    }
}

/// Cheap xorshift so reader loops do not bottleneck on an RNG.
fn fastrand_key(bound: u64) -> u64 {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0x9e3779b97f4a7c15) };
    }
    STATE.with(|s| {
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x % bound
    })
}
