//! Session-pool and router semantics under oversubscription: more
//! logical sessions than the paper's `P` process ids.
//!
//! The acceptance bar for the pool layer: with 4× more client threads
//! than pids, every `acquire` eventually succeeds by parking (never
//! `Err(Exhausted)`), waiters wake FIFO, timeouts expire cleanly, a key
//! always routes to the same shard, and at the end every pid is back in
//! its pool with precise GC's one live version per database.
//!
//! The `*_stress` variants run the same oracles at stress-tier scale via
//! the CI `stress` job (`cargo test --release -- --ignored`).

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use multiversion::core::pool::block_on;
use multiversion::core::{AcquireState, Database, PoolStats, Router};
use multiversion::ftree::{SumU64Map, U64Map};

/// A waker that counts its wakes — lets tests assert exactly who a
/// session release woke.
struct CountWaker(AtomicUsize);

impl CountWaker {
    fn pair() -> (Arc<CountWaker>, Waker) {
        let inner = Arc::new(CountWaker(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&inner));
        (inner, waker)
    }

    fn wakes(&self) -> usize {
        self.0.load(Ordering::SeqCst)
    }
}

impl Wake for CountWaker {
    fn wake(self: Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Waiters parked while the pool is exhausted wake in arrival order:
/// each freed pid goes to the longest-waiting client.
#[test]
fn fifo_wake_order_under_contention() {
    const WAITERS: usize = 6;
    let db: Database<U64Map> = Database::new(1);
    let pool = db.pool();
    let gate = pool.acquire(); // the sole pid is out
    let woken: Arc<Mutex<Vec<usize>>> = Default::default();

    std::thread::scope(|s| {
        for w in 0..WAITERS {
            // Serialize enqueue order: spawn waiter w+1 only after w is
            // in the queue (the queue length is exact under the lock).
            let expected = w + 1;
            let woken = Arc::clone(&woken);
            let pool = &pool;
            s.spawn(move || {
                let session = pool.acquire();
                woken.lock().unwrap().push(w);
                drop(session); // frees the pid for the next waiter
            });
            while pool.waiters() < expected {
                std::thread::yield_now();
            }
        }
        // All parked; release the pid and let the chain run.
        drop(gate);
    });

    assert_eq!(
        *woken.lock().unwrap(),
        (0..WAITERS).collect::<Vec<_>>(),
        "waiters must be served first-come-first-served"
    );
    assert_eq!(db.sessions_leased(), 0);
    assert_eq!(pool.waiters(), 0);
}

/// `acquire_timeout` expires when the queue ahead doesn't drain, removes
/// itself from the queue, and does not disturb waiters behind it.
#[test]
fn acquire_timeout_expiry_leaves_others_waiting() {
    let db: Database<U64Map> = Database::new(1);
    let pool = db.pool();
    let held = pool.acquire();

    std::thread::scope(|s| {
        // A patient waiter first in line.
        let patient = s.spawn(|| pool.acquire().pid());
        while pool.waiters() < 1 {
            std::thread::yield_now();
        }
        // An impatient one behind it: must time out, not steal the pid.
        let err = pool
            .acquire_timeout(Duration::from_millis(30))
            .expect_err("pid is held and a waiter is ahead");
        assert!(err.waited >= Duration::from_millis(30));
        assert_eq!(pool.waiters(), 1, "expired waiter removed only itself");
        let freed = held.pid();
        drop(held);
        assert_eq!(patient.join().unwrap(), freed, "patient waiter served");
    });
    assert_eq!(db.sessions_leased(), 0);
}

/// A timed acquire that is front-of-queue when a pid frees succeeds well
/// inside its allowance.
#[test]
fn acquire_timeout_succeeds_when_freed_in_time() {
    let db: Database<U64Map> = Database::new(1);
    let pool = db.pool();
    let held = pool.acquire();
    std::thread::scope(|s| {
        let waiter = s.spawn(|| pool.acquire_timeout(Duration::from_secs(30)));
        while pool.waiters() < 1 {
            std::thread::yield_now();
        }
        drop(held);
        let mut session = waiter.join().unwrap().expect("pid freed in time");
        session.insert(1, 1);
    });
    assert_eq!(db.sessions_leased(), 0);
}

/// Dropping an async acquire that is still queued surrenders its ticket
/// — and if a release had already elected it, the wake is forwarded to
/// the waiter behind it rather than lost.
#[test]
fn async_acquire_dropped_while_queued_forwards_its_wake() {
    let db: Database<U64Map> = Database::new(1);
    let pool = db.pool();
    let gate = pool.acquire(); // the sole pid is out

    let (front_count, front_waker) = CountWaker::pair();
    let (back_count, back_waker) = CountWaker::pair();

    // AcquireFuture is Unpin, so Pin::new suffices — and `front` stays
    // an owned future we can genuinely drop mid-wait below.
    let mut front = pool.acquire_async();
    assert!(Pin::new(&mut front)
        .poll(&mut Context::from_waker(&front_waker))
        .is_pending());
    let mut back = pool.acquire_async();
    assert!(Pin::new(&mut back)
        .poll(&mut Context::from_waker(&back_waker))
        .is_pending());
    assert_eq!(pool.waiters(), 2);

    // The release elects the front waiter: exactly one wake, to it.
    drop(gate);
    assert_eq!(front_count.wakes(), 1, "release wakes the front waiter");
    assert_eq!(back_count.wakes(), 0, "one wake per release, not a herd");

    // The front future dies without consuming its wake. Cancellation
    // must pass the baton: the next waiter gets woken, and the pid is
    // still there for it.
    drop(front);
    assert_eq!(pool.waiters(), 1, "cancelled waiter left the queue");
    assert_eq!(back_count.wakes(), 1, "stolen wake forwarded on cancel");
    match Pin::new(&mut back).poll(&mut Context::from_waker(&back_waker)) {
        Poll::Ready(session) => drop(session),
        Poll::Pending => panic!("woken waiter at the front of a free pool must be granted"),
    }

    assert_eq!(pool.waiters(), 0);
    assert_eq!(db.sessions_leased(), 0);
}

/// Sync (thread-parking) and async (waker) waiters share one queue and
/// one arrival order: a freed pid goes to whoever has waited longest,
/// regardless of how they wait.
#[test]
fn fifo_order_holds_across_mixed_sync_and_async_waiters() {
    const WAITERS: usize = 6;
    let db: Database<U64Map> = Database::new(1);
    let pool = db.pool();
    let gate = pool.acquire();
    let woken: Arc<Mutex<Vec<usize>>> = Default::default();

    std::thread::scope(|s| {
        for w in 0..WAITERS {
            let expected = w + 1;
            let woken = Arc::clone(&woken);
            let pool = &pool;
            s.spawn(move || {
                // Odd arrivals wait as futures, even ones as threads —
                // interleaved in one queue.
                let session = if w % 2 == 1 {
                    block_on(pool.acquire_async())
                } else {
                    pool.acquire()
                };
                woken.lock().unwrap().push(w);
                drop(session);
            });
            // Serialize enqueue order before spawning the next waiter
            // (block_on enqueues on its first poll).
            while pool.waiters() < expected {
                std::thread::yield_now();
            }
        }
        drop(gate);
    });

    assert_eq!(
        *woken.lock().unwrap(),
        (0..WAITERS).collect::<Vec<_>>(),
        "one queue, one order — however the waiter waits"
    );
    assert_eq!(db.sessions_leased(), 0);
    assert_eq!(pool.waiters(), 0);
}

/// Re-polling a parked acquire from a different task re-registers the
/// new task's waker: the eventual release wakes the current waker, not
/// the stale one.
#[test]
fn repoll_from_another_task_replaces_the_registered_waker() {
    let db: Database<U64Map> = Database::new(1);
    let pool = db.pool();
    let gate = pool.acquire();

    let (stale_count, stale_waker) = CountWaker::pair();
    let (live_count, live_waker) = CountWaker::pair();

    // Poll through the state-machine API directly — the future form is
    // exercised elsewhere; here the waker swap is the point.
    let mut state = AcquireState::default();
    assert!(pool
        .poll_acquire(&mut Context::from_waker(&stale_waker), &mut state)
        .is_pending());
    // The owning task migrates: same state, new waker.
    assert!(pool
        .poll_acquire(&mut Context::from_waker(&live_waker), &mut state)
        .is_pending());
    assert_eq!(pool.waiters(), 1, "re-poll re-registers, never re-enqueues");

    drop(gate);
    assert_eq!(stale_count.wakes(), 0, "stale waker must not fire");
    assert_eq!(live_count.wakes(), 1, "the replacement waker fires");

    match pool.poll_acquire(&mut Context::from_waker(&live_waker), &mut state) {
        Poll::Ready(session) => drop(session),
        Poll::Pending => panic!("front waiter of a free pool must be granted"),
    }
    assert_eq!(pool.waiters(), 0);
    assert_eq!(db.sessions_leased(), 0);
}

/// A deadline expiring *mid-queue* removes exactly that waiter: the one
/// ahead is still served first and the one behind is served next — the
/// cancellation shares `WaitQueue::cancel`, so FIFO order is untouched.
#[test]
fn async_deadline_expiry_mid_queue_preserves_fifo() {
    let db: Database<U64Map> = Database::new(1);
    let pool = db.pool();
    let gate = pool.acquire(); // the sole pid is out

    let (a_count, a_waker) = CountWaker::pair();
    let (b_count, b_waker) = CountWaker::pair();
    let (c_count, c_waker) = CountWaker::pair();

    // Ahead: a patient waiter. Middle: a 20ms deadline. Behind: patient.
    let mut a = AcquireState::default();
    assert!(pool
        .poll_acquire(&mut Context::from_waker(&a_waker), &mut a)
        .is_pending());
    let mut b = AcquireState::with_deadline(Instant::now() + Duration::from_millis(20));
    assert!(pool
        .poll_acquire_deadline(&mut Context::from_waker(&b_waker), &mut b)
        .is_pending());
    let mut c = AcquireState::default();
    assert!(pool
        .poll_acquire(&mut Context::from_waker(&c_waker), &mut c)
        .is_pending());
    assert_eq!(
        pool.stats(),
        PoolStats {
            capacity: 1,
            leased: 1,
            waiters: 3
        },
        "gauges see the full queue"
    );

    // Let the middle deadline lapse; its next poll expires it in place.
    std::thread::sleep(Duration::from_millis(40));
    match pool.poll_acquire_deadline(&mut Context::from_waker(&b_waker), &mut b) {
        Poll::Ready(Err(err)) => assert!(err.waited >= Duration::from_millis(20)),
        other => panic!("lapsed deadline must expire, got {other:?}"),
    }
    assert_eq!(pool.waiters(), 2, "the expired waiter removed only itself");
    assert_eq!(
        b_count.wakes(),
        0,
        "no release happened; expiry is poll-observed"
    );

    // The release chain serves A then C — the hole left by B is invisible.
    drop(gate);
    assert_eq!((a_count.wakes(), c_count.wakes()), (1, 0), "front first");
    let a_session = match pool.poll_acquire(&mut Context::from_waker(&a_waker), &mut a) {
        Poll::Ready(session) => session,
        Poll::Pending => panic!("woken front waiter must be granted"),
    };
    // A's grant hands the new front (C) its coalesced-permit chance;
    // with the pid still out, C's poll stays pending.
    assert_eq!(c_count.wakes(), 1, "C was elected front, not B's ghost");
    assert!(pool
        .poll_acquire(&mut Context::from_waker(&c_waker), &mut c)
        .is_pending());
    drop(a_session);
    assert_eq!(c_count.wakes(), 2, "A's release wakes C, skipping the hole");
    match pool.poll_acquire(&mut Context::from_waker(&c_waker), &mut c) {
        Poll::Ready(session) => drop(session),
        Poll::Pending => panic!("woken back waiter must be granted"),
    }

    assert_eq!(pool.waiters(), 0);
    assert_eq!(db.sessions_leased(), 0);
}

/// Lease revocation end-to-end: an expired *idle* lease is reaped, the
/// pid serves a new client immediately, the stalled holder gets a typed
/// `LeaseRevoked` on next use, and after everything drops the pool has
/// exactly zero leaks — every pid acquirable again.
#[test]
fn revoked_lease_returns_the_pid_with_zero_leaks() {
    const PIDS: usize = 2;
    let db: Database<U64Map> = Database::new(PIDS);
    let pool = db.pool();

    let mut guard = pool.acquire_leased(Duration::from_millis(20));
    guard
        .with(|s| {
            s.insert(1, 10);
        })
        .expect("a fresh lease runs transactions");
    let camped_pid = guard.pid();
    assert_eq!(db.sessions_leased(), 1);

    // The holder stalls past its lease; the reaper reclaims the pid.
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(pool.reap_expired(), 1, "one expired idle lease");

    // The pid is back: with one other session out, a try_acquire for the
    // *last* free pid still succeeds — and sees the lease's writes.
    let other = pool.try_acquire().expect("first free pid");
    let mut reclaimed = pool
        .try_acquire()
        .expect("the reaped pid is immediately acquirable");
    assert!(
        [other.pid(), reclaimed.pid()].contains(&camped_pid),
        "the camped pid is one of the two now in service"
    );
    assert_eq!(reclaimed.get(&1), Some(10), "committed state survived");
    drop(reclaimed);
    drop(other);

    // The stalled holder finds out via a typed error, not a panic, and
    // its drop must not return the pid a second time.
    let err = guard
        .with(|s| {
            s.insert(2, 20);
        })
        .expect_err("a revoked lease must refuse to run");
    assert_eq!(err.pid, camped_pid);
    assert!(guard.is_revoked());
    drop(guard);

    assert_eq!(db.sessions_leased(), 0, "zero leaks after the guard drops");
    // No double-release: every pid is acquirable exactly once.
    let all: Vec<_> = (0..PIDS).map(|_| pool.try_acquire().unwrap()).collect();
    assert_eq!(all.len(), PIDS);
    assert!(pool.try_acquire().is_err(), "and not one more");
    drop(all);
    assert_eq!(db.sessions_leased(), 0);
}

/// Router placement is a pure function of (seed, key): same key, same
/// shard, on every call and from every thread.
#[test]
fn router_shard_stability_across_calls_and_threads() {
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(8, 1));
    let keys: Vec<String> = (0..200).map(|i| format!("tenant-{i}")).collect();
    let reference: Vec<usize> = keys.iter().map(|k| router.shard_for(k)).collect();

    // Every shard index is in range and the map is not degenerate (200
    // keys over 8 shards collapsing onto one shard would mean the hash
    // ignores the key).
    assert!(reference.iter().all(|&s| s < 8));
    let used: std::collections::HashSet<_> = reference.iter().collect();
    assert!(used.len() > 1, "all keys hashed to one shard");

    std::thread::scope(|s| {
        for _ in 0..4 {
            let router = Arc::clone(&router);
            let keys = &keys;
            let reference = &reference;
            s.spawn(move || {
                for (k, &expect) in keys.iter().zip(reference) {
                    assert_eq!(router.shard_for(k), expect, "placement moved for {k}");
                }
            });
        }
    });
}

/// The acceptance criterion: 4× more client threads than `P`, all
/// acquiring through the pool — no `Exhausted` errors anywhere, every
/// acquire eventually succeeds by parking, and the run ends with all
/// pids returned and one live version.
#[test]
fn oversubscribed_4x_churn_returns_all_pids() {
    oversubscribed_churn_scaled(4, 60);
}

/// Stress-tier oversubscription: the same invariants at 25× the churn.
#[test]
#[ignore = "stress tier: long-running, run with --ignored in release"]
fn oversubscribed_4x_churn_returns_all_pids_stress() {
    oversubscribed_churn_scaled(4, 1_500);
}

fn oversubscribed_churn_scaled(pids: usize, leases_per_client: usize) {
    let clients = 4 * pids; // 4× oversubscribed
    let db: Database<SumU64Map> = Database::new(pids);
    let pool = db.pool();
    let completed = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for c in 0..clients {
            let pool = &pool;
            let completed = &completed;
            s.spawn(move || {
                for i in 0..leases_per_client {
                    // Parks when all pids are out; never errors.
                    let mut session = pool.acquire();
                    let k = (c * leases_per_client + i) as u64;
                    session.write(|txn| {
                        txn.insert(k, 1);
                        txn.insert(k + 1, 1);
                    });
                    session.remove(&k);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(
        completed.load(Ordering::Relaxed),
        clients * leases_per_client,
        "every oversubscribed acquire must eventually succeed"
    );
    assert_eq!(db.sessions_leased(), 0, "all pids returned to the pool");
    assert_eq!(pool.waiters(), 0, "wait queue drained");
    assert_eq!(db.live_versions(), 1, "precise GC in quiescence");
    let stats = db.stats();
    assert_eq!(
        stats.commits,
        (clients * leases_per_client * 2) as u64,
        "two commits per lease"
    );
    // The pool is still fully usable afterwards.
    let all: Vec<_> = (0..pids).map(|_| pool.try_acquire().unwrap()).collect();
    assert_eq!(all.len(), pids);
}

/// The same 4× oversubscription across a router: clients hash to shards,
/// each shard's pool parks its own queue, and every shard drains clean.
#[test]
fn router_oversubscribed_churn_across_shards() {
    router_churn_scaled(40);
}

/// Stress-tier router churn.
#[test]
#[ignore = "stress tier: long-running, run with --ignored in release"]
fn router_oversubscribed_churn_across_shards_stress() {
    router_churn_scaled(1_000);
}

fn router_churn_scaled(leases_per_client: usize) {
    const SHARDS: usize = 4;
    const PIDS: usize = 2;
    let clients = 4 * SHARDS * PIDS; // 4× the aggregate N×P capacity
    let router: Router<U64Map> = Router::new(SHARDS, PIDS);
    let writes = AtomicU64::new(0);

    std::thread::scope(|s| {
        for c in 0..clients {
            let router = &router;
            let writes = &writes;
            s.spawn(move || {
                for i in 0..leases_per_client {
                    // Key by client: all of c's writes land on one shard.
                    let mut session = router.session(&c);
                    session.insert((c * leases_per_client + i) as u64, c as u64);
                    writes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(
        writes.load(Ordering::Relaxed),
        (clients * leases_per_client) as u64
    );
    assert_eq!(router.sessions_leased(), 0, "every shard's pids returned");
    assert_eq!(router.stats().commits, (clients * leases_per_client) as u64);
    assert_eq!(
        router.live_versions(),
        SHARDS as u64,
        "one live version per quiescent shard"
    );
    // Each client's keys are on exactly the shard its key hashed to.
    for c in 0..clients {
        let shard = router.shard_for(&c);
        let mut s = router.with_shard(shard).pool().acquire();
        assert_eq!(
            s.get(&((c * leases_per_client) as u64)),
            Some(c as u64),
            "client {c}'s writes must be on shard {shard}"
        );
    }
}
