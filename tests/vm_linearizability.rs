//! Linearizability-oriented oracles for the Version Maintenance
//! algorithms, complementing `vm_stress.rs`'s use-after-free oracle:
//!
//! * **freshness** — an `acquire` must return a version at least as new
//!   as any `set` whose *response* preceded the acquire's *invocation*
//!   (the sequential specification says acquire returns the current
//!   version; linearizability forces real-time order);
//! * **release uniqueness under multiple writers** — for the precise
//!   algorithms, every dead version token is returned by exactly one
//!   release, even when several writers race sets and aborts;
//! * **abort legality** — PSWF may only abort a `set` if a successful
//!   set overlapped the acquire–set window (1-abortability, Lemma B.10);
//! * **memory-ordering litmus probes** — seeded cross-thread
//!   message-passing and precise-release-singleton churn, added with the
//!   relaxed-ordering audit (`mvcc_vm::ordering`): the same probes run
//!   under the default acquire/release build and the `strict-sc` build
//!   in CI, so a mis-weakened role fails the suite rather than only a
//!   code review. Fast tiers run in tier-1; `*_stress` variants follow
//!   the scale-parameterized `#[ignore]` convention of `vm_stress.rs`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use multiversion::vm::{PswfVm, VersionMaintenance, VmKind};
use rand::{RngCore, SeedableRng, SmallRng};

/// Deterministic per-thread jitter for the litmus schedules: seeded so
/// failures reproduce, varied so the interleavings drift across
/// iterations instead of locking into one phase.
struct Jitter(SmallRng);

impl Jitter {
    fn new(seed: u64) -> Self {
        Jitter(SmallRng::seed_from_u64(seed))
    }

    /// Spin 0..=31 times — enough to shift thread phase, cheap enough
    /// to keep the probe hot.
    fn pause(&mut self) {
        for _ in 0..(self.0.next_u64() & 31) {
            std::hint::spin_loop();
        }
    }
}

/// Single writer publishes strictly increasing tokens and records the
/// newest *completed* set in `floor`; every reader's acquire must return
/// a token ≥ the floor it sampled before invoking acquire.
#[test]
fn acquire_is_real_time_fresh() {
    for kind in VmKind::ALL {
        let readers = 3usize;
        let vm = kind.build(readers + 1, 0);
        let floor = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|s| {
            for r in 0..readers {
                let vm = &vm;
                let floor = Arc::clone(&floor);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut out = Vec::new();
                    while !stop.load(Ordering::SeqCst) {
                        let before = floor.load(Ordering::SeqCst);
                        let got = vm.acquire(r + 1);
                        assert!(
                            got >= before,
                            "{kind:?}: acquire returned {got}, but set({before}) \
                             completed before the acquire began"
                        );
                        vm.release(r + 1, &mut out);
                        out.clear();
                    }
                });
            }
            {
                let vm = &vm;
                let floor = Arc::clone(&floor);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for token in 1..=4_000u64 {
                        vm.acquire(0);
                        assert!(vm.set(0, token), "single writer never aborts");
                        // Publish only after set's response: readers that
                        // sample this floor start strictly after the set.
                        floor.store(token, Ordering::SeqCst);
                        vm.release(0, &mut out);
                        out.clear();
                    }
                    stop.store(true, Ordering::SeqCst);
                });
            }
        });
    }
}

/// Multi-writer PSWF/PSLF: every committed token except the final
/// current one is collected exactly once, across all releases.
#[test]
fn precise_release_uniqueness_multi_writer() {
    for kind in [VmKind::Pswf, VmKind::Pslf] {
        const WRITERS: usize = 4;
        const PER: u64 = 1_500;
        let vm = kind.build(WRITERS, 0);
        let committed = Arc::new(AtomicU64::new(0));
        // collected[token] counts how many releases returned it.
        let collected: Arc<Vec<AtomicU64>> = Arc::new(
            (0..(WRITERS as u64 * PER + 1) * 2)
                .map(|_| AtomicU64::new(0))
                .collect(),
        );

        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let vm = &vm;
                let committed = Arc::clone(&committed);
                let collected = Arc::clone(&collected);
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut commits = 0u64;
                    let mut next_token = (w as u64) * PER + 1;
                    while commits < PER {
                        vm.acquire(w);
                        if vm.set(w, next_token) {
                            commits += 1;
                            next_token += 1;
                            committed.fetch_add(1, Ordering::SeqCst);
                        }
                        vm.release(w, &mut out);
                        for t in out.drain(..) {
                            collected[t as usize].fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });

        // Quiesce: one last cycle collects the second-to-last version.
        let mut out = Vec::new();
        vm.acquire(0);
        assert!(vm.set(0, u64::MAX - 3));
        vm.release(0, &mut out);
        let current = u64::MAX - 3;

        let mut total = out.len() as u64; // tail collection
        for (tok, cnt) in collected.iter().enumerate() {
            let c = cnt.load(Ordering::SeqCst);
            assert!(
                c <= 1,
                "{kind:?}: token {tok} collected {c} times (double free)"
            );
            total += c;
        }
        // Everything committed except the current version must have been
        // collected exactly once (plus the initial token 0).
        let commits = committed.load(Ordering::SeqCst) + 1; // + our tail set
        assert_eq!(
            total,
            commits, // commits versions died: all but current, plus initial 0
            "{kind:?}: dead-version count mismatch (current={current})"
        );
        assert_eq!(vm.uncollected_versions(), 1, "{kind:?}: precise quiescence");
    }
}

/// PSWF abort legality: with an overlap witness — a monotonically
/// increasing commit counter — every abort must observe that some other
/// writer committed during its acquire→set window.
#[test]
fn pswf_aborts_only_with_concurrent_success() {
    const WRITERS: usize = 3;
    let vm = Arc::new(PswfVm::new(WRITERS, 0));
    let commit_seq = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let vm = Arc::clone(&vm);
            let commit_seq = Arc::clone(&commit_seq);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut out = Vec::new();
                let mut token = (w as u64 + 1) << 40;
                let mut rounds = 0u64;
                while !stop.load(Ordering::SeqCst) && rounds < 3_000 {
                    let seq_before = commit_seq.load(Ordering::SeqCst);
                    vm.acquire(w);
                    token += 1;
                    if vm.set(w, token) {
                        commit_seq.fetch_add(1, Ordering::SeqCst);
                    } else {
                        // A legal abort implies some writer's set
                        // succeeded during our window; its counter bump
                        // trails its set by a few instructions, so give
                        // it a bounded grace period before declaring the
                        // abort spurious.
                        let mut witnessed = false;
                        for _ in 0..50_000_000u64 {
                            if commit_seq.load(Ordering::SeqCst) > seq_before {
                                witnessed = true;
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        assert!(
                            witnessed,
                            "writer {w}: abort without any concurrent commit \
                             (seq stayed {seq_before})"
                        );
                    }
                    vm.release(w, &mut out);
                    out.clear();
                    rounds += 1;
                }
                stop.store(true, Ordering::SeqCst);
            });
        }
    });
}

/// The helping path: a reader whose acquire is endlessly invalidated by
/// sets still completes in a bounded number of its own steps (wait-
/// freedom witness: the loop below would livelock under PSLF-style
/// unbounded retries if helping were broken, tripping the watchdog).
#[test]
fn pswf_acquire_completes_under_set_storm() {
    let readers = 2usize;
    let vm = Arc::new(PswfVm::new(readers + 1, 0));
    let stop = Arc::new(AtomicBool::new(false));
    let acquires = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        {
            let vm = Arc::clone(&vm);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut out = Vec::new();
                let mut token = 1u64;
                while !stop.load(Ordering::SeqCst) {
                    vm.acquire(0);
                    vm.set(0, token);
                    token += 1;
                    vm.release(0, &mut out);
                    out.clear();
                }
            });
        }
        for r in 0..readers {
            let vm = Arc::clone(&vm);
            let stop = Arc::clone(&stop);
            let acquires = Arc::clone(&acquires);
            s.spawn(move || {
                let mut out = Vec::new();
                for _ in 0..20_000 {
                    vm.acquire(r + 1);
                    vm.release(r + 1, &mut out);
                    out.clear();
                    acquires.fetch_add(1, Ordering::Relaxed);
                }
                stop.store(true, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(acquires.load(Ordering::Relaxed), 2 * 20_000);
}

/// Message-passing litmus over the VM's publish edge, all six kinds: a
/// payload written *before* `set(k, token)` must be visible to any
/// process whose `acquire` returns `token`. This is exactly how
/// `mvcc-core` uses the VM (tokens carry root node ids whose nodes are
/// plain memory written before `set`), and it probes the
/// `VERSION_CAS`-release → `VERSION_LOAD`-acquire pairing — including
/// PSWF's helper-committed announcements, where the edge is a chain
/// through `A[k]` rather than a direct read of `V`.
#[test]
fn message_passing_payload_visible_after_acquire() {
    message_passing_scaled(3_000);
}

/// Stress tier of [`message_passing_payload_visible_after_acquire`]:
/// 20× the published versions. Run via the CI `stress` job
/// (`cargo test --release -- --ignored`).
#[test]
#[ignore = "stress tier: long-running, run with --ignored in release"]
fn message_passing_payload_visible_after_acquire_stress() {
    message_passing_scaled(60_000);
}

fn message_passing_scaled(writes: u64) {
    for kind in VmKind::ALL {
        let readers = 2usize;
        let vm = kind.build(readers + 1, 0);
        let stop = Arc::new(AtomicBool::new(false));
        // payload[token], written Relaxed on purpose: the *only* edge
        // that may make it visible is the VM's publish/observe pairing.
        let payload: Arc<Vec<AtomicU64>> =
            Arc::new((0..writes + 1).map(|_| AtomicU64::new(0)).collect());
        let expected = |token: u64| token.wrapping_mul(31).wrapping_add(7);
        payload[0].store(expected(0), Ordering::Relaxed);

        std::thread::scope(|s| {
            for r in 0..readers {
                let vm = &vm;
                let stop = Arc::clone(&stop);
                let payload = Arc::clone(&payload);
                s.spawn(move || {
                    let mut jit = Jitter::new(0xC0FFEE ^ r as u64);
                    let mut out = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let t = vm.acquire(r + 1);
                        let got = payload[t as usize].load(Ordering::Relaxed);
                        assert_eq!(
                            got,
                            expected(t),
                            "{kind:?}: acquire({t}) returned a version whose \
                             payload write is not visible (broken publish edge)"
                        );
                        jit.pause();
                        vm.release(r + 1, &mut out);
                        out.clear();
                    }
                });
            }
            {
                let vm = &vm;
                let stop = Arc::clone(&stop);
                let payload = Arc::clone(&payload);
                s.spawn(move || {
                    let mut jit = Jitter::new(0xFACADE);
                    let mut out = Vec::new();
                    for token in 1..=writes {
                        vm.acquire(0);
                        // Figure 1's order: create the version's data,
                        // then install it.
                        payload[token as usize].store(expected(token), Ordering::Relaxed);
                        assert!(vm.set(0, token), "single writer never aborts");
                        vm.release(0, &mut out);
                        out.clear();
                        jit.pause();
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });
    }
}

/// Precise-release singleton property under churn, all six kinds: every
/// dead token is handed back at most once (all kinds), each single
/// `release` returns at most one token and quiescence leaves exactly
/// the current version (precise kinds only — HP/EP/IBR legally batch).
/// Probes the clear→scan windows of Algorithm 4's release protocol and
/// the announce/scan fence pairings of the imprecise kinds.
#[test]
fn release_singleton_under_churn() {
    release_singleton_scaled(1_200);
}

/// Stress tier of [`release_singleton_under_churn`] (PR 3 convention):
/// 20× the commits per writer.
#[test]
#[ignore = "stress tier: long-running, run with --ignored in release"]
fn release_singleton_under_churn_stress() {
    release_singleton_scaled(24_000);
}

fn release_singleton_scaled(commits_per_writer: u64) {
    for kind in VmKind::ALL {
        const WRITERS: usize = 2;
        const READERS: usize = 2;
        let vm = kind.build(WRITERS + READERS, 0);
        let token_space = (WRITERS as u64 + 1) * (commits_per_writer * 4 + 1);
        let collect_counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..token_space).map(|_| AtomicU64::new(0)).collect());
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|s| {
            for r in 0..READERS {
                let vm = &vm;
                let stop = Arc::clone(&stop);
                let counts = Arc::clone(&collect_counts);
                s.spawn(move || {
                    let mut jit = Jitter::new(0xBEEF ^ r as u64);
                    let mut out = Vec::new();
                    let pid = WRITERS + r;
                    while !stop.load(Ordering::Relaxed) {
                        vm.acquire(pid);
                        jit.pause();
                        vm.release(pid, &mut out);
                        if kind.is_precise() {
                            assert!(out.len() <= 1, "{kind:?}: precise release returned {out:?}");
                        }
                        for t in out.drain(..) {
                            counts[t as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            for w in 0..WRITERS {
                let vm = &vm;
                let stop = Arc::clone(&stop);
                let counts = Arc::clone(&collect_counts);
                s.spawn(move || {
                    let mut jit = Jitter::new(0xDEAD ^ w as u64);
                    let mut out = Vec::new();
                    let mut committed = 0u64;
                    let mut attempts = 0u64;
                    let base = (w as u64 + 1) * (commits_per_writer * 4 + 1);
                    while committed < commits_per_writer && attempts < commits_per_writer * 4 {
                        attempts += 1;
                        vm.acquire(w);
                        if vm.set(w, base + attempts) {
                            committed += 1;
                        }
                        jit.pause();
                        vm.release(w, &mut out);
                        if kind.is_precise() {
                            assert!(out.len() <= 1, "{kind:?}: precise release returned {out:?}");
                        }
                        for t in out.drain(..) {
                            counts[t as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if w == 0 {
                        stop.store(true, Ordering::Relaxed);
                    }
                });
            }
        });

        for (tok, cnt) in collect_counts.iter().enumerate() {
            let c = cnt.load(Ordering::Relaxed);
            assert!(
                c <= 1,
                "{kind:?}: token {tok} collected {c} times (double free)"
            );
        }
        if kind.is_precise() {
            // Quiesce with one last write cycle, then the precise kinds
            // must be down to exactly the current version.
            let mut out = Vec::new();
            vm.acquire(0);
            assert!(vm.set(0, token_space + 1));
            vm.release(0, &mut out);
            assert_eq!(
                vm.uncollected_versions(),
                1,
                "{kind:?}: precise quiescence after churn"
            );
        }
    }
}
