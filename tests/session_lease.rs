//! Lease-lifecycle tests for the session API: the VM contract ("each
//! process id used by at most one thread at a time") is now enforced by
//! `Database::session`'s lock-free pid registry, and these tests pin the
//! lifecycle down — exhaustion, reuse after drop, double-lease refusal,
//! `Send + !Sync` marker traits, and a multi-thread session-churn stress
//! that must end with precise GC's one live version.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use multiversion::core::{Database, Session, SessionError};
use multiversion::ftree::U64Map;

/// `Session` must stay `Send`: a logical writer may migrate between
/// threads (e.g. a thread pool). Compile-time check.
#[allow(dead_code)]
fn session_is_send(s: Session<'static, U64Map>) -> impl Send {
    s
}

/// `Session` must stay `!Sync`: sharing one pid between threads is
/// exactly what the lease exists to prevent. The companion compile-time
/// check is the `compile_fail` doctest on `mvcc_core::Session` itself:
///
/// ```compile_fail
/// fn assert_sync<T: Sync>() {}
/// assert_sync::<multiversion::core::Session<'static, multiversion::ftree::U64Map>>();
/// ```
#[test]
fn session_not_sync_doctest_is_exercised() {
    // The negative assertion lives in the doctests above and on
    // `mvcc_core::Session`; this test documents where, so a future
    // `unsafe impl Sync` cannot land without tripping `cargo test`.
}

#[test]
fn pool_exhaustion_returns_err() {
    let db: Database<U64Map> = Database::new(3);
    let s0 = db.session().unwrap();
    let s1 = db.session().unwrap();
    let s2 = db.session().unwrap();
    assert_eq!(db.sessions_leased(), 3);
    match db.session() {
        Err(SessionError::Exhausted { processes }) => assert_eq!(processes, 3),
        other => panic!("expected Exhausted, got {:?}", other.map(|s| s.pid())),
    }
    // Pids are distinct.
    let mut pids = [s0.pid(), s1.pid(), s2.pid()];
    pids.sort_unstable();
    assert_eq!(pids, [0, 1, 2]);
}

#[test]
fn dropping_a_session_returns_its_pid() {
    let db: Database<U64Map> = Database::new(2);
    let s0 = db.session().unwrap();
    let _s1 = db.session().unwrap();
    let freed = s0.pid();
    assert!(db.session().is_err(), "pool exhausted while both live");
    drop(s0);
    let s2 = db.session().expect("dropped pid must be leasable again");
    assert_eq!(s2.pid(), freed, "the freed pid is what comes back");
    assert_eq!(db.sessions_leased(), 2);
}

#[test]
fn session_for_on_leased_pid_fails() {
    let db: Database<U64Map> = Database::new(4);
    let held = db.session_for(2).unwrap();
    assert_eq!(held.pid(), 2);
    match db.session_for(2) {
        Err(SessionError::PidLeased { pid }) => assert_eq!(pid, 2),
        other => panic!("expected PidLeased, got {:?}", other.map(|s| s.pid())),
    }
    // Anonymous leases skip the held pid.
    let a = db.session().unwrap();
    let b = db.session().unwrap();
    let c = db.session().unwrap();
    assert!(![a.pid(), b.pid(), c.pid()].contains(&2));
    assert!(matches!(db.session(), Err(SessionError::Exhausted { .. })));
    drop(held);
    assert_eq!(db.session().unwrap().pid(), 2);
}

#[test]
fn session_counters_flush_on_drop() {
    let db: Database<U64Map> = Database::new(1);
    {
        let mut s = db.session().unwrap();
        s.insert(1, 1);
        s.insert(2, 2);
        s.get(&1);
        assert_eq!(s.stats().commits, 2);
        assert_eq!(s.stats().reads, 1);
        // Global stats lag while the session is live (local counting).
        assert_eq!(db.stats().commits, 0);
    }
    let stats = db.stats();
    assert_eq!(stats.commits, 2);
    assert_eq!(stats.reads, 1);
    assert_eq!(stats.aborts, 0);
}

/// Multi-thread session churn: threads continuously lease, transact and
/// drop sessions. Nothing may double-lease (checked by the pool), every
/// pid must come back, and at quiescence precise GC leaves exactly one
/// live version.
#[test]
fn session_churn_stress_ends_with_one_live_version() {
    const PIDS: usize = 4;
    const THREADS: usize = 8;
    const ROUNDS: u64 = 400;
    let db: Arc<Database<U64Map>> = Arc::new(Database::new(PIDS));
    let leases = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = db.clone();
            let leases = leases.clone();
            scope.spawn(move || {
                let mut i = 0u64;
                let mut done = 0u64;
                while done < ROUNDS {
                    i += 1;
                    // Mix anonymous and targeted leases to exercise the
                    // registry's tombstone path under contention.
                    let session = if i.is_multiple_of(3) {
                        db.session_for((t + i as usize) % PIDS).ok()
                    } else {
                        db.session().ok()
                    };
                    let Some(mut session) = session else {
                        std::thread::yield_now();
                        continue;
                    };
                    leases.fetch_add(1, Ordering::Relaxed);
                    let key = (t as u64) << 32 | done;
                    session.write(|txn| {
                        txn.insert(key % 512, key);
                    });
                    let got = session.read(|s| s.get(&(key % 512)).copied());
                    assert!(got.is_some(), "own write lost");
                    done += 1;
                    // session drops here: pid back to the pool
                }
            });
        }
    });
    assert!(
        leases.load(Ordering::Relaxed) >= THREADS as u64 * ROUNDS,
        "every round leased at least once"
    );
    assert_eq!(db.sessions_leased(), 0, "all pids returned");
    // Quiescence: precise GC has collected every superseded version.
    assert_eq!(db.live_versions(), 1);
    // And the full pool is leasable again.
    let all: Vec<_> = (0..PIDS).map(|_| db.session().unwrap()).collect();
    assert_eq!(all.len(), PIDS);
}

// (The companion check that the deprecated raw-pid shims bypass the
// registry lives in mvcc-core's own unit tests — no raw-pid transaction
// calls belong outside that crate anymore.)

/// A session leased, moved to another thread, used there and dropped
/// there still returns its pid (Send semantics + cross-thread drop).
#[test]
fn session_moves_across_threads() {
    let db: Arc<Database<U64Map>> = Arc::new(Database::new(1));
    let mut s = db.session().unwrap();
    s.insert(1, 10);
    let db2 = db.clone();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            // The session migrated here; its pinned shard and buffer came
            // with it.
            s.insert(2, 20);
            assert_eq!(s.get(&1), Some(10));
            drop(s);
            assert!(db2.session().is_ok(), "pid released on foreign thread");
        });
    });
    assert_eq!(db.sessions_leased(), 0);
    assert_eq!(db.live_versions(), 1);
}
