//! Sharded-arena correctness: uniqueness of handed-out ids under
//! multi-thread churn (across pinned, affine and stolen allocation
//! paths) and generation-tag detection of stale `NodeId` reuse across
//! shards.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use proptest::prelude::*;

use multiversion::plm::{Arena, Leaf, NodeId};

/// Every id handed out while live is unique: a shared live-set records
/// each allocation (insert must never find the id present) and each
/// free (remove must find it). Threads deliberately mix allocation
/// shards — half pin a "wrong" shard so frees land cross-shard and the
/// steal path runs — and payloads are verified before every free so a
/// double-handout would also surface as a torn value.
#[test]
fn churn_never_hands_out_a_live_id_twice() {
    let threads = 8usize;
    let rounds = 5_000u64;
    let arena: Arena<Leaf<u64>> = Arena::with_shards(4);
    let live: Mutex<HashSet<u32>> = Mutex::new(HashSet::new());

    std::thread::scope(|s| {
        for t in 0..threads {
            let arena = &arena;
            let live = &live;
            s.spawn(move || {
                // Even threads use their affine shard; odd threads pin a
                // rotating shard so allocation and free shards differ.
                let mut held: Vec<(NodeId, u64)> = Vec::new();
                for i in 0..rounds {
                    let ctx = arena.ctx_for(t + (i as usize % 3));
                    let payload = (t as u64) << 32 | i;
                    let id = if t % 2 == 0 {
                        arena.alloc(Leaf(payload))
                    } else {
                        arena.alloc_in(ctx, Leaf(payload))
                    };
                    assert!(
                        live.lock().unwrap().insert(id.index()),
                        "id {id:?} handed out while still live"
                    );
                    held.push((id, payload));
                    // Keep roughly 16 nodes in flight; free the oldest,
                    // sometimes through a different shard than alloc'd.
                    if held.len() > 16 {
                        let (old, expect) = held.remove(0);
                        assert_eq!(arena.get(old).0, expect, "torn payload at {old:?}");
                        assert!(
                            live.lock().unwrap().remove(&old.index()),
                            "freeing id {old:?} not recorded live"
                        );
                        if i % 2 == 0 {
                            arena.collect(old);
                        } else {
                            arena.collect_in(arena.ctx_for(t + 2), old);
                        }
                    }
                }
                for (id, expect) in held {
                    assert_eq!(arena.get(id).0, expect);
                    assert!(live.lock().unwrap().remove(&id.index()));
                    arena.collect(id);
                }
            });
        }
    });

    assert!(live.lock().unwrap().is_empty());
    assert_eq!(arena.live(), 0, "churn must end with an empty arena");
    assert_eq!(arena.allocated_total(), arena.freed_total());
}

/// Operations for the generation-tag property test.
#[derive(Debug, Clone)]
enum ChurnOp {
    /// Allocate through the given shard seed.
    Alloc { seed: usize, payload: u64 },
    /// Free the i-th oldest held node through the given shard seed.
    Free { seed: usize, index: usize },
}

fn churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        3 => (0usize..4, 0u64..1_000_000).prop_map(|(seed, payload)| ChurnOp::Alloc { seed, payload }),
        2 => (0usize..4, 0usize..32).prop_map(|(seed, index)| ChurnOp::Free { seed, index }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Generation tags keep catching stale ids across shards: whenever a
    /// slot index is recycled — regardless of which shard freed it and
    /// which shard handed it back out — the new incarnation's generation
    /// differs from the stale one, so a reader holding the old `NodeId`
    /// can always be detected by comparing tags.
    #[test]
    fn generation_tags_catch_stale_reuse_across_shards(
        ops in prop::collection::vec(churn_op(), 1..200),
    ) {
        let arena: Arena<Leaf<u64>> = Arena::with_shards(4);
        // index -> generation observed at (latest) allocation
        let mut live: Vec<(NodeId, u32, u64)> = Vec::new();
        // index -> generation the slot carried when we freed it
        let mut stale: HashMap<u32, u32> = HashMap::new();

        for op in &ops {
            match op {
                ChurnOp::Alloc { seed, payload } => {
                    let id = arena.alloc_in(arena.ctx_for(*seed), Leaf(*payload));
                    let gen = arena.generation(id);
                    if let Some(old_gen) = stale.get(&id.index()) {
                        prop_assert_ne!(
                            gen, *old_gen,
                            "recycled slot {:?} kept its stale generation", id
                        );
                    }
                    live.push((id, gen, *payload));
                }
                ChurnOp::Free { seed, index } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, gen, payload) = live.remove(index % live.len());
                    prop_assert_eq!(arena.get(id).0, payload);
                    prop_assert_eq!(arena.generation(id), gen, "generation drifted while live");
                    stale.insert(id.index(), gen);
                    arena.collect_in(arena.ctx_for(*seed), id);
                }
            }
        }

        // Live ids still resolve; the arena accounts precisely.
        for (id, gen, payload) in &live {
            prop_assert_eq!(arena.get(*id).0, *payload);
            prop_assert_eq!(arena.generation(*id), *gen);
        }
        prop_assert_eq!(arena.live(), live.len() as u64);
        for (id, _, _) in live {
            arena.collect(id);
        }
        prop_assert_eq!(arena.live(), 0);
    }
}
