//! End-to-end wire-protocol server tests over real loopback sockets.
//!
//! The acceptance bar for the network layer: a server multiplexing 4×
//! more connections than the router has pids serves *every* request
//! correctly (each client model-checks its own key range against a
//! local `HashMap`), admits strictly FIFO per shard (the server's own
//! ticket audit stays at zero violations), and when the last client
//! hangs up every pid is back in its pool.
//!
//! The `*_stress` variant runs the same oracles at stress-tier scale
//! via the CI `stress` job (`cargo test --release -- --ignored`).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use multiversion::core::Router;
use multiversion::ftree::U64Map;
use multiversion::net::{
    Client, ClientError, ErrorCode, Request, Response, Server, ServerConfig, TxnOp,
};

/// Tier-1 smoke: one client, every request type, over a real socket.
#[test]
fn loopback_round_trip_serves_every_request_type() {
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(2, 2));
    let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.get(1).unwrap(), None, "empty database");
    client.put(1, 10).unwrap();
    assert_eq!(client.get(1).unwrap(), Some(10));
    client.put(1, 11).unwrap();
    assert_eq!(client.get(1).unwrap(), Some(11), "overwrite");
    assert_eq!(client.del(1).unwrap(), Some(11));
    assert_eq!(client.del(1).unwrap(), None, "double delete");

    // A transaction batch on one key's shard commits atomically.
    let applied = client
        .txn(vec![
            TxnOp::Put { key: 2, value: 20 },
            TxnOp::Put { key: 2, value: 21 },
            TxnOp::Del { key: 2 },
        ])
        .unwrap();
    assert_eq!(applied, 3);
    assert_eq!(client.get(2).unwrap(), None, "txn net effect applied");

    // An empty batch is a no-op, not an error.
    assert_eq!(client.txn(vec![]).unwrap(), 0);

    drop(client);
    let stats = handle.server().stats();
    handle.shutdown().unwrap();
    assert_eq!(stats.fifo_violations, 0);
    assert_eq!(stats.proto_errors, 0);
    assert_eq!(router.sessions_leased(), 0, "no pids leaked");
}

/// A TXN whose keys hash to different shards is refused with the typed
/// error, applies nothing, and leaves the connection usable.
#[test]
fn cross_shard_txn_is_refused_without_side_effects() {
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(4, 1));
    // Find two keys on different shards (the hash spreads; scan a few).
    let k0 = 0u64;
    let k1 = (1..100)
        .find(|k| router.shard_for(k) != router.shard_for(&k0))
        .expect("some key lands on another shard");

    let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let err = client
        .txn(vec![
            TxnOp::Put { key: k0, value: 1 },
            TxnOp::Put { key: k1, value: 2 },
        ])
        .expect_err("keys on two shards cannot be atomic");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::CrossShardTxn),
        other => panic!("expected a typed server error, got {other:?}"),
    }

    // Nothing was applied, and the connection still works.
    assert_eq!(client.get(k0).unwrap(), None);
    assert_eq!(client.get(k1).unwrap(), None);
    client.put(k0, 7).unwrap();
    assert_eq!(client.get(k0).unwrap(), Some(7));

    drop(client);
    handle.shutdown().unwrap();
    assert_eq!(router.sessions_leased(), 0);
}

/// A malformed frame gets a typed error reply, the connection is then
/// closed by the server, and other connections are unaffected.
#[test]
fn protocol_violation_closes_only_the_offending_connection() {
    use std::io::{Read, Write};

    let router: Arc<Router<U64Map>> = Arc::new(Router::new(1, 1));
    let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();

    let mut good = Client::connect(handle.addr()).unwrap();
    good.put(1, 10).unwrap();

    // Hand-craft a frame with a bad version byte.
    let mut bad = std::net::TcpStream::connect(handle.addr()).unwrap();
    bad.write_all(&[2u8, 0, 0, 0, 0xFF, 0x01]).unwrap(); // len=2, version=0xFF
    let mut reply = Vec::new();
    bad.read_to_end(&mut reply).unwrap(); // server replies then closes
    let (payload, _) = multiversion::net::proto::split_frame(&reply)
        .unwrap()
        .expect("one whole error frame before close");
    match multiversion::net::proto::decode_response(payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadVersion),
        other => panic!("expected an error reply, got {other:?}"),
    }

    // The well-behaved connection never noticed.
    assert_eq!(good.get(1).unwrap(), Some(10));

    drop(good);
    let stats = handle.server().stats();
    handle.shutdown().unwrap();
    assert_eq!(stats.proto_errors, 1);
    assert_eq!(router.sessions_leased(), 0);
}

/// Pipelined requests on one connection come back in order.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(2, 1));
    let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    const N: u64 = 40;
    for k in 0..N {
        client
            .send(&Request::Put {
                key: k,
                value: k * 2,
            })
            .unwrap();
    }
    for k in 0..N {
        client.send(&Request::Get { key: k }).unwrap();
    }
    for k in 0..N {
        assert_eq!(client.recv().unwrap(), Response::Done, "put #{k}");
    }
    for k in 0..N {
        assert_eq!(
            client.recv().unwrap(),
            Response::Value { value: Some(k * 2) },
            "get #{k} out of order"
        );
    }

    drop(client);
    handle.shutdown().unwrap();
    assert_eq!(router.sessions_leased(), 0);
}

/// The acceptance criterion: 64 connections onto a 2-shard × 8-pid
/// router — 4× more connections than pids — every request model-checked,
/// strict FIFO admission, zero leaks.
#[test]
fn oversubscribed_connections_are_served_correctly_and_fifo() {
    oversubscribed_net_scaled(64, 30);
}

/// Stress-tier: the same oracles with a deeper per-connection workload.
#[test]
#[ignore = "stress tier: long-running, run with --ignored in release"]
fn oversubscribed_connections_are_served_correctly_and_fifo_stress() {
    oversubscribed_net_scaled(64, 400);
}

fn oversubscribed_net_scaled(conns: usize, requests_per_conn: usize) {
    const SHARDS: usize = 2;
    const PIDS: usize = 8;
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(SHARDS, PIDS));
    assert!(
        conns >= 4 * SHARDS * PIDS,
        "the point is ≥4x more connections than pids"
    );
    let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    std::thread::scope(|s| {
        for c in 0..conns {
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Disjoint key range per connection: the model is local.
                let base = (c * requests_per_conn * 4) as u64;
                let mut model: HashMap<u64, u64> = HashMap::new();
                for i in 0..requests_per_conn {
                    let k = base + (i % 7) as u64;
                    match i % 4 {
                        0 => {
                            let v = (c + i) as u64;
                            client.put(k, v).unwrap();
                            model.insert(k, v);
                        }
                        1 => {
                            assert_eq!(
                                client.get(k).unwrap(),
                                model.get(&k).copied(),
                                "conn {c} request {i}: GET diverged from model"
                            );
                        }
                        2 => {
                            // Single-shard batch: same key, so trivially
                            // co-sharded.
                            let v = (c * 31 + i) as u64;
                            let applied = client
                                .txn(vec![
                                    TxnOp::Put { key: k, value: v },
                                    TxnOp::Put {
                                        key: k,
                                        value: v + 1,
                                    },
                                ])
                                .unwrap();
                            assert_eq!(applied, 2);
                            model.insert(k, v + 1);
                        }
                        _ => {
                            assert_eq!(
                                client.del(k).unwrap(),
                                model.remove(&k),
                                "conn {c} request {i}: DEL diverged from model"
                            );
                        }
                    }
                }
                // Final sweep: the server agrees with the whole model.
                for (&k, &v) in &model {
                    assert_eq!(client.get(k).unwrap(), Some(v));
                }
            });
        }
    });

    let stats = handle.server().stats();
    handle.shutdown().unwrap();
    assert_eq!(stats.connections, conns as u64);
    assert_eq!(stats.proto_errors, 0);
    assert_eq!(
        stats.fifo_violations, 0,
        "per-shard admission must grant tickets in arrival order"
    );
    assert_eq!(
        router.sessions_leased(),
        0,
        "every pid returned after the last client hung up"
    );
    assert_eq!(
        router.live_versions(),
        SHARDS as u64,
        "precise GC: one live version per quiescent shard"
    );
}

/// Tier-1 shed smoke (also the single-core degradation check: the CI
/// `MVCC_POOL_THREADS=1` variant runs this same test): with
/// `shed_depth = 0` every data request is answered with a typed
/// `Overloaded` carrying the configured backoff hint, the connection
/// stays open through repeated sheds, and nothing is ever applied.
#[test]
fn shed_replies_are_typed_carry_the_hint_and_apply_nothing() {
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(1, 1));
    let handle = Server::start_with(
        Arc::clone(&router),
        "127.0.0.1:0",
        ServerConfig {
            shed_depth: Some(0),
            retry_after_hint: Duration::from_millis(7),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    for i in 0..5u64 {
        match client.put(1, 10 + i) {
            Err(ClientError::Overloaded { retry_after_ms, .. }) => {
                assert_eq!(retry_after_ms, 7, "hint travels on the wire");
            }
            other => panic!("shed #{i}: expected Overloaded, got {other:?}"),
        }
    }
    assert!(
        matches!(client.get(1), Err(ClientError::Overloaded { .. })),
        "the connection survived five sheds and still answers"
    );

    drop(client);
    let stats = handle.server().stats();
    handle.shutdown().unwrap();
    assert!(stats.shed >= 6, "every data request was shed at the door");
    assert_eq!(
        stats.requests, stats.shed,
        "shed replies are answered requests"
    );
    assert_eq!(router.sessions_leased(), 0);
    // Side-effect-free: straight to the store, bypassing the server.
    assert_eq!(router.session(&1u64).get(&1), None);
    assert_eq!(router.live_versions(), 1, "only the initial empty version");
}

/// A request whose admission outlives `request_deadline` is answered
/// `Overloaded` *while the pool is still camped* (the tick re-polls the
/// expired future; no release ever wakes it), applies nothing, and the
/// connection keeps working afterwards.
#[test]
fn queued_request_past_its_deadline_is_shed_and_the_conn_survives() {
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(1, 1));
    let handle = Server::start_with(
        Arc::clone(&router),
        "127.0.0.1:0",
        ServerConfig {
            request_deadline: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Camp the only pid so every admission parks.
    let blocker = router.session(&0u64);
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(
        matches!(client.put(1, 10), Err(ClientError::Overloaded { .. })),
        "the reply arrived while the pid was still camped: deadline, not release"
    );
    assert!(
        matches!(client.get(1), Err(ClientError::Overloaded { .. })),
        "second request on the same conn also expires cleanly"
    );
    drop(blocker);

    // Pool free again: the same connection serves, and the expired put
    // left nothing behind.
    assert_eq!(client.get(1).unwrap(), None, "expired PUT applied nothing");
    client.put(1, 11).unwrap();
    assert_eq!(client.get(1).unwrap(), Some(11));

    drop(client);
    let stats = handle.server().stats();
    handle.shutdown().unwrap();
    assert!(stats.deadline_expired >= 2);
    assert_eq!(stats.fifo_violations, 0);
    assert_eq!(router.sessions_leased(), 0);
}

/// The unbounded baseline the deadline exists to fix: with the default
/// (fully permissive) config, a request against a camped pool is not
/// answered until the camper lets go — its wait is exactly as long as
/// the camp.
#[test]
fn without_shedding_a_request_waits_out_the_camped_pool() {
    const CAMP: Duration = Duration::from_millis(300);
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(1, 1));
    let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let blocker = router.session(&0u64);
    let waiter = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.put(1, 10).unwrap();
        Instant::now()
    });
    std::thread::sleep(CAMP);
    let released = Instant::now();
    drop(blocker);
    let answered = waiter.join().unwrap();
    assert!(
        answered >= released,
        "the reply cannot precede the camper's release"
    );

    handle.shutdown().unwrap();
    assert_eq!(router.sessions_leased(), 0);
}

/// Idle connections are reaped by the tick once `idle_timeout` passes;
/// a connection mid-pipeline (request parked in the admission queue)
/// is *never* reaped no matter how long it waits.
#[test]
fn idle_conns_are_reaped_while_mid_pipeline_conns_survive() {
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(1, 1));
    let handle = Server::start_with(
        Arc::clone(&router),
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // `idler` completes one request, then goes quiet.
    let mut idler = Client::connect(addr).unwrap();
    idler.put(1, 10).unwrap();

    // `worker` parks a request behind a camped pid: pending, not idle.
    let blocker = router.session(&0u64);
    let mut worker = Client::connect(addr).unwrap();
    worker.send(&Request::Put { key: 2, value: 20 }).unwrap();

    std::thread::sleep(Duration::from_millis(300));
    drop(blocker);

    assert_eq!(
        worker.recv().unwrap(),
        Response::Done,
        "a conn waiting on admission outlived six idle timeouts"
    );
    assert!(
        matches!(idler.get(1), Err(ClientError::Io(_))),
        "the idle conn was closed by the reaper"
    );

    drop(worker);
    let stats = handle.server().stats();
    handle.shutdown().unwrap();
    assert!(stats.reaped_idle >= 1, "the idler was reaped");
    assert_eq!(router.sessions_leased(), 0);
}

/// The adversarial open-loop storm: every pid camped for the whole run,
/// 12 pipelined connections firing 8 puts each. With shedding + a
/// request deadline the server answers *all 96* requests with typed
/// `Overloaded` while the pool stays camped — the storm joins in
/// bounded time where the permissive config would park it until the
/// campers exit (see `without_shedding_a_request_waits_out_the_camped_pool`).
/// Afterwards: zero side effects, zero leaks, FIFO intact.
#[test]
fn open_loop_storm_with_shedding_is_answered_while_the_pool_is_camped() {
    const CONNS: usize = 12;
    const REQS: usize = 8;
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(1, 2));
    let handle = Server::start_with(
        Arc::clone(&router),
        "127.0.0.1:0",
        ServerConfig {
            shed_depth: Some(3),
            request_deadline: Some(Duration::from_millis(50)),
            retry_after_hint: Duration::from_millis(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Camp both pids for the storm's entire lifetime.
    let campers = [router.session(&0u64), router.session(&0u64)];
    std::thread::scope(|s| {
        for c in 0..CONNS {
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Pipeline the whole burst, then drain the replies.
                for i in 0..REQS {
                    let k = (c * REQS + i) as u64;
                    client.send(&Request::Put { key: k, value: k }).unwrap();
                }
                for i in 0..REQS {
                    match client.recv().unwrap() {
                        Response::Error {
                            code: ErrorCode::Overloaded,
                            ..
                        } => {}
                        other => panic!("conn {c} req {i}: expected Overloaded, got {other:?}"),
                    }
                }
            });
        }
    });
    // The scope joined: every request was answered while both pids were
    // still camped. That join *is* the boundedness assertion.
    drop(campers);

    let stats = handle.server().stats();
    assert!(stats.shed > 0, "the depth limit engaged during the storm");
    assert_eq!(
        stats.shed + stats.deadline_expired,
        (CONNS * REQS) as u64,
        "every storm request was either shed at the door or expired in queue"
    );
    assert!(
        stats.max_queue_depth <= 3 + 1,
        "the gauge shows the queue never grew past the shed depth (+1 for \
         the admission being classified), got {}",
        stats.max_queue_depth
    );

    // Side-effect-free at scale: not one storm key exists.
    let mut sweep = Client::connect(addr).unwrap();
    for k in 0..(CONNS * REQS) as u64 {
        assert_eq!(sweep.get(k).unwrap(), None, "shed PUT {k} left a residue");
    }
    sweep.put(9999, 1).unwrap();
    assert_eq!(sweep.get(9999).unwrap(), Some(1), "normal service resumed");

    drop(sweep);
    let stats = handle.server().stats();
    handle.shutdown().unwrap();
    assert_eq!(stats.fifo_violations, 0);
    assert_eq!(router.sessions_leased(), 0, "no pid leaked by the storm");
}

/// Disconnecting mid-wait (requests parked in the admission queue) must
/// not leak pids or wakes: the dropped connection's future surrenders
/// its ticket and the remaining clients finish.
#[test]
fn abrupt_disconnect_while_queued_leaks_nothing() {
    let router: Arc<Router<U64Map>> = Arc::new(Router::new(1, 1));
    let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // Several clients fire a burst of writes and vanish without reading
    // replies; their parked admissions must cancel cleanly.
    for c in 0..8u64 {
        let mut client = Client::connect(addr).unwrap();
        for i in 0..16u64 {
            client.send(&Request::Put { key: i, value: c }).unwrap();
        }
        drop(client); // half-close with requests still in flight
    }

    // A patient client still gets served afterwards.
    let mut survivor = Client::connect(addr).unwrap();
    survivor.put(99, 1).unwrap();
    assert_eq!(survivor.get(99).unwrap(), Some(1));

    drop(survivor);
    let stats = handle.server().stats();
    handle.shutdown().unwrap();
    assert_eq!(stats.fifo_violations, 0);
    assert_eq!(router.sessions_leased(), 0, "no pid leaked by disconnects");
}

/// The server's ~1ms tick drives an installed durability-maintenance
/// hook: a supervised `DurableDatabase` riding in the server process
/// gets its checkpoints from the poll loop (no dedicated thread), the
/// reported health lands in `ServerStats`, and a degraded supervisor
/// never stops the server from answering requests.
#[test]
fn server_tick_drives_maintenance_hook_and_reports_health() {
    use multiversion::core::{DurableConfig, DurableDatabase, Health, MaintenancePolicy};
    use multiversion::wal::{FaultPlan, FaultStorage};

    let router: Arc<Router<U64Map>> = Arc::new(Router::new(1, 2));
    let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").unwrap();
    assert_eq!(handle.server().maintenance_health(), None, "no hook yet");

    // A healthy durable store embedded next to the server.
    let storage = FaultStorage::unfaulted();
    let db: Arc<DurableDatabase<U64Map>> = Arc::new(
        DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig {
                segment_bytes: 256,
                ..DurableConfig::default()
            },
        )
        .unwrap(),
    );
    handle.server().set_maintenance(
        db.maintenance_hook(MaintenancePolicy::default().with_wal_bytes_threshold(512)),
    );

    // Write load on the durable store; the server's tick must notice
    // the footprint and checkpoint it back under the threshold.
    let mut s = db.session().unwrap();
    for k in 0..200u64 {
        s.insert(k, k).unwrap();
    }
    drop(s);
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.maintenance_stats().checkpoints < 1 || db.wal_bytes() >= 512 + 256 {
        assert!(Instant::now() < deadline, "server tick never checkpointed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = handle.server().stats();
    assert!(stats.maintenance_ticks > 0, "tick count must be visible");
    assert!(!stats.maintenance_degraded);
    assert_eq!(handle.server().maintenance_health(), Some(Health::Ok));

    // Swap in a supervisor whose checkpoints always fail: the server
    // reports Degraded, and keeps serving clients regardless.
    let broken = FaultStorage::new(
        FaultPlan {
            fail_checkpoint_writes: true,
            ..FaultPlan::default()
        },
        7,
    );
    let bad: Arc<DurableDatabase<U64Map>> = Arc::new(
        DurableDatabase::recover_storage(Arc::new(broken.clone()), 2, DurableConfig::default())
            .unwrap(),
    );
    bad.session().unwrap().insert(1, 1).unwrap();
    handle.server().set_maintenance(
        bad.maintenance_hook(
            MaintenancePolicy::default()
                .with_wal_bytes_threshold(1)
                .with_max_backoff(Duration::from_millis(2)),
        ),
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while !handle.server().stats().maintenance_degraded {
        assert!(Instant::now() < deadline, "degradation never surfaced");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Commits keep flowing: on the wire...
    let mut client = Client::connect(handle.addr()).unwrap();
    client.put(5, 50).unwrap();
    assert_eq!(client.get(5).unwrap(), Some(50));
    // ...and on the degraded store itself.
    bad.session().unwrap().insert(2, 2).unwrap();

    drop(client);
    let stats = handle.server().stats();
    handle.shutdown().unwrap();
    assert_eq!(stats.fifo_violations, 0);
    assert!(stats.maintenance_degraded);
    assert_eq!(router.sessions_leased(), 0, "no pids leaked");
}
