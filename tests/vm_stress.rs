//! Concurrency stress tests of the Version Maintenance algorithms' safety
//! invariants, with an *aliveness oracle*: every version token maps to a
//! flag that collectors clear. If any algorithm ever hands a version to a
//! reader after (or while) it was collected — the use-after-free the
//! paper's safety property forbids — a reader observes a dead flag.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use multiversion::vm::{VersionMaintenance, VmKind};

const MAX_TOKENS: usize = 1 << 19;

struct Oracle {
    alive: Vec<AtomicBool>,
    collected_count: AtomicU64,
}

impl Oracle {
    fn new() -> Self {
        let mut alive = Vec::with_capacity(MAX_TOKENS);
        alive.resize_with(MAX_TOKENS, || AtomicBool::new(false));
        alive[0].store(true, Ordering::SeqCst); // initial version token 0
        Oracle {
            alive,
            collected_count: AtomicU64::new(0),
        }
    }

    fn birth(&self, token: u64) {
        self.alive[token as usize].store(true, Ordering::SeqCst);
    }

    fn assert_alive(&self, token: u64, kind: VmKind, who: &str) {
        assert!(
            self.alive[token as usize].load(Ordering::SeqCst),
            "{kind:?}: {who} is using collected version {token} (UAF!)"
        );
    }

    fn collect(&self, token: u64, kind: VmKind) {
        let was = self.alive[token as usize].swap(false, Ordering::SeqCst);
        assert!(was, "{kind:?}: version {token} collected twice");
        self.collected_count.fetch_add(1, Ordering::SeqCst);
    }
}

/// Single writer + several readers, every algorithm: no UAF, no double
/// collect, per-reader monotone tokens, and (for the precise algorithms)
/// full reclamation in quiescence.
#[test]
fn single_writer_safety_oracle() {
    single_writer_oracle_scaled(2_000);
}

/// The stress-tier version of [`single_writer_safety_oracle`]: same
/// oracle, 20× the committed versions. Run via the CI `stress` job
/// (`cargo test --release -- --ignored`).
#[test]
#[ignore = "stress tier: long-running, run with --ignored in release"]
fn single_writer_safety_oracle_stress() {
    single_writer_oracle_scaled(40_000);
}

fn single_writer_oracle_scaled(writes: u64) {
    assert!((writes as usize) < MAX_TOKENS, "oracle table too small");
    for kind in VmKind::ALL {
        let readers = 3usize;
        let procs = readers + 1;
        let vm = kind.build(procs, 0);
        let oracle = Arc::new(Oracle::new());
        let stop = Arc::new(AtomicBool::new(false));
        let created = Arc::new(AtomicU64::new(1)); // token 0 exists

        std::thread::scope(|s| {
            for r in 0..readers {
                let vm = &vm;
                let oracle = oracle.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let pid = r + 1;
                    let mut last = 0u64;
                    let mut out = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let t = vm.acquire(pid);
                        oracle.assert_alive(t, kind, "reader(acquire)");
                        assert!(t >= last, "{kind:?}: reader went backwards");
                        last = t;
                        // Simulated user code: the version must stay alive
                        // for the whole active interval.
                        for _ in 0..8 {
                            std::hint::spin_loop();
                            oracle.assert_alive(t, kind, "reader(mid-txn)");
                        }
                        vm.release(pid, &mut out);
                        for tok in out.drain(..) {
                            oracle.collect(tok, kind);
                        }
                    }
                });
            }
            // Writer on this thread.
            let mut out = Vec::new();
            for i in 1..writes {
                let t = vm.acquire(0);
                oracle.assert_alive(t, kind, "writer(acquire)");
                oracle.birth(i);
                assert!(vm.set(0, i), "{kind:?}: single writer must not abort");
                created.fetch_add(1, Ordering::SeqCst);
                vm.release(0, &mut out);
                for tok in out.drain(..) {
                    oracle.collect(tok, kind);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Quiescence accounting.
        let created = created.load(Ordering::SeqCst);
        let collected = oracle.collected_count.load(Ordering::SeqCst);
        assert_eq!(
            vm.uncollected_versions(),
            created - collected,
            "{kind:?}: version accounting broken"
        );
        if kind.is_precise() {
            assert_eq!(
                vm.uncollected_versions(),
                1,
                "{kind:?}: precise algorithms leave only the current version"
            );
        }
    }
}

/// Multiple concurrent writers under the lock-free algorithms: every
/// token is collected at most once, failed sets don't lose versions, and
/// the current version is never collected.
#[test]
fn multi_writer_safety_oracle() {
    multi_writer_oracle_scaled(400, 100_000);
}

/// Stress-tier [`multi_writer_safety_oracle`]: 25× the commits per
/// writer (attempt cap sized to stay inside the oracle's token table).
#[test]
#[ignore = "stress tier: long-running, run with --ignored in release"]
fn multi_writer_safety_oracle_stress() {
    multi_writer_oracle_scaled(10_000, 150_000);
}

fn multi_writer_oracle_scaled(commits_per_writer: u64, max_attempts: u64) {
    for kind in [VmKind::Pswf, VmKind::Pslf, VmKind::Hazard, VmKind::Epoch] {
        let writers = 3usize;
        assert!(
            writers as u64 * max_attempts < MAX_TOKENS as u64,
            "oracle table too small for the attempt budget"
        );
        let vm = kind.build(writers, 0);
        let oracle = Arc::new(Oracle::new());
        let next_token = Arc::new(AtomicU64::new(1));
        let commits = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            for w in 0..writers {
                let vm = &vm;
                let oracle = oracle.clone();
                let next_token = next_token.clone();
                let commits = commits.clone();
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut committed = 0u64;
                    let mut attempts = 0u64;
                    while committed < commits_per_writer && attempts < max_attempts {
                        attempts += 1;
                        let t = vm.acquire(w);
                        oracle.assert_alive(t, kind, "writer(acquire)");
                        let tok = next_token.fetch_add(1, Ordering::SeqCst);
                        oracle.birth(tok);
                        if vm.set(w, tok) {
                            committed += 1;
                            commits.fetch_add(1, Ordering::SeqCst);
                        } else {
                            // Aborted: the speculative token dies here
                            // (mirrors Figure 1's collect(newv)).
                            oracle.collect(tok, kind);
                        }
                        vm.release(w, &mut out);
                        for tk in out.drain(..) {
                            oracle.collect(tk, kind);
                        }
                    }
                    assert_eq!(
                        committed, commits_per_writer,
                        "{kind:?}: writer starved (lock-freedom)"
                    );
                });
            }
        });

        let current = vm.current();
        assert!(
            oracle.alive[current as usize].load(Ordering::SeqCst),
            "{kind:?}: current version was collected"
        );
        if kind.is_precise() {
            assert_eq!(vm.uncollected_versions(), 1, "{kind:?}");
        }
    }
}

/// RCU-specific liveness: a writer's release blocks until readers leave,
/// but readers never block each other or the acquire path.
#[test]
fn rcu_grace_period_blocks_only_writer_release() {
    let vm = Arc::new(multiversion::vm::RcuVm::new(3, 0));
    let in_read = Arc::new(AtomicBool::new(false));
    let writer_finished = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Reader 1 enters and parks.
        vm.acquire(1);
        in_read.store(true, Ordering::SeqCst);

        let vm_w = vm.clone();
        let wf = writer_finished.clone();
        s.spawn(move || {
            let mut out = Vec::new();
            vm_w.acquire(0);
            assert!(vm_w.set(0, 1));
            vm_w.release(0, &mut out); // blocks on reader 1
            assert_eq!(out, vec![0]);
            wf.store(true, Ordering::SeqCst);
        });

        // Reader 2 can still acquire and release freely meanwhile.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut out = Vec::new();
        let t = vm.acquire(2);
        assert_eq!(t, 1, "reader 2 sees the new version immediately");
        vm.release(2, &mut out);
        assert!(out.is_empty());
        assert!(!writer_finished.load(Ordering::SeqCst));

        // Reader 1 leaves; the writer's grace period completes.
        vm.release(1, &mut out);
        assert!(out.is_empty());
    });
    assert!(writer_finished.load(Ordering::SeqCst));
    assert_eq!(vm.uncollected_versions(), 1);
}
