//! Cross-crate integration tests for `mvcc-fds`: the structure-agnostic
//! transaction wrapper (`VersionedCell`) driving the functional stack,
//! queue and heap under real concurrency through leased `CellSession`
//! handles, with precise-GC audits.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use multiversion::fds::{Heap, Queue, Stack, VersionedCell};
use multiversion::plm::OptNodeId;
use multiversion::vm::VmKind;

/// A transactional LIFO log: concurrent writers push batches; every
/// snapshot a reader takes must be a prefix-closed view (the stack only
/// grows at the top, so any committed version's contents are a suffix of
/// any later version's).
#[test]
fn stack_snapshots_are_suffixes_of_later_versions() {
    let cell = Arc::new(VersionedCell::new(Stack::<u64>::new(), 3));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Two writers interleave single-push transactions.
        let writers: Vec<_> = (0..2usize)
            .map(|w| {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    let mut session = cell.session().unwrap();
                    for i in 0..300u64 {
                        let value = (w as u64) << 32 | i;
                        session.write(|stack, base| (stack.push(base, value), ()));
                    }
                })
            })
            .collect();
        let cell2 = Arc::clone(&cell);
        let stop2 = Arc::clone(&stop);
        s.spawn(move || {
            let mut session = cell2.session().unwrap();
            let mut last_len = 0usize;
            while !stop2.load(Ordering::Relaxed) {
                let (len, no_dups) = session.read(|stack, root| {
                    let v = stack.to_vec(root);
                    // Each element was pushed exactly once; the vector is
                    // the version's full history, newest first.
                    let mut sorted = v.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    (v.len(), sorted.len() == v.len())
                });
                assert!(no_dups, "duplicate elements in a snapshot");
                assert!(len >= last_len, "snapshot shrank: {last_len} -> {len}");
                last_len = len;
            }
        });
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let total = cell.session().unwrap().read(|stack, root| stack.len(root));
    assert_eq!(total, 600);
    assert_eq!(cell.commits(), 600);
    // Precise GC: only the current version's 600 cells are live.
    assert_eq!(cell.structure().arena().live(), 600);
}

/// Transactional FIFO work queue under the full VM matrix: producers
/// enqueue, a consumer dequeues; nothing is lost or duplicated.
#[test]
fn queue_producer_consumer_all_vm_kinds() {
    for kind in [VmKind::Pswf, VmKind::Epoch, VmKind::Interval] {
        let cell = Arc::new(VersionedCell::with_kind(Queue::<u64>::new(), kind, 2));
        let produced = 500u64;

        std::thread::scope(|s| {
            let cp = Arc::clone(&cell);
            s.spawn(move || {
                let mut session = cp.session().unwrap();
                for i in 0..produced {
                    session.write(|q, base| (q.enqueue(base, i), ()));
                }
            });
            let cc = Arc::clone(&cell);
            s.spawn(move || {
                let mut session = cc.session().unwrap();
                let mut got = Vec::new();
                while got.len() < produced as usize {
                    let v = session.write(|q, base| q.dequeue(base));
                    if let Some(v) = v {
                        got.push(v);
                    } else {
                        std::thread::yield_now();
                    }
                }
                // FIFO: consumed in exactly production order.
                assert_eq!(got, (0..produced).collect::<Vec<_>>(), "{kind:?}");
            });
        });

        let final_len = cell.session().unwrap().read(|q, root| q.len(root));
        assert_eq!(final_len, 0, "{kind:?}");
    }
}

/// A priority queue served transactionally: all inserted priorities come
/// back out in globally sorted order once the writers quiesce.
#[test]
fn heap_transactional_drain_is_sorted() {
    let cell = Arc::new(VersionedCell::new(Heap::<u64>::new(), 2));

    std::thread::scope(|s| {
        for w in 0..2usize {
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                let mut session = cell.session().unwrap();
                for i in 0..200u64 {
                    // Interleave priorities from the two writers.
                    let prio = i * 2 + w as u64;
                    session.write(|h, base| (h.insert(base, prio), ()));
                }
            });
        }
    });

    let mut session = cell.session().unwrap();
    let mut drained = Vec::new();
    loop {
        let v = session.write(|h, base| h.pop_min(base));
        match v {
            Some(v) => drained.push(v),
            None => break,
        }
    }
    assert_eq!(drained, (0..400).collect::<Vec<_>>());
    assert_eq!(
        cell.structure().arena().live(),
        0,
        "drained heap leaves no tuples"
    );
}

/// A reader holding a queue snapshot across many commits still sees its
/// version, and precise GC reclaims everything the moment it lets go.
#[test]
fn queue_pinned_snapshot_with_precise_reclamation() {
    let cell = VersionedCell::new(Queue::<u64>::new(), 2);
    let mut writer = cell.session().unwrap();
    let mut reader = cell.session().unwrap();
    for i in 0..50u64 {
        writer.write(|q, base| (q.enqueue(base, i), ()));
    }

    // Pin a snapshot via a read transaction that runs user code slowly:
    // commits happen *inside* the read closure.
    let seen = reader.read(|q, root| {
        let before = q.to_vec(root);
        for i in 50..100u64 {
            writer.write(|q2, base| (q2.enqueue(base, i), ()));
        }
        let after = q.to_vec(root);
        assert_eq!(before, after, "snapshot moved under the reader");
        before.len()
    });
    assert_eq!(seen, 50);

    // Reader done: only the current version (100 cells + roots) is live.
    let current_len = reader.read(|q, root| q.len(root));
    assert_eq!(current_len, 100);
    assert_eq!(cell.live_versions(), 1);
}

/// Mixing two structures in one program: each VersionedCell is an
/// independent transactional object with its own VM instance and its own
/// pid pool.
#[test]
fn independent_cells_do_not_interfere() {
    let cs = VersionedCell::new(Stack::<u64>::new(), 1);
    let ch = VersionedCell::new(Heap::<u64>::new(), 1);
    let mut ss = cs.session().unwrap();
    let mut sh = ch.session().unwrap();

    for i in 0..100u64 {
        ss.write(|stack, base| (stack.push(base, i), ()));
        sh.write(|heap, base| (heap.insert(base, 99 - i), ()));
    }
    assert_eq!(ss.read(|stack, r| stack.len(r)), 100);
    assert_eq!(sh.read(|heap, r| heap.peek_min(r).copied()), Some(0));
    assert_eq!(cs.commits(), 100);
    assert_eq!(ch.commits(), 100);
    assert_eq!(cs.live_versions(), 1);
    assert_eq!(ch.live_versions(), 1);
}

/// Aborted fds write transactions roll back completely (Figure 1 line 7).
#[test]
fn aborted_stack_write_collects_speculation() {
    let cell = VersionedCell::new(Stack::<u64>::new(), 2);
    let mut winner = cell.session().unwrap();
    let mut loser = cell.session().unwrap();
    winner.write(|stack, base| (stack.push(base, 1), ()));
    let live_before = cell.structure().arena().live();

    for _ in 0..5 {
        let r = loser.try_write(|stack, base| {
            // A competing commit from the winner inside our user code
            // dooms us.
            winner.write(|s2, b2| {
                let (rest, _) = s2.pop(b2);
                (s2.push(rest, 7), ())
            });
            (stack.push(base, 999), ())
        });
        assert!(r.is_err());
    }
    assert_eq!(cell.aborts(), 5);
    let top = winner.read(|stack, root| stack.peek(root).copied());
    assert_eq!(top, Some(7));
    assert_eq!(
        cell.structure().arena().live(),
        live_before,
        "speculation leaked"
    );
}

/// The wrapper works with any root convention, including staying empty.
#[test]
fn empty_version_round_trips() {
    let cell = VersionedCell::new(Queue::<u64>::new(), 1);
    let mut session = cell.session().unwrap();
    // A write that commits the empty queue again.
    session.write(|q, base| {
        let (rest, v) = q.dequeue(base);
        assert!(v.is_none());
        assert_eq!(rest, OptNodeId::NONE);
        (rest, ())
    });
    assert_eq!(session.read(|q, r| q.len(r)), 0);
    assert_eq!(cell.structure().arena().live(), 0);
}
