//! Crash-recovery integration tests: the durable layer is driven through
//! the fault-injection storage and must always come back to a
//! **prefix-consistent** database — the recovered state equals the fold
//! of the first `T` committed batches for some `T`, every fsync-`Always`
//! acked commit survives, at most one in-flight commit materialises, and
//! torn tails truncate cleanly without panicking.
//!
//! Fast tier: deterministic single-writer scenarios plus a full
//! crash-point sweep over a small workload. Stress tier (`--ignored`,
//! release): a seeded sweep under concurrent writers and a concurrent
//! checkpointer, across tear/power-loss/bit-flip fault plans.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use multiversion::core::{
    Durability, DurableConfig, DurableDatabase, DurableError, DurableTxn, GroupCommit,
};
use multiversion::ftree::U64Map;
use multiversion::wal::{FaultPlan, FaultStorage, RetryPolicy};

/// Small segments so sweeps exercise rotation and checkpoint truncation,
/// and a short backoff so crashed appends fail fast.
fn cfg(durability: Durability) -> DurableConfig {
    cfg_g(durability, GroupCommit::Serial)
}

fn cfg_g(durability: Durability, group: GroupCommit) -> DurableConfig {
    DurableConfig {
        durability,
        group_commit: group,
        segment_bytes: 256,
        retry: RetryPolicy {
            attempts: 2,
            initial_backoff: Duration::from_micros(50),
        },
        ..DurableConfig::default()
    }
}

fn open(
    storage: &FaultStorage,
    durability: Durability,
) -> Result<DurableDatabase<U64Map>, DurableError> {
    open_g(storage, durability, GroupCommit::Serial)
}

fn open_g(
    storage: &FaultStorage,
    durability: Durability,
    group: GroupCommit,
) -> Result<DurableDatabase<U64Map>, DurableError> {
    DurableDatabase::recover_storage(Arc::new(storage.clone()), 4, cfg_g(durability, group))
}

/// The deterministic per-commit delta: commit `i` always performs the
/// same ops, so the database after the first `t` commits is computable.
fn apply_commit(txn: &mut DurableTxn<'_, '_, U64Map>, i: u64) {
    txn.insert(i % 16, 1000 + i);
    if i % 4 == 3 {
        txn.remove(&((i / 2) % 16));
    }
    if i % 9 == 8 {
        txn.multi_insert(vec![(64 + i % 8, i), (64 + (i + 1) % 8, i)], |_old, new| {
            *new
        });
    }
}

/// Reference fold of [`apply_commit`] over commits `0..t`.
fn model_after(t: u64) -> Vec<(u64, u64)> {
    let mut m: BTreeMap<u64, u64> = BTreeMap::new();
    for i in 0..t {
        m.insert(i % 16, 1000 + i);
        if i % 4 == 3 {
            m.remove(&((i / 2) % 16));
        }
        if i % 9 == 8 {
            m.insert(64 + i % 8, i);
            m.insert(64 + (i + 1) % 8, i);
        }
    }
    m.into_iter().collect()
}

/// Run up to `commits` single-writer commits (checkpointing every
/// `ckpt_every` if set), stopping at the first injected failure.
/// Returns the number of *acked* commits — writes that returned `Ok`.
fn run_workload(
    storage: &FaultStorage,
    commits: u64,
    durability: Durability,
    ckpt_every: Option<u64>,
) -> u64 {
    run_workload_g(
        storage,
        commits,
        durability,
        GroupCommit::Serial,
        ckpt_every,
    )
}

fn run_workload_g(
    storage: &FaultStorage,
    commits: u64,
    durability: Durability,
    group: GroupCommit,
    ckpt_every: Option<u64>,
) -> u64 {
    let Ok(db) = open_g(storage, durability, group) else {
        return 0;
    };
    let Ok(mut session) = db.session() else {
        return 0;
    };
    let mut acked = 0;
    for i in 0..commits {
        if let Some(every) = ckpt_every {
            if i > 0 && i % every == 0 && db.checkpoint().is_err() {
                return acked;
            }
        }
        match session.write(|txn| apply_commit(txn, i)) {
            Ok(()) => acked += 1,
            Err(_) => return acked,
        }
    }
    acked
}

fn contents(db: &DurableDatabase<U64Map>) -> Vec<(u64, u64)> {
    db.session().unwrap().read(|snap| snap.to_vec())
}

#[test]
fn checkpoint_and_replay_round_trip_on_real_files() {
    let dir = std::env::temp_dir().join(format!("mv-wal-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db: DurableDatabase<U64Map> =
            DurableDatabase::recover(&dir, 2, cfg(Durability::Always)).unwrap();
        let mut s = db.session().unwrap();
        for i in 0..8 {
            s.write(|txn| apply_commit(txn, i)).unwrap();
        }
        db.checkpoint().unwrap();
        for i in 8..14 {
            s.write(|txn| apply_commit(txn, i)).unwrap();
        }
    }
    let db: DurableDatabase<U64Map> =
        DurableDatabase::recover(&dir, 2, cfg(Durability::Always)).unwrap();
    assert_eq!(db.recovery().checkpoint_ts, Some(8));
    assert_eq!(db.recovery().replayed, 6, "only the post-checkpoint tail");
    assert_eq!(db.last_commit_ts(), 14);
    assert_eq!(contents(&db), model_after(14));
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_truncates_cleanly_and_log_stays_writable() {
    // Dry run to find the write site of the last commit's frame.
    let dry = FaultStorage::unfaulted();
    assert_eq!(run_workload(&dry, 10, Durability::Always, None), 10);
    let last_frame = dry.appends() - 1;

    let storage = FaultStorage::new(
        FaultPlan {
            crash_at_append: Some(last_frame),
            ..FaultPlan::default()
        },
        0xbead,
    );
    let acked = run_workload(&storage, 10, Durability::Always, None);
    assert_eq!(acked, 9, "the torn commit must not be acked");

    let db = open(&storage.crash_view(), Durability::Always).unwrap();
    let t = db.last_commit_ts();
    assert!(t == 9 || t == 10, "prefix of length {t}?");
    assert_eq!(contents(&db), model_after(t));

    // The repaired log accepts new commits immediately.
    let mut s = db.session().unwrap();
    s.insert(777, 7).unwrap();
    assert_eq!(db.last_commit_ts(), t + 1);
}

#[test]
fn double_recovery_is_idempotent_even_after_repair() {
    let dry = FaultStorage::unfaulted();
    run_workload(&dry, 12, Durability::Always, Some(5));
    let mid = dry.appends() / 2;

    let storage = FaultStorage::new(
        FaultPlan {
            crash_at_append: Some(mid),
            ..FaultPlan::default()
        },
        0xd0d0,
    );
    run_workload(&storage, 12, Durability::Always, Some(5));
    let view = storage.crash_view();

    // First recovery repairs the torn tail in place...
    let first = open(&view, Durability::Always).unwrap();
    let (t1, c1) = (first.last_commit_ts(), contents(&first));
    drop(first);
    // ...so a second recovery of the same storage finds a clean log and
    // reproduces the exact same state: replay is a no-op to re-run.
    let second = open(&view, Durability::Always).unwrap();
    assert_eq!(second.last_commit_ts(), t1);
    assert_eq!(contents(&second), c1);
    assert!(second.recovery().torn.is_none(), "repair already happened");
}

#[test]
fn fsync_always_survives_power_loss() {
    let storage = FaultStorage::new(
        FaultPlan {
            drop_unsynced: true,
            ..FaultPlan::default()
        },
        0xacdc,
    );
    let acked = run_workload(&storage, 10, Durability::Always, None);
    assert_eq!(acked, 10);
    storage.crash_now(); // power failure: unsynced page cache is gone

    let db = open(&storage.crash_view(), Durability::Always).unwrap();
    assert_eq!(
        db.last_commit_ts(),
        10,
        "fsync=Always: every acked commit is durable across power loss"
    );
    assert_eq!(contents(&db), model_after(10));
}

#[test]
fn fsync_every_n_loses_at_most_the_unsynced_suffix() {
    let storage = FaultStorage::new(
        FaultPlan {
            drop_unsynced: true,
            ..FaultPlan::default()
        },
        0xeeee,
    );
    let acked = run_workload(&storage, 20, Durability::EveryN(4), None);
    assert_eq!(acked, 20);
    storage.crash_now();

    let db = open(&storage.crash_view(), Durability::EveryN(4)).unwrap();
    let t = db.last_commit_ts();
    assert!(t <= 20);
    assert!(
        t >= 20 - 4,
        "EveryN(4) may lose at most one unsynced group, kept {t}/20"
    );
    assert_eq!(contents(&db), model_after(t), "what survives is a prefix");
}

#[test]
fn bit_flip_in_the_unsynced_tail_is_caught_by_crc() {
    // Group commit leaves a multi-frame unsynced region for the flip to
    // land in; the CRC must reject the damaged frame and keep the prefix.
    let storage = FaultStorage::new(
        FaultPlan {
            bit_flip_on_crash: true,
            ..FaultPlan::default()
        },
        0xf11b,
    );
    let acked = run_workload(&storage, 15, Durability::EveryN(5), None);
    assert_eq!(acked, 15);
    storage.crash_now();

    let db = open(&storage.crash_view(), Durability::EveryN(5)).unwrap();
    let t = db.last_commit_ts();
    assert!(t <= 15, "a flipped frame must not replay");
    assert_eq!(contents(&db), model_after(t));
}

/// Exhaustive crash-point sweep over a small single-writer workload with
/// mid-run checkpoints: every write site (segment headers, frames,
/// checkpoint bytes) gets its turn to die mid-append.
#[test]
fn crash_sweep_every_write_site_single_writer() {
    const COMMITS: u64 = 12;
    let dry = FaultStorage::unfaulted();
    assert_eq!(
        run_workload(&dry, COMMITS, Durability::Always, Some(5)),
        COMMITS
    );
    let total = dry.appends();
    assert!(total > COMMITS, "sweep covers more than just frame appends");

    // `+ 2` covers the no-crash case (crash point past the last append).
    for n in 0..total + 2 {
        let storage = FaultStorage::new(
            FaultPlan {
                crash_at_append: Some(n),
                ..FaultPlan::default()
            },
            0x5eed ^ n,
        );
        let acked = run_workload(&storage, COMMITS, Durability::Always, Some(5));
        let db = match open(&storage.crash_view(), Durability::Always) {
            Ok(db) => db,
            Err(e) => panic!("crash point {n}: recovery must degrade gracefully, got {e}"),
        };
        let t = db.last_commit_ts();
        assert!(
            t >= acked,
            "crash point {n}: lost acked commit ({t} < {acked})"
        );
        assert!(
            t <= acked + 1,
            "crash point {n}: more than the one in-flight commit appeared"
        );
        assert_eq!(
            contents(&db),
            model_after(t),
            "crash point {n}: recovered state is not the prefix fold"
        );
    }
}

/// Fsync-failure crash sweep: every sync site (frame flushes and
/// checkpoint seals) dies in turn, with and without power loss on top.
/// A commit whose fsync failed is never acked, so it must either vanish
/// (power loss) or count as the single in-flight commit — and the WAL's
/// rollback/poisoning must keep later recoveries prefix-consistent.
#[test]
fn crash_sweep_every_sync_site_single_writer() {
    const COMMITS: u64 = 12;
    let dry = FaultStorage::unfaulted();
    assert_eq!(
        run_workload(&dry, COMMITS, Durability::Always, Some(5)),
        COMMITS
    );
    let total = dry.syncs();
    assert!(total >= COMMITS, "fsync=Always must sync every commit");

    for drop_unsynced in [false, true] {
        // `+ 1` covers the no-crash case (crash point past the last sync).
        for n in 0..total + 1 {
            let storage = FaultStorage::new(
                FaultPlan {
                    crash_at_sync: Some(n),
                    drop_unsynced,
                    ..FaultPlan::default()
                },
                0xf5ec ^ n,
            );
            let acked = run_workload(&storage, COMMITS, Durability::Always, Some(5));
            let db = match open(&storage.crash_view(), Durability::Always) {
                Ok(db) => db,
                Err(e) => {
                    panic!("sync crash {n} (drop={drop_unsynced}): recovery failed: {e}")
                }
            };
            let t = db.last_commit_ts();
            assert!(
                t >= acked,
                "sync crash {n} (drop={drop_unsynced}): lost acked commit ({t} < {acked})"
            );
            assert!(
                t <= acked + 1,
                "sync crash {n} (drop={drop_unsynced}): more than one in-flight commit"
            );
            assert_eq!(
                contents(&db),
                model_after(t),
                "sync crash {n} (drop={drop_unsynced}): recovered state is not the prefix fold"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------

/// The single-writer crash sweep again under [`GroupCommit::Leader`]: a
/// lone writer's group never holds more than its own in-flight commit,
/// so the serial bound `acked <= T <= acked + 1` must still hold at
/// every write site — group commit changes *when* the fsync happens,
/// never how much can be lost.
#[test]
fn crash_sweep_every_write_site_single_writer_leader() {
    const COMMITS: u64 = 12;
    let dry = FaultStorage::unfaulted();
    assert_eq!(
        run_workload_g(
            &dry,
            COMMITS,
            Durability::Always,
            GroupCommit::Leader,
            Some(5)
        ),
        COMMITS
    );
    let total = dry.appends();

    for n in 0..total + 2 {
        let storage = FaultStorage::new(
            FaultPlan {
                crash_at_append: Some(n),
                ..FaultPlan::default()
            },
            0x96f0 ^ n,
        );
        let acked = run_workload_g(
            &storage,
            COMMITS,
            Durability::Always,
            GroupCommit::Leader,
            Some(5),
        );
        let db = match open_g(
            &storage.crash_view(),
            Durability::Always,
            GroupCommit::Leader,
        ) {
            Ok(db) => db,
            Err(e) => panic!("leader crash point {n}: recovery must degrade gracefully, got {e}"),
        };
        let t = db.last_commit_ts();
        assert!(
            t >= acked,
            "leader crash point {n}: lost acked commit ({t} < {acked})"
        );
        assert!(
            t <= acked + 1,
            "leader crash point {n}: more than the one in-flight commit appeared"
        );
        assert_eq!(
            contents(&db),
            model_after(t),
            "leader crash point {n}: recovered state is not the prefix fold"
        );
    }
}

/// A group frame's members are all-or-nothing across a crash: commits
/// coalesced into one multi-record frame either all replay or all
/// vanish — recovery can never keep half a group. The run shape is
/// deterministic: `BASE` commits each waited to durability, then
/// `GROUP` commits enqueued *without* waiting so they coalesce into a
/// single multi-record frame, flushed by the first ack waited on.
#[test]
fn group_members_are_all_or_nothing_across_crashes() {
    const BASE: u64 = 3;
    const GROUP: u64 = 4;

    let run = |storage: &FaultStorage| -> u64 {
        let Ok(db) = open_g(storage, Durability::Always, GroupCommit::Leader) else {
            return 0;
        };
        let Ok(mut s) = db.session() else {
            return 0;
        };
        let mut acked = 0;
        for i in 0..BASE {
            if s.write(|txn| apply_commit(txn, i)).is_err() {
                return acked;
            }
            acked += 1;
        }
        let mut acks = Vec::new();
        for i in BASE..BASE + GROUP {
            match s.write_acked(|txn| apply_commit(txn, i)) {
                Ok(((), ack)) => acks.push(ack),
                Err(_) => return acked,
            }
        }
        for ack in acks {
            if ack.wait().is_err() {
                return acked;
            }
            acked += 1;
        }
        acked
    };

    // Locate the group frame's append and sync sites on a dry run: the
    // last append is the one multi-record frame, the last sync its fsync.
    let dry = FaultStorage::unfaulted();
    assert_eq!(run(&dry), BASE + GROUP);
    let group_append = dry.appends() - 1;
    let group_sync = dry.syncs() - 1;

    let plans = [
        // Torn mid-group append: the frame's CRC must reject the whole
        // group on replay.
        FaultPlan {
            crash_at_append: Some(group_append),
            ..FaultPlan::default()
        },
        // Fsync failure after a complete append: the group is on disk
        // but never acked — it may replay wholesale, never partially.
        FaultPlan {
            crash_at_sync: Some(group_sync),
            ..FaultPlan::default()
        },
        // Power loss at the group fsync: the unsynced frame vanishes.
        FaultPlan {
            crash_at_sync: Some(group_sync),
            drop_unsynced: true,
            ..FaultPlan::default()
        },
    ];
    for (pi, plan) in plans.into_iter().enumerate() {
        let storage = FaultStorage::new(plan, 0xa11 ^ pi as u64);
        let acked = run(&storage);
        let db = match open_g(
            &storage.crash_view(),
            Durability::Always,
            GroupCommit::Leader,
        ) {
            Ok(db) => db,
            Err(e) => panic!("group plan {pi}: recovery failed: {e}"),
        };
        let t = db.last_commit_ts();
        assert!(
            t == BASE || t == BASE + GROUP,
            "group plan {pi}: half a group replayed (T = {t})"
        );
        assert!(t >= acked, "group plan {pi}: lost acked commit");
        assert_eq!(
            contents(&db),
            model_after(t),
            "group plan {pi}: recovered state is not the prefix fold"
        );
    }
}

/// Crash-point sweep with concurrent writers under the Leader policy,
/// over both append and fsync sites: each writer waits for its ack
/// before its next commit, so the group tail holds at most one unacked
/// commit per writer — after any crash every writer keeps a gapless
/// prefix with `k_t >= acked_t`, and at most `WRITERS` unacked commits
/// materialise in total (`acked <= T <= acked + group_size`).
#[test]
fn group_commit_crash_sweep_concurrent_writers() {
    const WRITERS: usize = 3;
    const PER: u64 = 10;

    let run = |storage: &FaultStorage| -> Vec<u64> {
        let Ok(db) = open_g(storage, Durability::Always, GroupCommit::Leader) else {
            return vec![0; WRITERS];
        };
        let db = &db;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..WRITERS)
                .map(|t| {
                    scope.spawn(move || {
                        let Ok(mut session) = db.session() else {
                            return 0u64;
                        };
                        let mut acked = 0;
                        for j in 0..PER {
                            let key = t as u64 * 1_000_000 + j;
                            match session.insert(key, j) {
                                Ok(()) => acked += 1,
                                Err(_) => break,
                            }
                        }
                        acked
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    let dry = FaultStorage::unfaulted();
    assert_eq!(run(&dry), vec![PER; WRITERS], "dry run must not fail");
    // Coalescing is timing-dependent, so faulted runs may batch commits
    // into fewer, larger frames than the dry run; the sweep range only
    // needs to cover every site any run can hit.
    let total = dry.appends().max(dry.syncs());

    for use_sync in [false, true] {
        for n in 0..total + 2 {
            let plan = FaultPlan {
                crash_at_append: (!use_sync).then_some(n),
                crash_at_sync: use_sync.then_some(n),
                drop_unsynced: use_sync,
                ..FaultPlan::default()
            };
            let storage = FaultStorage::new(plan, 0x6c0 ^ n);
            let acked = run(&storage);
            let db = match open_g(
                &storage.crash_view(),
                Durability::Always,
                GroupCommit::Leader,
            ) {
                Ok(db) => db,
                Err(e) => panic!("group crash {n} (sync={use_sync}): recovery failed: {e}"),
            };
            let snapshot = contents(&db);

            let mut per_writer: Vec<Vec<u64>> = vec![Vec::new(); WRITERS];
            for (key, value) in snapshot {
                let t = (key / 1_000_000) as usize;
                let j = key % 1_000_000;
                assert!(t < WRITERS, "foreign key {key} recovered");
                assert_eq!(value, j, "group crash {n} (sync={use_sync}): value torn");
                per_writer[t].push(j);
            }
            let mut extra = 0u64;
            for (t, js) in per_writer.iter().enumerate() {
                for (expect, got) in js.iter().enumerate() {
                    assert_eq!(
                        *got, expect as u64,
                        "group crash {n} (sync={use_sync}): writer {t} has a gap"
                    );
                }
                let k_t = js.len() as u64;
                assert!(
                    k_t >= acked[t],
                    "group crash {n} (sync={use_sync}): writer {t} lost an acked \
                     commit ({k_t} < {})",
                    acked[t]
                );
                extra += k_t - acked[t];
            }
            assert!(
                extra <= WRITERS as u64,
                "group crash {n} (sync={use_sync}): {extra} unacked commits outlived \
                 the crash (the group tail holds at most one per writer)"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Stress tier
// ---------------------------------------------------------------------

/// Concurrent writers on disjoint key ranges plus a checkpointer thread;
/// returns per-writer acked-commit counts. Key `t * 1_000_000 + j` holds
/// value `j`, so the recovered image decomposes per writer.
fn run_concurrent(storage: &FaultStorage, writers: usize, per: u64) -> Vec<u64> {
    let Ok(db) = open(storage, Durability::Always) else {
        return vec![0; writers];
    };
    let db = &db;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..writers)
            .map(|t| {
                scope.spawn(move || {
                    let Ok(mut session) = db.session() else {
                        return 0u64;
                    };
                    let mut acked = 0;
                    for j in 0..per {
                        let key = t as u64 * 1_000_000 + j;
                        match session.insert(key, j) {
                            Ok(()) => acked += 1,
                            Err(_) => break,
                        }
                    }
                    acked
                })
            })
            .collect();
        let checkpointer = scope.spawn(move || {
            for _ in 0..3 {
                std::thread::sleep(Duration::from_micros(300));
                if db.checkpoint().is_err() {
                    break;
                }
            }
        });
        let acked: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        checkpointer.join().unwrap();
        acked
    })
}

/// The headline property test: sweep seeded crash points across fault
/// plans while writers commit concurrently. After every crash, each
/// writer's recovered keys must form a gapless prefix `0..k_t`, with
/// `k_t >= acked_t` (fsync=Always durability) and at most one in-flight
/// commit materialising across all writers.
#[test]
#[ignore = "stress tier: seeded crash-point sweep, run with --ignored in release"]
fn crash_sweep_under_concurrent_writers_stress() {
    const WRITERS: usize = 3;
    const PER: u64 = 120;

    let dry = FaultStorage::unfaulted();
    let full = run_concurrent(&dry, WRITERS, PER);
    assert_eq!(full, vec![PER; WRITERS], "dry run must not fail");
    let total = dry.appends();

    let plans = [
        FaultPlan::default(),
        FaultPlan {
            drop_unsynced: true,
            ..FaultPlan::default()
        },
        FaultPlan {
            bit_flip_on_crash: true,
            ..FaultPlan::default()
        },
        FaultPlan {
            drop_unsynced: true,
            bit_flip_on_crash: true,
            ..FaultPlan::default()
        },
    ];

    let stride = (total / 48).max(1);
    for seed in [0x51de_0001u64, 0x51de_0002] {
        for (pi, base) in plans.iter().enumerate() {
            // Stagger the sweep start per plan/seed so the union of runs
            // visits more distinct write sites than any single pass.
            let mut n = (pi as u64 + seed % 5) % stride;
            while n < total + 2 {
                let plan = FaultPlan {
                    crash_at_append: Some(n),
                    ..base.clone()
                };
                let storage = FaultStorage::new(plan, seed ^ n);
                let acked = run_concurrent(&storage, WRITERS, PER);

                let db = match open(&storage.crash_view(), Durability::Always) {
                    Ok(db) => db,
                    Err(e) => panic!("plan {pi} seed {seed:#x} crash {n}: recovery failed: {e}"),
                };
                let snapshot = contents(&db);

                let mut per_writer: Vec<Vec<u64>> = vec![Vec::new(); WRITERS];
                for (key, value) in snapshot {
                    let t = (key / 1_000_000) as usize;
                    let j = key % 1_000_000;
                    assert!(t < WRITERS, "foreign key {key} recovered");
                    assert_eq!(value, j, "plan {pi} seed {seed:#x} crash {n}: value torn");
                    per_writer[t].push(j);
                }
                let mut extra = 0u64;
                for (t, js) in per_writer.iter().enumerate() {
                    for (expect, got) in js.iter().enumerate() {
                        assert_eq!(
                            *got, expect as u64,
                            "plan {pi} seed {seed:#x} crash {n}: writer {t} has a gap"
                        );
                    }
                    let k_t = js.len() as u64;
                    assert!(
                        k_t >= acked[t],
                        "plan {pi} seed {seed:#x} crash {n}: writer {t} lost an acked \
                         commit ({k_t} < {})",
                        acked[t]
                    );
                    extra += k_t - acked[t];
                }
                assert!(
                    extra <= 1,
                    "plan {pi} seed {seed:#x} crash {n}: {extra} in-flight commits \
                     materialised (commit mutex allows at most one)"
                );
                n += stride;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Bounded commit queue
// ---------------------------------------------------------------------

/// Crash sweep while the writer is *blocked on the full commit queue*:
/// with `max_pending_batches = 1` and acks never awaited mid-run, every
/// commit after the first hits the watermark and self-promotes into the
/// flush — so the sweep's crash sites fire inside an `enqueue` that is
/// blocked on the bounded tail. Backpressure must not widen the loss
/// bound: recovery yields a prefix `T` with `acked ≤ T ≤ acked + 1`,
/// where `acked` counts only the acks that actually resolved durable.
#[test]
fn crash_while_blocked_on_the_full_commit_queue_loses_nothing_acked() {
    const COMMITS: u64 = 12;
    let bounded_cfg = || cfg_g(Durability::Always, GroupCommit::Leader).with_max_pending_batches(1);

    // Drive the bounded queue as hard as one writer can (fire-and-forget
    // acks, wait only at the end); returns (enqueued, acked, blocked).
    let run = |storage: &FaultStorage| -> (u64, u64, u64) {
        let Ok(db) =
            DurableDatabase::<U64Map>::recover_storage(Arc::new(storage.clone()), 4, bounded_cfg())
        else {
            return (0, 0, 0);
        };
        let Ok(mut s) = db.session() else {
            return (0, 0, 0);
        };
        let mut acks = Vec::new();
        for i in 0..COMMITS {
            match s.write_acked(|txn| apply_commit(txn, i)) {
                Ok(((), ack)) => acks.push(ack),
                Err(_) => break,
            }
        }
        let enqueued = acks.len() as u64;
        let mut acked = 0;
        for ack in acks {
            match ack.wait() {
                Ok(()) => acked += 1,
                Err(_) => break,
            }
        }
        (enqueued, acked, db.durable_stats().blocked_enqueues)
    };

    // Dry run: everything lands, and the watermark genuinely engaged —
    // the blocked-enqueue counter proves commits outran the flushes, so
    // the crash sweep below really does die inside the blocked path.
    let dry = FaultStorage::unfaulted();
    let (enqueued, acked, blocked) = run(&dry);
    assert_eq!((enqueued, acked), (COMMITS, COMMITS));
    assert!(blocked > 0, "the workload never hit the watermark");
    let appends = dry.appends();
    let syncs = dry.syncs();

    let mut plans = Vec::new();
    for n in 0..appends + 1 {
        plans.push((
            format!("append {n}"),
            FaultPlan {
                crash_at_append: Some(n),
                ..FaultPlan::default()
            },
            0x10ad ^ n,
        ));
    }
    for drop_unsynced in [false, true] {
        for n in 0..syncs + 1 {
            plans.push((
                format!("sync {n} (drop={drop_unsynced})"),
                FaultPlan {
                    crash_at_sync: Some(n),
                    drop_unsynced,
                    ..FaultPlan::default()
                },
                0xb10c ^ n,
            ));
        }
    }

    for (site, plan, seed) in plans {
        let storage = FaultStorage::new(plan, seed);
        let (enqueued, acked, _) = run(&storage);
        let db = match DurableDatabase::<U64Map>::recover_storage(
            Arc::new(storage.crash_view()),
            4,
            bounded_cfg(),
        ) {
            Ok(db) => db,
            Err(e) => panic!("crash at {site}: recovery must degrade gracefully, got {e}"),
        };
        let t = db.last_commit_ts();
        assert!(
            t >= acked,
            "crash at {site}: lost acked commit ({t} < {acked})"
        );
        assert!(
            t <= acked + 1,
            "crash at {site}: backpressure widened the loss bound ({t} > {acked} + 1)"
        );
        assert!(
            t <= enqueued,
            "crash at {site}: a commit that never enqueued appeared"
        );
        assert_eq!(
            contents(&db),
            model_after(t),
            "crash at {site}: recovered state is not the prefix fold"
        );
    }
}

// ---------------------------------------------------------------------
// Maintenance supervisor
// ---------------------------------------------------------------------

use multiversion::core::{Health, MaintenancePolicy, MaintenanceTick};
use multiversion::wal::{Storage, WalError};

/// The supervisor policy the chaos runs use: checkpoint early (small
/// threshold relative to the 256-byte segments) and recover from
/// injected failures fast (tiny backoff cap) so sweeps stay quick.
fn chaos_policy() -> MaintenancePolicy {
    MaintenancePolicy::default()
        .with_wal_bytes_threshold(512)
        .with_max_backoff(Duration::from_millis(2))
}

/// Single writer committing while the background supervisor thread
/// checkpoints and truncates concurrently. Stops at the first injected
/// failure; the supervisor must *degrade* across the same faults, never
/// panic. Returns the acked commit count.
fn run_supervised(storage: &FaultStorage, commits: u64) -> u64 {
    let Ok(db) = open(storage, Durability::Always) else {
        return 0;
    };
    let db = Arc::new(db);
    let handle = db.start_maintenance(chaos_policy());
    let mut acked = 0;
    if let Ok(mut session) = db.session() {
        for i in 0..commits {
            match session.write(|txn| apply_commit(txn, i)) {
                Ok(()) => acked += 1,
                Err(_) => break,
            }
        }
    }
    handle.shutdown();
    acked
}

/// Chaos sweep with the supervisor in the loop: crash at every append
/// site — the writer's frames *and* the supervisor's checkpoint writes
/// land in the same append stream, so the sweep necessarily dies inside
/// background checkpoints too. The single-writer loss bound must not
/// widen: `acked ≤ T ≤ acked + 1`, contents equal the prefix fold, and
/// a torn background checkpoint never corrupts recovery. (CI's forced-
/// sequential job reruns this under `MVCC_POOL_THREADS=1`, which is the
/// single-core degradation check for the supervisor thread.)
#[test]
fn maintenance_chaos_sweep_every_write_site() {
    const COMMITS: u64 = 10;
    let dry = FaultStorage::unfaulted();
    assert_eq!(run_supervised(&dry, COMMITS), COMMITS);
    // The supervisor's append count is timing-dependent; the bound only
    // shapes the sweep, the invariants hold at *every* crash point.
    let total = dry.appends();

    for n in 0..total + 2 {
        let storage = FaultStorage::new(
            FaultPlan {
                crash_at_append: Some(n),
                ..FaultPlan::default()
            },
            0xc4a0 ^ n,
        );
        let acked = run_supervised(&storage, COMMITS);
        let db = match open(&storage.crash_view(), Durability::Always) {
            Ok(db) => db,
            Err(e) => panic!("crash point {n}: recovery must degrade gracefully, got {e}"),
        };
        let t = db.last_commit_ts();
        assert!(
            t >= acked,
            "crash point {n}: lost acked commit ({t} < {acked})"
        );
        assert!(
            t <= acked + 1,
            "crash point {n}: more than the one in-flight commit appeared"
        );
        assert_eq!(
            contents(&db),
            model_after(t),
            "crash point {n}: recovered state is not the prefix fold"
        );
        assert!(
            !storage
                .crash_view()
                .list()
                .unwrap()
                .iter()
                .any(|f| f.ends_with(".tmp"))
                || db.recovery().swept_tmp > 0,
            "crash point {n}: a torn checkpoint tmp survived recovery unswept"
        );
    }
}

/// A checkpoint torn by a crash mid-write (or mid-seal) must never
/// regress recovery past the previous *valid* checkpoint: deterministic
/// single-threaded variant using the embeddable `maintenance_tick`, so
/// the crash lands at an exactly known site inside the second image.
#[test]
fn torn_background_checkpoint_never_regresses_recovery() {
    const FIRST: u64 = 8;
    const TAIL: u64 = 6;
    let run = |storage: &FaultStorage| -> (u64, u64, MaintenanceTick) {
        let Ok(db) = open(storage, Durability::Always) else {
            return (0, 0, MaintenanceTick::Failed);
        };
        let mut acked = 0;
        let mut session = db.session().unwrap();
        for i in 0..FIRST {
            if session.write(|txn| apply_commit(txn, i)).is_err() {
                return (acked, storage.appends(), MaintenanceTick::Failed);
            }
            acked += 1;
        }
        if db.checkpoint().is_err() {
            return (acked, storage.appends(), MaintenanceTick::Failed);
        }
        for i in FIRST..FIRST + TAIL {
            if session.write(|txn| apply_commit(txn, i)).is_err() {
                return (acked, storage.appends(), MaintenanceTick::Failed);
            }
            acked += 1;
        }
        let before = storage.appends();
        let tick = db.maintenance_tick(&MaintenancePolicy::default().with_wal_bytes_threshold(1));
        (acked, before, tick)
    };

    // Dry run pins the second checkpoint's write site.
    let dry = FaultStorage::unfaulted();
    let (acked, ckpt2_site, tick) = run(&dry);
    assert_eq!(acked, FIRST + TAIL);
    assert!(matches!(tick, MaintenanceTick::Checkpointed(ts) if ts == FIRST + TAIL));
    assert!(dry.appends() > ckpt2_site, "the tick really wrote an image");

    // Crash exactly inside the background image write, and at the seal
    // fsync right after it.
    let crash_plans = [
        FaultPlan {
            crash_at_append: Some(ckpt2_site),
            ..FaultPlan::default()
        },
        FaultPlan {
            crash_at_sync: Some(dry.syncs() - 1),
            ..FaultPlan::default()
        },
    ];
    for (pi, plan) in crash_plans.into_iter().enumerate() {
        let storage = FaultStorage::new(plan, 0x7042 ^ pi as u64);
        let (acked, _, tick) = run(&storage);
        assert_eq!(acked, FIRST + TAIL, "plan {pi}: writer faults too early");
        assert_eq!(
            tick,
            MaintenanceTick::Failed,
            "plan {pi}: the torn checkpoint must surface as a failure"
        );
        let db = open(&storage.crash_view(), Durability::Always).unwrap();
        assert_eq!(
            db.recovery().checkpoint_ts,
            Some(FIRST),
            "plan {pi}: recovery regressed past (or trusted) the torn image"
        );
        assert_eq!(
            db.recovery().replayed,
            TAIL as usize,
            "plan {pi}: tail replay"
        );
        assert_eq!(db.last_commit_ts(), FIRST + TAIL);
        assert_eq!(contents(&db), model_after(FIRST + TAIL), "plan {pi}");
        assert!(
            db.recovery().swept_tmp <= 1,
            "plan {pi}: at most the one torn tmp to sweep"
        );
    }
}

/// ENOSPC: an embedded supervisor (ticked on the commit path, the
/// `mvcc-net` integration mode) keeps the same write load comfortably
/// inside a disk budget that wedges the unsupervised run — and the
/// unsupervised failure is a *typed, clean* one: `StorageFull`
/// surfaces, nothing is torn, and recovery equals the acked prefix.
#[test]
fn enospc_wedges_unsupervised_but_supervised_load_survives() {
    const BUDGET: u64 = 3072;
    const COMMITS: u64 = 100;
    let plan = FaultPlan {
        enospc_after_bytes: Some(BUDGET),
        ..FaultPlan::default()
    };

    // Unsupervised control: the log grows linearly into the budget.
    let storage = FaultStorage::new(plan.clone(), 0xe05);
    let db = open(&storage, Durability::Always).unwrap();
    let mut session = db.session().unwrap();
    let mut acked = 0;
    let mut wedge = None;
    for i in 0..COMMITS {
        match session.write(|txn| apply_commit(txn, i)) {
            Ok(()) => acked += 1,
            Err(e) => {
                wedge = Some(e);
                break;
            }
        }
    }
    match wedge.expect("the budget must wedge the unsupervised run") {
        DurableError::Wal(WalError::Io { source, .. }) => {
            assert_eq!(source.kind(), std::io::ErrorKind::StorageFull)
        }
        other => panic!("expected a typed StorageFull, got {other}"),
    }
    drop(session);
    drop(db);
    // The failed append rolled back cleanly: recovery is exactly the
    // acked prefix, not a torn one.
    let db = open(&storage.crash_view(), Durability::Always).unwrap();
    assert_eq!(db.last_commit_ts(), acked);
    assert_eq!(contents(&db), model_after(acked));
    drop(db);

    // Supervised: same budget, same load, zero failures — checkpoint
    // truncation keeps freeing the space the writer is about to use.
    let storage = FaultStorage::new(plan, 0xe06);
    let db = open(&storage, Durability::Always).unwrap();
    let policy = MaintenancePolicy {
        min_keep_checkpoints: 1,
        ..MaintenancePolicy::default().with_wal_bytes_threshold(512)
    };
    let mut session = db.session().unwrap();
    for i in 0..COMMITS {
        session
            .write(|txn| apply_commit(txn, i))
            .unwrap_or_else(|e| panic!("supervised commit {i} failed: {e}"));
        let tick = db.maintenance_tick(&policy);
        assert!(
            !matches!(tick, MaintenanceTick::Failed),
            "commit {i}: supervised maintenance failed: {:?}",
            db.health()
        );
    }
    assert_eq!(db.health(), Health::Ok);
    assert!(db.wal_bytes() < BUDGET, "footprint must stay inside budget");
    assert!(db.maintenance_stats().checkpoints > 0);
    drop(session);
    drop(db);
    let db = open(&storage.crash_view(), Durability::Always).unwrap();
    assert_eq!(db.last_commit_ts(), COMMITS);
    assert_eq!(contents(&db), model_after(COMMITS));
}

/// The red line: past `redline_bytes` the supervisor narrows the WAL's
/// bounded-queue watermark, so overrunning writers feel backpressure
/// (blocked enqueues) instead of the disk filling — and a checkpoint
/// releases it.
#[test]
fn redline_applies_commit_backpressure_until_checkpoint_clears_it() {
    let storage = FaultStorage::unfaulted();
    let db = open_g(&storage, Durability::Always, GroupCommit::Leader).unwrap();
    let db = Arc::new(db);
    let policy = MaintenancePolicy::default()
        .with_wal_bytes_threshold(0) // no checkpoints: isolate the red line
        .with_redline_bytes(600);

    let mut session = db.session().unwrap();
    let mut i = 0;
    while db.wal_bytes() < 600 {
        session.write(|txn| apply_commit(txn, i)).unwrap();
        i += 1;
    }
    assert_eq!(db.maintenance_tick(&policy), MaintenanceTick::Idle);
    assert!(db.maintenance_stats().redline_engaged);

    // Fire-and-forget acks: with the watermark narrowed to "flush every
    // record", the second enqueue must block behind the first.
    let before = db.durable_stats().blocked_enqueues;
    let ((), a1) = session.write_acked(|txn| apply_commit(txn, i)).unwrap();
    let ((), a2) = session.write_acked(|txn| apply_commit(txn, i + 1)).unwrap();
    a1.wait().unwrap();
    a2.wait().unwrap();
    assert!(
        db.durable_stats().blocked_enqueues > before,
        "red line engaged but no backpressure materialised"
    );

    // Reclamation clears it: checkpoint + truncate, next tick disarms.
    db.checkpoint().unwrap();
    assert!(db.wal_bytes() < 600);
    assert_eq!(db.maintenance_tick(&policy), MaintenanceTick::Idle);
    assert!(!db.maintenance_stats().redline_engaged);
    session.write(|txn| apply_commit(txn, i + 2)).unwrap();
}

/// Concurrent writers + the supervisor thread, swept across append
/// *and* sync sites under tear/power-loss/ENOSPC plans. Per-writer
/// recovered keys must form a gapless prefix covering every ack, with
/// at most one in-flight commit across all writers — the supervisor
/// changes *when* segments die, never the loss bound.
#[test]
#[ignore = "stress tier: supervised crash-point sweep, run with --ignored in release"]
fn maintenance_chaos_sweep_concurrent_writers_stress() {
    const WRITERS: usize = 3;
    const PER: u64 = 120;

    fn run_concurrent_supervised(storage: &FaultStorage, writers: usize, per: u64) -> Vec<u64> {
        let Ok(db) = open(storage, Durability::Always) else {
            return vec![0; writers];
        };
        let db = Arc::new(db);
        let handle = db.start_maintenance(chaos_policy());
        let acked = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..writers)
                .map(|t| {
                    let db = &db;
                    scope.spawn(move || {
                        let Ok(mut session) = db.session() else {
                            return 0u64;
                        };
                        let mut acked = 0;
                        for j in 0..per {
                            let key = t as u64 * 1_000_000 + j;
                            match session.insert(key, j) {
                                Ok(()) => acked += 1,
                                Err(_) => break,
                            }
                        }
                        acked
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        handle.shutdown();
        acked
    }

    let dry = FaultStorage::unfaulted();
    let full = run_concurrent_supervised(&dry, WRITERS, PER);
    assert_eq!(full, vec![PER; WRITERS], "dry run must not fail");
    let total_appends = dry.appends();
    let total_syncs = dry.syncs();

    let plans = [
        FaultPlan::default(),
        FaultPlan {
            drop_unsynced: true,
            ..FaultPlan::default()
        },
        FaultPlan {
            bit_flip_on_crash: true,
            ..FaultPlan::default()
        },
        FaultPlan {
            enospc_after_bytes: Some(4096),
            ..FaultPlan::default()
        },
    ];

    for (site_kind, total) in [("append", total_appends), ("sync", total_syncs)] {
        let stride = (total / 32).max(1);
        for seed in [0x5afe_0001u64, 0x5afe_0002] {
            for (pi, base) in plans.iter().enumerate() {
                let mut n = (pi as u64 + seed % 5) % stride;
                while n < total + 2 {
                    let plan = match site_kind {
                        "append" => FaultPlan {
                            crash_at_append: Some(n),
                            ..base.clone()
                        },
                        _ => FaultPlan {
                            crash_at_sync: Some(n),
                            ..base.clone()
                        },
                    };
                    let storage = FaultStorage::new(plan, seed ^ n);
                    let acked = run_concurrent_supervised(&storage, WRITERS, PER);

                    let db = match open(&storage.crash_view(), Durability::Always) {
                        Ok(db) => db,
                        Err(e) => {
                            panic!("{site_kind} {n} plan {pi} seed {seed:#x}: recovery failed: {e}")
                        }
                    };
                    let snapshot = contents(&db);
                    let mut per_writer: Vec<Vec<u64>> = vec![Vec::new(); WRITERS];
                    for (key, value) in snapshot {
                        let t = (key / 1_000_000) as usize;
                        let j = key % 1_000_000;
                        assert!(t < WRITERS, "foreign key {key} recovered");
                        assert_eq!(
                            value, j,
                            "{site_kind} {n} plan {pi} seed {seed:#x}: value torn"
                        );
                        per_writer[t].push(j);
                    }
                    let mut extra = 0u64;
                    for (t, js) in per_writer.iter().enumerate() {
                        for (expect, got) in js.iter().enumerate() {
                            assert_eq!(
                                *got, expect as u64,
                                "{site_kind} {n} plan {pi} seed {seed:#x}: writer {t} gap"
                            );
                        }
                        let k_t = js.len() as u64;
                        assert!(
                            k_t >= acked[t],
                            "{site_kind} {n} plan {pi} seed {seed:#x}: writer {t} lost an \
                             acked commit ({k_t} < {})",
                            acked[t]
                        );
                        extra += k_t - acked[t];
                    }
                    assert!(
                        extra <= 1,
                        "{site_kind} {n} plan {pi} seed {seed:#x}: {extra} in-flight \
                         commits materialised"
                    );
                    n += stride;
                }
            }
        }
    }
}
