//! Property-based model checking of PSWF/PSLF against a direct
//! implementation of the Version Maintenance **sequential specification**
//! (§3 / Appendix A).
//!
//! When operations never overlap, a linearizable object must agree with
//! its sequential specification *exactly* — including which `set`s
//! succeed and precisely which release returns each dead version. Random
//! multi-process interleavings (sequentially executed) drive both the
//! real algorithm and the model through thousands of schedules,
//! exercising slot claiming/recycling, the usable→pending→frozen status
//! protocol, and abort paths that unit tests hit only pointwise.

use multiversion::vm::{PslfVm, PswfVm, VersionMaintenance};
use proptest::prelude::*;

/// Reference implementation of the sequential specification.
struct SpecVm {
    processes: usize,
    current: u64,
    /// Per process: the version acquired and not yet released.
    acquired: Vec<Option<u64>>,
    /// Versions already handed back (sanity: never twice).
    collected: Vec<u64>,
}

impl SpecVm {
    fn new(processes: usize, initial: u64) -> Self {
        SpecVm {
            processes,
            current: initial,
            acquired: vec![None; processes],
            collected: Vec::new(),
        }
    }

    fn acquire(&mut self, k: usize) -> u64 {
        assert!(self.acquired[k].is_none());
        self.acquired[k] = Some(self.current);
        self.current
    }

    /// Sequential `set` must succeed iff the current version is still the
    /// one `k` acquired (no successful set intervened).
    fn set(&mut self, k: usize, data: u64) -> bool {
        if self.acquired[k] == Some(self.current) {
            self.current = data;
            true
        } else {
            false
        }
    }

    /// Precise release: returns the released version iff this process was
    /// its last holder and it is no longer current.
    fn release(&mut self, k: usize) -> Vec<u64> {
        let v = self.acquired[k].take().expect("release without acquire");
        let still_held = (0..self.processes).any(|q| self.acquired[q] == Some(v));
        if v != self.current && !still_held {
            self.collected.push(v);
            vec![v]
        } else {
            vec![]
        }
    }

    fn live_versions(&self) -> u64 {
        let mut live: Vec<u64> = self
            .acquired
            .iter()
            .flatten()
            .copied()
            .chain(std::iter::once(self.current))
            .collect();
        live.sort_unstable();
        live.dedup();
        live.len() as u64
    }
}

/// One scheduled step: which process moves, and whether it tries a `set`
/// before its release (when it is that process's turn to choose).
#[derive(Debug, Clone, Copy)]
struct Step {
    pid: usize,
    wants_set: bool,
}

fn steps(processes: usize) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (0..processes, any::<bool>()).prop_map(|(pid, wants_set)| Step { pid, wants_set }),
        1..400,
    )
}

/// Drive `vm` and the model through the same schedule, asserting
/// agreement at every step. Each process cycles acquire → (set)? →
/// release, taking one phase per scheduled step.
fn check_against_spec(vm: &impl VersionMaintenance, processes: usize, schedule: &[Step]) {
    #[derive(Clone, Copy, PartialEq)]
    enum Phase {
        Idle,
        Holding { will_set: bool, has_set: bool },
    }
    let mut spec = SpecVm::new(processes, 0);
    let mut phase = vec![Phase::Idle; processes];
    let mut next_token = 1u64;
    let mut out = Vec::new();

    for step in schedule {
        let k = step.pid;
        match phase[k] {
            Phase::Idle => {
                let got = vm.acquire(k);
                let want = spec.acquire(k);
                assert_eq!(got, want, "acquire({k}) diverged from spec");
                phase[k] = Phase::Holding {
                    will_set: step.wants_set,
                    has_set: false,
                };
            }
            Phase::Holding {
                will_set: true,
                has_set: false,
            } => {
                let tok = next_token;
                next_token += 1;
                let got = vm.set(k, tok);
                let want = spec.set(k, tok);
                assert_eq!(got, want, "set({k}, {tok}) success diverged from spec");
                phase[k] = Phase::Holding {
                    will_set: true,
                    has_set: true,
                };
            }
            Phase::Holding { .. } => {
                out.clear();
                vm.release(k, &mut out);
                let want = spec.release(k);
                assert_eq!(out, want, "release({k}) returned wrong versions");
                phase[k] = Phase::Idle;
            }
        }
        assert_eq!(vm.current(), spec.current, "current version diverged");
    }

    // Drain: finish every open transaction, still in lockstep.
    for (k, ph) in phase.iter().enumerate() {
        if let Phase::Holding { .. } = ph {
            out.clear();
            vm.release(k, &mut out);
            let want = spec.release(k);
            assert_eq!(out, want, "drain release({k}) diverged");
        }
    }
    assert_eq!(
        vm.uncollected_versions(),
        spec.live_versions(),
        "quiescent live-version count diverged"
    );
    // Precision invariant of the spec itself: no token collected twice.
    let mut c = spec.collected.clone();
    c.sort_unstable();
    c.dedup();
    assert_eq!(c.len(), spec.collected.len());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn pswf_matches_sequential_spec(schedule in steps(4)) {
        check_against_spec(&PswfVm::new(4, 0), 4, &schedule);
    }

    #[test]
    fn pslf_matches_sequential_spec(schedule in steps(4)) {
        check_against_spec(&PslfVm::new(4, 0), 4, &schedule);
    }

    #[test]
    fn pswf_two_processes_tight(schedule in steps(2)) {
        check_against_spec(&PswfVm::new(2, 0), 2, &schedule);
    }

    #[test]
    fn pswf_many_processes(schedule in steps(8)) {
        check_against_spec(&PswfVm::new(8, 0), 8, &schedule);
    }
}
