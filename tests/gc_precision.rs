//! Garbage-collection audits: the paper's *safety* (Definition 2.2 — never
//! free reachable tuples) and *precision* (Definition 2.1 — free
//! everything unreachable, immediately) at the granularity of tuples,
//! measured through the arena's exact allocation counters.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use multiversion::core::Database;
use multiversion::ftree::{Forest, U64Map};
use multiversion::vm::VmKind;

/// The reachable space of a single live version is exactly its node count
/// — after quiescence, allocated == reachable (precision).
#[test]
fn quiescent_allocated_equals_reachable() {
    let db: Database<U64Map> = Database::new(2);
    let mut s = db.session().unwrap();
    // Churn: inserts, removes, overwrites.
    for i in 0..1_000u64 {
        s.insert(i % 128, i);
    }
    for i in 0..64u64 {
        s.remove(&i);
    }
    let entries = s.len();
    assert_eq!(entries, 64);
    assert_eq!(db.live_versions(), 1);
    assert_eq!(
        db.forest().arena().live(),
        entries as u64,
        "allocated tuples must equal the current version's nodes"
    );
}

/// While snapshots are pinned, their tuples survive (safety); the moment
/// the last pin drops, they are collected (precision).
#[test]
fn pinned_snapshots_pin_exactly_their_tuples() {
    let db: Arc<Database<U64Map>> = Arc::new(Database::new(4));
    let mut writer = db.session().unwrap();
    let mut reader = db.session().unwrap();
    for i in 0..512u64 {
        writer.insert(i, i);
    }
    let g1 = reader.begin_read();
    // Replace the whole key range: the old version shares nothing.
    writer.write(|txn| {
        let fresh: Vec<(u64, u64)> = (1000..1512u64).map(|k| (k, k)).collect();
        txn.multi_remove((0..512u64).collect());
        txn.multi_insert(fresh, |_o, v| *v);
    });
    // Old snapshot fully readable (safety).
    for i in (0..512u64).step_by(37) {
        assert_eq!(g1.snapshot().get(&i), Some(&i));
    }
    let live_with_pin = db.forest().arena().live();
    assert!(
        live_with_pin >= 1024,
        "both versions' tuples must be allocated, saw {live_with_pin}"
    );
    drop(g1); // last holder: old version collected now
    assert_eq!(db.live_versions(), 1);
    assert_eq!(db.forest().arena().live(), 512);
}

/// Precision under concurrency: the arena always returns to exactly the
/// current version's footprint after every thread quiesces, across many
/// random pin/unpin interleavings.
#[test]
fn concurrent_churn_ends_clean_all_precise_kinds() {
    for kind in [VmKind::Pswf, VmKind::Pslf, VmKind::Rcu] {
        let readers = 3usize;
        let db: Arc<Database<U64Map, _>> = Arc::new(Database::with_kind(kind, readers + 1));
        let mut writer = db.session().unwrap();
        for i in 0..256u64 {
            writer.insert(i, i);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for r in 0..readers {
                let db = db.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut session = db.session().unwrap();
                    let mut x = r as u64 + 1;
                    while !stop.load(Ordering::Relaxed) {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let hold = session.begin_read();
                        let k = x % 256;
                        let _ = hold.snapshot().get(&k);
                        if x.is_multiple_of(3) {
                            std::thread::yield_now(); // stretch the pin
                        }
                        drop(hold);
                    }
                });
            }
            for i in 0..600u64 {
                writer.insert(i % 256, i);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(db.live_versions(), 1, "{kind:?}");
        assert_eq!(
            db.forest().arena().live(),
            256,
            "{kind:?}: precise GC must reclaim every dead version's tuples"
        );
    }
}

/// The same workload under the imprecise algorithms still never frees
/// reachable tuples (safety) and eventually reclaims on continued writing.
#[test]
fn imprecise_kinds_are_safe_and_eventually_reclaim() {
    for kind in [VmKind::Hazard, VmKind::Epoch] {
        let db: Arc<Database<U64Map, _>> = Arc::new(Database::with_kind(kind, 2));
        let mut writer = db.session().unwrap();
        let mut reader = db.session().unwrap();
        for i in 0..128u64 {
            writer.insert(i, i);
        }
        // Hold a snapshot while writing (safety probe).
        let g = reader.begin_read();
        for i in 0..200u64 {
            writer.insert(i % 128, i + 1000);
        }
        for i in (0..128u64).step_by(17) {
            assert_eq!(g.snapshot().get(&i), Some(&i), "{kind:?}: UAF on snapshot");
        }
        drop(g);
        // Keep writing: retired lists/epochs must eventually drain to a
        // bounded backlog.
        for i in 0..2_000u64 {
            writer.insert(i % 128, i);
        }
        let uncollected = db.live_versions();
        let bound = match kind {
            VmKind::Hazard => 2 * 2 + 1, // 2P retired + current
            _ => 16,                     // EP: small constant when readers drain
        };
        assert!(
            uncollected <= bound as u64,
            "{kind:?}: backlog {uncollected} exceeds bound {bound}"
        );
    }
}

/// Forest-level audit: interleaved bulk operations with random retains
/// never leak — mirrors Theorem 4.2's "work linear in garbage" accounting
/// by checking allocated == freed at the end.
#[test]
fn bulk_ops_with_random_snapshots_never_leak() {
    let f: Forest<U64Map> = Forest::new();
    let mut rng_state = 0x5DEECE66Du64;
    let mut rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let mut snapshots: Vec<multiversion::ftree::Root> = Vec::new();
    let mut cur = f.empty();
    for round in 0..200u64 {
        match rand() % 5 {
            0 => {
                let batch: Vec<(u64, u64)> =
                    (0..(rand() % 64)).map(|_| (rand() % 512, round)).collect();
                cur = f.multi_insert(cur, batch, |_o, v| *v);
            }
            1 => {
                let keys: Vec<u64> = (0..(rand() % 32)).map(|_| rand() % 512).collect();
                cur = f.multi_remove(cur, keys);
            }
            2 => {
                let other: Vec<(u64, u64)> = (0..(rand() % 64))
                    .map(|i| ((rand() % 512) / 2 * 2 + (i % 2), round))
                    .collect();
                let mut sorted = other;
                sorted.sort_by_key(|p| p.0);
                sorted.dedup_by_key(|p| p.0);
                let t = f.build_sorted(&sorted);
                cur = f.union(cur, t);
            }
            3 => {
                f.retain(cur);
                snapshots.push(cur);
            }
            _ => {
                if let Some(s) = snapshots.pop() {
                    f.release(s);
                }
            }
        }
    }
    for s in snapshots {
        f.release(s);
    }
    f.release(cur);
    let stats = f.arena().stats();
    assert_eq!(stats.live, 0, "leak: {stats:?}");
    assert_eq!(stats.allocated_total, stats.freed_total);
}
