//! Per-object version chains.
//!
//! A chain is the classic MVCC record format: a list of `(timestamp,
//! value)` versions where `value = None` is a deletion tombstone,
//! stored oldest-first (newest at the back) so installs append in
//! O(1). Readers walk from the newest version back to the first one
//! whose timestamp is `≤` their read timestamp — the walk length is the
//! "extra delay" the paper's introduction attributes to version lists,
//! and every read reports it so benches can plot delay against the
//! number of uncollected versions.

use parking_lot::RwLock;

/// One object's version list, stored oldest first (newest at the back)
/// so installing a version is an amortized O(1) `push` instead of the
/// classic head-insert that shifts the whole chain on every write.
/// Readers still *walk* from the newest end, so the reported hop count —
/// the paper's "extra delay" metric — is unchanged.
///
/// Readers share the lock; the (single) writer and the vacuum take it
/// exclusively. The lock is per-object, so reader/reader contention is
/// nil and reader/writer contention only occurs on the object being
/// written — this is the *favourable* version-list implementation; its
/// measured read delay is therefore a lower bound for the design.
pub struct VersionChain<V> {
    /// Sorted by timestamp ascending: `versions.last()` is the newest.
    versions: RwLock<Vec<(u64, Option<V>)>>,
}

impl<V: Clone> VersionChain<V> {
    /// A chain born with a single version.
    pub fn new(ts: u64, value: Option<V>) -> Self {
        VersionChain {
            versions: RwLock::new(vec![(ts, value)]),
        }
    }

    /// Append a version. `ts` must be at least the current newest
    /// timestamp (commit timestamps are handed out monotonically).
    pub fn install(&self, ts: u64, value: Option<V>) {
        let mut g = self.versions.write();
        debug_assert!(
            g.last().is_none_or(|head| head.0 <= ts),
            "version timestamps must be installed in increasing order"
        );
        g.push((ts, value));
    }

    /// Resolve the chain at read timestamp `ts`: the newest version with
    /// timestamp `≤ ts`. Returns the value (`None` inside the outer
    /// `Some` would have been a tombstone, which resolves to `None`) and
    /// the number of versions examined (the reader's extra hops). The
    /// walk starts at the newest version, exactly like a linked version
    /// list — the hop count is the delay being measured, so no binary
    /// search shortcut here.
    pub fn read_at(&self, ts: u64) -> (Option<V>, u64) {
        let g = self.versions.read();
        let mut hops = 0;
        for (vts, value) in g.iter().rev() {
            hops += 1;
            if *vts <= ts {
                return (value.clone(), hops);
            }
        }
        (None, hops)
    }

    /// The newest version's value (tombstones resolve to `None`).
    pub fn latest(&self) -> Option<V> {
        self.versions.read().last().and_then(|(_, v)| v.clone())
    }

    /// Number of versions currently in the chain.
    pub fn len(&self) -> usize {
        self.versions.read().len()
    }

    /// True if the chain holds no versions (only possible after a prune
    /// that found the whole chain dead).
    pub fn is_empty(&self) -> bool {
        self.versions.read().is_empty()
    }

    /// Scan-based pruning against `horizon` (the oldest timestamp any
    /// active or future reader can use): keep every version with
    /// timestamp `> horizon` plus the newest version `≤ horizon` — unless
    /// that boundary version is a tombstone and nothing newer survives,
    /// in which case the chain empties entirely.
    ///
    /// Returns `(scanned, freed)`: the vacuum pays `scanned` regardless
    /// of how little it frees, which is exactly the cost profile the
    /// paper's precise collector avoids (Theorem 4.2: `O(freed + 1)`).
    pub fn prune(&self, horizon: u64) -> (u64, u64) {
        let mut g = self.versions.write();
        let scanned = g.len() as u64;
        // Count of versions with ts <= horizon (the chain is sorted
        // ascending); the boundary version is the newest of them.
        let below = g.partition_point(|(ts, _)| *ts <= horizon);
        if below == 0 {
            return (scanned, 0); // every version still above the horizon
        }
        if below == g.len() && g[below - 1].1.is_none() {
            // The whole chain is a dead tombstone.
            g.clear();
            return (scanned, scanned);
        }
        // Drop everything older than the boundary version.
        let freed = (below - 1) as u64;
        g.drain(..below - 1);
        (scanned, freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with(versions: &[(u64, Option<u64>)]) -> VersionChain<u64> {
        let c = VersionChain::new(versions[0].0, versions[0].1);
        for &(ts, v) in &versions[1..] {
            c.install(ts, v);
        }
        c
    }

    #[test]
    fn read_resolves_newest_at_or_below() {
        let c = chain_with(&[(1, Some(10)), (5, Some(50)), (9, Some(90))]);
        assert_eq!(c.read_at(0), (None, 3));
        assert_eq!(c.read_at(1), (Some(10), 3));
        assert_eq!(c.read_at(4), (Some(10), 3));
        assert_eq!(c.read_at(5), (Some(50), 2));
        assert_eq!(c.read_at(9), (Some(90), 1));
        assert_eq!(c.read_at(u64::MAX), (Some(90), 1));
    }

    #[test]
    fn hops_grow_with_uncollected_versions() {
        let c = chain_with(&[(1, Some(0))]);
        for ts in 2..=100 {
            c.install(ts, Some(ts));
        }
        // A reader pinned at the oldest timestamp pays one hop per
        // version accumulated since — the paper's motivating pathology.
        let (v, hops) = c.read_at(1);
        assert_eq!(v, Some(0));
        assert_eq!(hops, 100);
    }

    #[test]
    fn tombstone_resolves_to_none() {
        let c = chain_with(&[(1, Some(7)), (3, None)]);
        assert_eq!(c.read_at(2), (Some(7), 2));
        assert_eq!(c.read_at(3), (None, 1));
    }

    #[test]
    fn prune_keeps_boundary_version() {
        let c = chain_with(&[(1, Some(10)), (5, Some(50)), (9, Some(90))]);
        let (scanned, freed) = c.prune(6);
        assert_eq!((scanned, freed), (3, 1)); // ts=1 freed; ts=5 is boundary
        assert_eq!(c.read_at(6), (Some(50), 2));
        assert_eq!(c.read_at(9), (Some(90), 1));
    }

    #[test]
    fn prune_below_everything_is_a_noop() {
        let c = chain_with(&[(5, Some(50)), (9, Some(90))]);
        assert_eq!(c.prune(4), (2, 0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn prune_drops_dead_tombstone_chain() {
        let c = chain_with(&[(1, Some(10)), (5, None)]);
        let (_, freed) = c.prune(10);
        assert_eq!(freed, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn prune_keeps_tombstone_with_live_successor() {
        let c = chain_with(&[(1, Some(10)), (5, None), (9, Some(90))]);
        let (_, freed) = c.prune(6);
        assert_eq!(freed, 1); // ts=1 dies; tombstone at 5 is the boundary
        assert_eq!(c.read_at(6), (None, 2));
    }
}
