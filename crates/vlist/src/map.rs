//! The version-list ordered map: a single-version index over multi-
//! version records, the architecture of MVTO-style systems.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;

use crossbeam::utils::CachePadded;
use parking_lot::{Mutex, RwLock};

use crate::chain::VersionChain;

/// Sentinel announcement meaning "process has no active read".
const INACTIVE: u64 = u64::MAX;

/// Aggregate counters for the cost profile of the version-list design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlistStats {
    /// Versions currently reachable from some chain.
    pub live_versions: u64,
    /// Versions ever installed.
    pub created: u64,
    /// Versions freed by vacuums.
    pub freed: u64,
    /// Point/range version resolutions performed.
    pub reads: u64,
    /// Total chain entries examined across all reads — `hops / reads`
    /// is the average extra delay per read the paper's design avoids.
    pub hops: u64,
    /// Chain entries examined by vacuums (GC cost ∝ scanned, not freed).
    pub vacuum_scanned: u64,
}

/// A read transaction's handle: the snapshot timestamp plus the process
/// slot whose announcement pins it against the vacuum.
#[derive(Debug)]
pub struct ReadTicket {
    pid: usize,
    ts: u64,
}

impl ReadTicket {
    /// The snapshot timestamp this ticket reads at.
    pub fn ts(&self) -> u64 {
        self.ts
    }
}

/// An ordered multiversion map of `u64` keys built the mainstream way:
/// one version chain per key, a global commit timestamp, per-process
/// read-timestamp announcements, and scan-based garbage collection.
///
/// Writers must be externally serialized (the map enforces this with an
/// internal mutex) — matching the paper's single-writer evaluation
/// setting; readers run fully concurrently with the writer and with
/// [`VersionListMap::vacuum`].
pub struct VersionListMap<V> {
    index: RwLock<BTreeMap<u64, Arc<VersionChain<V>>>>,
    /// Timestamp of the newest committed write; reads snapshot at this.
    commit_ts: AtomicU64,
    /// Per-process announced read timestamps ([`INACTIVE`] when idle).
    active: Box<[CachePadded<AtomicU64>]>,
    /// Serializes writers and vacuums.
    writer: Mutex<()>,
    created: AtomicU64,
    freed: AtomicU64,
    reads: AtomicU64,
    hops: AtomicU64,
    vacuum_scanned: AtomicU64,
}

impl<V: Clone + Send + Sync> VersionListMap<V> {
    /// An empty map for `processes` reader process ids.
    pub fn new(processes: usize) -> Self {
        assert!(processes >= 1);
        VersionListMap {
            index: RwLock::new(BTreeMap::new()),
            commit_ts: AtomicU64::new(0),
            active: (0..processes)
                .map(|_| CachePadded::new(AtomicU64::new(INACTIVE)))
                .collect(),
            writer: Mutex::new(()),
            created: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            hops: AtomicU64::new(0),
            vacuum_scanned: AtomicU64::new(0),
        }
    }

    /// Number of reader process slots.
    pub fn processes(&self) -> usize {
        self.active.len()
    }

    // ---- read side -----------------------------------------------------

    /// Start a read transaction on process `pid`: announce a snapshot
    /// timestamp with the hazard-pointer-style announce/validate loop so
    /// a concurrent [`VersionListMap::vacuum`] can never free a version
    /// this snapshot still needs.
    pub fn begin_read(&self, pid: usize) -> ReadTicket {
        let mut t = self.commit_ts.load(SeqCst);
        loop {
            self.active[pid].store(t, SeqCst);
            let t2 = self.commit_ts.load(SeqCst);
            if t2 == t {
                return ReadTicket { pid, ts: t };
            }
            t = t2;
        }
    }

    /// Begin a read pinned at an explicit historical timestamp — the
    /// time-travel query version lists support naturally. The snapshot
    /// is complete only if no vacuum has already reclaimed below `ts`;
    /// the announcement prevents *future* vacuums from doing so.
    pub fn begin_read_at(&self, pid: usize, ts: u64) -> ReadTicket {
        let ts = ts.min(self.commit_ts.load(SeqCst));
        self.active[pid].store(ts, SeqCst);
        ReadTicket { pid, ts }
    }

    /// Finish a read transaction, unpinning its snapshot.
    pub fn end_read(&self, ticket: ReadTicket) {
        self.active[ticket.pid].store(INACTIVE, SeqCst);
    }

    /// Point lookup at the ticket's snapshot.
    pub fn get_at(&self, ticket: &ReadTicket, key: u64) -> Option<V> {
        self.get_at_counted(ticket, key).0
    }

    /// Point lookup that also reports the version-chain hops this read
    /// paid — the per-read "extra delay" of the version-list design.
    pub fn get_at_counted(&self, ticket: &ReadTicket, key: u64) -> (Option<V>, u64) {
        let Some(chain) = self.index.read().get(&key).cloned() else {
            return (None, 0);
        };
        let (value, hops) = chain.read_at(ticket.ts);
        // Pure statistics: nothing reads these counters to make a
        // correctness decision, so Relaxed (atomicity without ordering)
        // suffices — first slice of the ROADMAP relaxed-ordering audit.
        self.reads.fetch_add(1, Relaxed);
        self.hops.fetch_add(hops, Relaxed);
        (value, hops)
    }

    /// Fold over `[lo, hi)` at the ticket's snapshot.
    pub fn range_fold<A>(
        &self,
        ticket: &ReadTicket,
        lo: u64,
        hi: u64,
        init: A,
        mut f: impl FnMut(A, u64, V) -> A,
    ) -> A {
        let chains: Vec<(u64, Arc<VersionChain<V>>)> = {
            let g = self.index.read();
            g.range(lo..hi).map(|(k, c)| (*k, Arc::clone(c))).collect()
        };
        let mut acc = init;
        let mut hops = 0;
        let mut reads = 0;
        for (k, chain) in chains {
            let (value, h) = chain.read_at(ticket.ts);
            hops += h;
            reads += 1;
            if let Some(v) = value {
                acc = f(acc, k, v);
            }
        }
        // Pure statistics (see get_at_counted): Relaxed suffices.
        self.reads.fetch_add(reads, Relaxed);
        self.hops.fetch_add(hops, Relaxed);
        acc
    }

    /// The newest committed value for `key` (no snapshot semantics).
    pub fn get_latest(&self, key: u64) -> Option<V> {
        self.index.read().get(&key)?.latest()
    }

    // ---- write side (single-writer) -------------------------------------

    /// Commit one key's new value at a fresh timestamp.
    pub fn insert(&self, key: u64, value: V) {
        self.insert_many_impl(std::iter::once((key, Some(value))));
    }

    /// Commit a deletion tombstone for `key`.
    pub fn remove(&self, key: u64) {
        self.insert_many_impl(std::iter::once((key, None)));
    }

    /// Commit several keys **atomically at one timestamp**: readers see
    /// all of the batch or none of it, since visibility is gated by the
    /// commit-timestamp bump after every chain is installed.
    pub fn insert_many(&self, pairs: &[(u64, V)]) {
        self.insert_many_impl(pairs.iter().map(|(k, v)| (*k, Some(v.clone()))));
    }

    fn insert_many_impl(&self, pairs: impl Iterator<Item = (u64, Option<V>)>) {
        let _g = self.writer.lock();
        let ts = self.commit_ts.load(SeqCst) + 1;
        let mut count = 0u64;
        for (key, value) in pairs {
            let chain = self.index.read().get(&key).cloned();
            match chain {
                Some(chain) => chain.install(ts, value),
                None => {
                    self.index
                        .write()
                        .entry(key)
                        .or_insert_with(|| Arc::new(VersionChain::new(ts, value)));
                }
            }
            count += 1;
        }
        // Pure statistics — visibility of the batch is published by the
        // SeqCst `commit_ts` store below, never by this counter, so the
        // count itself only needs atomicity (Relaxed).
        self.created.fetch_add(count, Relaxed);
        // Publish: everything installed at `ts` becomes visible at once.
        self.commit_ts.store(ts, SeqCst);
    }

    // ---- garbage collection ---------------------------------------------

    /// Scan-based garbage collection: compute the reclamation horizon
    /// (the oldest announced read timestamp, capped by the commit
    /// timestamp) and prune every chain against it. Cost is proportional
    /// to **all versions scanned**, not to versions freed — the contrast
    /// with the paper's `O(freed + 1)` precise collector.
    ///
    /// Returns `(scanned, freed)`.
    pub fn vacuum(&self) -> (u64, u64) {
        let _g = self.writer.lock();
        // Load the cap FIRST, then scan announcements; see begin_read's
        // validate loop for why this order makes the pair safe.
        let mut horizon = self.commit_ts.load(SeqCst);
        for slot in self.active.iter() {
            horizon = horizon.min(slot.load(SeqCst));
        }
        let chains: Vec<(u64, Arc<VersionChain<V>>)> = {
            let g = self.index.read();
            g.iter().map(|(k, c)| (*k, Arc::clone(c))).collect()
        };
        let mut scanned = 0;
        let mut freed = 0;
        let mut dead_keys = Vec::new();
        for (key, chain) in &chains {
            let (s, f) = chain.prune(horizon);
            scanned += s;
            freed += f;
            if chain.is_empty() {
                dead_keys.push(*key);
            }
        }
        if !dead_keys.is_empty() {
            let mut g = self.index.write();
            for key in dead_keys {
                // Only unlink if still empty (no new version raced in —
                // it cannot have, the writer lock is held — but stay
                // defensive).
                if g.get(&key).is_some_and(|c| c.is_empty()) {
                    g.remove(&key);
                }
            }
        }
        // Pure statistics: reclamation correctness is carried by the
        // horizon computation above, not by these totals — Relaxed.
        self.vacuum_scanned.fetch_add(scanned, Relaxed);
        self.freed.fetch_add(freed, Relaxed);
        (scanned, freed)
    }

    // ---- accounting ------------------------------------------------------

    /// Current counters; `live_versions` is computed by a full scan.
    pub fn stats(&self) -> VlistStats {
        let live: u64 = {
            let g = self.index.read();
            g.values().map(|c| c.len() as u64).sum()
        };
        VlistStats {
            live_versions: live,
            // Relaxed: a stats snapshot is racy by nature; each counter
            // is internally consistent and callers that need a settled
            // view (tests) already synchronize via thread joins.
            created: self.created.load(Relaxed),
            freed: self.freed.load(Relaxed),
            reads: self.reads.load(Relaxed),
            hops: self.hops.load(Relaxed),
            vacuum_scanned: self.vacuum_scanned.load(Relaxed),
        }
    }

    /// Number of keys currently indexed.
    pub fn keys(&self) -> usize {
        self.index.read().len()
    }

    /// The current commit timestamp.
    pub fn commit_ts(&self) -> u64 {
        self.commit_ts.load(SeqCst)
    }
}

impl VersionListMap<u64> {
    /// Sum of values over `[lo, hi)` at the snapshot — the Table 2
    /// range-sum query, version-list style: one chain walk per key.
    pub fn range_sum(&self, ticket: &ReadTicket, lo: u64, hi: u64) -> u64 {
        self.range_fold(ticket, lo, hi, 0u64, |acc, _k, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let m = VersionListMap::new(1);
        m.insert(5, 50);
        m.insert(3, 30);
        let t = m.begin_read(0);
        assert_eq!(m.get_at(&t, 5), Some(50));
        assert_eq!(m.get_at(&t, 3), Some(30));
        assert_eq!(m.get_at(&t, 4), None);
        m.end_read(t);
    }

    #[test]
    fn remove_is_a_tombstone_until_vacuum() {
        let m = VersionListMap::new(1);
        m.insert(1, 10);
        m.remove(1);
        let t = m.begin_read(0);
        assert_eq!(m.get_at(&t, 1), None);
        m.end_read(t);
        assert_eq!(m.stats().live_versions, 2, "tombstone still chained");
        m.vacuum();
        assert_eq!(m.stats().live_versions, 0);
        assert_eq!(m.keys(), 0, "dead key unlinked from the index");
    }

    #[test]
    fn old_snapshot_pays_hops_per_version() {
        let m = VersionListMap::new(1);
        m.insert(1, 0);
        let t = m.begin_read(0);
        for i in 1..=50u64 {
            m.insert(1, i);
        }
        let before = m.stats().hops;
        assert_eq!(m.get_at(&t, 1), Some(0));
        let hops = m.stats().hops - before;
        assert_eq!(hops, 51, "reader walks past every newer version");
        m.end_read(t);
    }

    #[test]
    fn vacuum_respects_pinned_reader() {
        let m = VersionListMap::new(2);
        m.insert(1, 10);
        let t = m.begin_read(0);
        for i in 0..10u64 {
            m.insert(1, 100 + i);
        }
        let (_, freed) = m.vacuum();
        // Versions between the reader's ts and the newest one at or
        // below it must all survive; only nothing is below the reader.
        assert_eq!(freed, 0);
        assert_eq!(m.get_at(&t, 1), Some(10));
        m.end_read(t);
        let (_, freed) = m.vacuum();
        assert_eq!(freed, 10);
        let t2 = m.begin_read(0);
        assert_eq!(m.get_at(&t2, 1), Some(109));
        m.end_read(t2);
    }

    #[test]
    fn insert_many_is_atomic_per_timestamp() {
        let m = VersionListMap::new(1);
        m.insert_many(&[(1, 10), (2, 20)]);
        let ts = m.commit_ts();
        m.insert_many(&[(1, 11), (2, 21)]);
        // A snapshot pinned between the two batches sees the first batch
        // exactly.
        let t = ReadTicket { pid: 0, ts };
        assert_eq!(m.get_at(&t, 1), Some(10));
        assert_eq!(m.get_at(&t, 2), Some(20));
    }

    #[test]
    fn range_sum_sees_snapshot() {
        let m = VersionListMap::new(1);
        for k in 0..10u64 {
            m.insert(k, 1);
        }
        let t = m.begin_read(0);
        for k in 0..10u64 {
            m.insert(k, 1000);
        }
        assert_eq!(m.range_sum(&t, 0, 10), 10);
        m.end_read(t);
        let t2 = m.begin_read(0);
        assert_eq!(m.range_sum(&t2, 0, 10), 10_000);
        assert_eq!(m.range_sum(&t2, 3, 5), 2000);
        m.end_read(t2);
    }

    #[test]
    fn vacuum_cost_scans_even_when_nothing_freed() {
        let m = VersionListMap::new(1);
        for k in 0..100u64 {
            m.insert(k, k);
        }
        let (scanned, freed) = m.vacuum();
        assert_eq!(freed, 0);
        assert_eq!(scanned, 100, "pays one scan per live version anyway");
    }

    #[test]
    fn stats_accounting_consistent() {
        let m = VersionListMap::new(1);
        for i in 0..20u64 {
            m.insert(i % 4, i);
        }
        let st = m.stats();
        assert_eq!(st.created, 20);
        assert_eq!(st.live_versions, 20);
        m.vacuum();
        let st = m.stats();
        assert_eq!(st.live_versions, 4);
        assert_eq!(st.freed, 16);
        assert_eq!(st.created, 20);
    }
}
