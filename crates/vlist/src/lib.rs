//! # mvcc-vlist — the version-list multiversion baseline
//!
//! The mainstream way to build a multiversion system — used by MVTO \[57\],
//! ROMV [50, 62] and most MVCC databases — keeps a **version list per
//! object**: every record carries a chain of `(timestamp, value)` pairs,
//! newest first, and a reader with read-timestamp `t` walks the chain to
//! the newest version with timestamp `≤ t`.
//!
//! The paper's introduction singles this design out as the reason no
//! prior multiversion system bounds delay: *"these lists need to be
//! traversed to find the relevant version, which causes extra delay for
//! reads. The delay is not just a constant, but can be asymptotic in the
//! number of versions."* Garbage collection is equally problematic —
//! dead versions are found by scanning chains against the oldest active
//! reader, so collection cost is proportional to the data scanned, not
//! to the garbage collected.
//!
//! This crate implements that baseline faithfully so the repository can
//! *measure* the claim rather than cite it:
//!
//! * [`VersionListMap`] — an ordered map of `u64` keys to per-key version
//!   chains, a global commit timestamp, per-process read-timestamp
//!   announcements, and a scan-based [`VersionListMap::vacuum`].
//! * Per-read **hop accounting** ([`VlistStats::hops`]) so benches can
//!   plot reader work against the number of uncollected versions — the
//!   quantity the functional-tree system keeps at zero extra.
//!
//! It is deliberately *not* a full transactional STM: the repository's
//! point of comparison is the cost profile of version lists under the
//! paper's single-writer + many-readers workload (Table 2's shape), so
//! the writer API is single-writer (callers serialize writers, exactly
//! like the paper's batched writer) while reads are fully concurrent.

//! ## Example
//!
//! ```
//! use mvcc_vlist::VersionListMap;
//!
//! let m = VersionListMap::new(2); // two reader process slots
//! m.insert(1, 10);
//!
//! // Pin a snapshot, then keep writing.
//! let snap = m.begin_read(0);
//! m.insert(1, 11);
//! m.insert(1, 12);
//!
//! // The snapshot reads its timestamp... by walking the chain.
//! let (value, hops) = m.get_at_counted(&snap, 1);
//! assert_eq!(value, Some(10));
//! assert_eq!(hops, 3, "one hop per newer version — the paper's point");
//! m.end_read(snap);
//!
//! // Scan-based GC: cost is proportional to versions scanned.
//! let (scanned, freed) = m.vacuum();
//! assert_eq!((scanned, freed), (3, 2));
//! ```

mod chain;
mod map;

pub use chain::VersionChain;
pub use map::{ReadTicket, VersionListMap, VlistStats};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn end_to_end_snapshot_isolation() {
        let m = VersionListMap::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        let t = m.begin_read(0);
        assert_eq!(m.get_at(&t, 1), Some(10));
        m.insert(1, 11);
        // The pinned reader still sees the old version.
        assert_eq!(m.get_at(&t, 1), Some(10));
        m.end_read(t);
        let t2 = m.begin_read(0);
        assert_eq!(m.get_at(&t2, 1), Some(11));
        m.end_read(t2);
    }

    #[test]
    fn concurrent_readers_never_see_torn_sums() {
        // Writer keeps the sum over keys constant; readers must always
        // observe that constant on a snapshot.
        const KEYS: u64 = 64;
        let m = Arc::new(VersionListMap::new(4));
        for k in 0..KEYS {
            m.insert(k, 100);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let mw = Arc::clone(&m);
            let stopw = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stopw.load(Ordering::Relaxed) {
                    // Move one unit from key a to key b atomically at one
                    // timestamp.
                    let a = i % KEYS;
                    let b = (i + 1) % KEYS;
                    let va = mw.get_latest(a).unwrap();
                    let vb = mw.get_latest(b).unwrap();
                    mw.insert_many(&[(a, va - 1), (b, vb + 1)]);
                    i += 1;
                }
            });
            for pid in 1..4 {
                let mr = Arc::clone(&m);
                let stopr = Arc::clone(&stop);
                s.spawn(move || {
                    for _ in 0..300 {
                        let t = mr.begin_read(pid);
                        let sum = mr.range_sum(&t, 0, KEYS);
                        assert_eq!(sum, 100 * KEYS, "torn multi-key read");
                        mr.end_read(t);
                    }
                    stopr.store(true, Ordering::Relaxed);
                });
            }
        });
    }

    #[test]
    fn vacuum_under_concurrent_reads_is_safe() {
        let m = Arc::new(VersionListMap::new(3));
        for k in 0..32u64 {
            m.insert(k, k);
        }
        std::thread::scope(|s| {
            let mw = Arc::clone(&m);
            s.spawn(move || {
                for round in 0..200u64 {
                    for k in 0..32 {
                        mw.insert(k, round * 100 + k);
                    }
                    mw.vacuum();
                }
            });
            for pid in 1..3 {
                let mr = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..200 {
                        let t = mr.begin_read(pid);
                        // Every key must resolve to *some* version of
                        // itself (k mod 100) — vacuum must never free a
                        // version a live snapshot can still reach.
                        for k in 0..32u64 {
                            let v = mr.get_at(&t, k).expect("reachable version freed");
                            assert_eq!(v % 100, k);
                        }
                        mr.end_read(t);
                    }
                });
            }
        });
        m.vacuum();
        let st = m.stats();
        assert_eq!(
            st.live_versions, 32,
            "quiescent vacuum must keep exactly the newest version per key"
        );
    }
}
