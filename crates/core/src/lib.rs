//! # mvcc-core — the multiversion transactional framework (Figure 1)
//!
//! This crate assembles the paper's primary contribution: a transactional
//! system over purely functional data structures in which
//!
//! * **read transactions are delay-free** — `acquire` (O(1) with PSWF),
//!   then the unmodified sequential user code on an immutable snapshot
//!   (Theorem 5.4);
//! * **a single writer has O(P) delay** — `acquire` + user code
//!   (path-copying) + `set` (O(P));
//! * **concurrent writers are lock-free** — a failed `set` implies another
//!   writer succeeded; the loser collects its speculative version and
//!   retries;
//! * **garbage collection is safe and precise** (Theorem 5.3) — `release`
//!   returns a version exactly when its last holder lets go, and
//!   [`mvcc_ftree::Forest::release`] then frees exactly the tuples
//!   unreachable from every other live version, in time linear in the
//!   garbage (Theorem 4.2).
//!
//! ## Sessions
//!
//! The VM problem hands each of the `P` process ids to "at most one
//! thread at a time". Rather than trusting every call site with a raw
//! `pid: usize`, the API leases pids: [`Database::session`] pops a free
//! pid from a lock-free registry and returns a [`Session`] — a `Send +
//! !Sync` handle owning the pid, a pinned arena shard, a reusable release
//! buffer and local transaction counters. All transactions run through
//! the session; the pid returns to the pool on drop.
//!
//! The transaction skeletons are Figure 1, expressed on a session:
//!
//! ```
//! use mvcc_core::Database;
//! use mvcc_core::ftree::SumU64Map;
//!
//! let db: Database<SumU64Map> = Database::new(2);
//!
//! // Lease a session (Figure 1's process k).
//! let mut writer = db.session().unwrap();
//!
//! // Write transaction: acquire; user code on a mutable view; set;
//! // release -> collect. Retries on a concurrent commit.
//! writer.write(|txn| {
//!     txn.insert(1, 10);
//!     txn.insert(2, 20);
//! });
//!
//! // Read transaction: acquire; user code on an immutable snapshot;
//! // release -> collect. Delay-free.
//! let mut reader = db.session().unwrap();
//! assert_eq!(reader.read(|snap| snap.aug_total()), 30);
//!
//! // Leases are exclusive: the pids are taken until a session drops.
//! assert!(db.session().is_err());
//! drop(reader);
//! assert!(db.session().is_ok());
//! ```
//!
//! Bulk operations keep the raw closure form ([`Session::write_raw`])
//! where user code consumes and returns owned roots directly.
//!
//! ## Session pools and the shard router — beyond `P` sessions
//!
//! `Database::session()` fails with `Err(Exhausted)` once all `P` pids
//! are leased. The [`pool`] module decouples logical sessions from that
//! physical bound:
//!
//! * [`Database::pool`] returns a [`SessionPool`] whose
//!   [`acquire`](SessionPool::acquire) parks the caller on a FIFO wait
//!   queue until a pid frees (a dropping session wakes exactly the front
//!   waiter through the pid pool's release hook); `acquire_timeout`
//!   bounds the wait.
//! * [`Router`] shards keys over `N` independent databases by seeded
//!   hash, for `N×P` aggregate capacity — `router.session(&tenant)`
//!   leases (waiting, per shard) on the shard that tenant always maps to.
//!
//! ```
//! use mvcc_core::{Database, Router};
//! use mvcc_core::ftree::U64Map;
//!
//! let db: Database<U64Map> = Database::new(1);
//! std::thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let pool = db.pool();
//!         // Four logical sessions share one pid: acquire() waits its
//!         // turn instead of erroring.
//!         s.spawn(move || pool.acquire().insert(t, t));
//!     }
//! });
//!
//! let router: Router<U64Map> = Router::new(8, 2); // 8 shards × 2 pids
//! router.session(&"tenant-7").insert(1, 1);
//! assert_eq!(router.capacity(), 16);
//! ```
//!
//! [`Database`] is generic over the [`VersionMaintenance`] algorithm, so
//! the §7.1 experiments can swap PSWF / PSLF / HP / EP / RCU under an
//! identical transaction layer. [`batch`] adds the Appendix F
//! flat-combining single-writer that turns concurrent update requests into
//! atomically-committed parallel batches.
//!
//! ## Durability
//!
//! Everything above is memory-only: a process crash loses every commit.
//! The [`durable`] module (backed by the `mvcc-wal` crate) wraps a
//! database with a write-ahead log, snapshot-consistent checkpoints and
//! crash recovery:
//!
//! ```
//! use mvcc_core::{Durability, DurableConfig, DurableDatabase};
//! use mvcc_core::ftree::U64Map;
//! use mvcc_core::wal::FaultStorage;
//! use std::sync::Arc;
//!
//! // Open-or-recover; an empty store yields an empty database. (A real
//! // deployment uses `DurableDatabase::recover("path/to/dir", ..)`.)
//! let storage = Arc::new(FaultStorage::unfaulted());
//! let cfg = DurableConfig { durability: Durability::Always, ..Default::default() };
//! let db: DurableDatabase<U64Map> =
//!     DurableDatabase::recover_storage(storage.clone(), 2, cfg.clone()).unwrap();
//! let mut s = db.session().unwrap();
//! s.insert(1, 10).unwrap(); // in the WAL (fsynced) before it is visible
//! drop(s);
//! drop(db); // crash-equivalent: no checkpoint, just the log
//!
//! let db: DurableDatabase<U64Map> =
//!     DurableDatabase::recover_storage(storage, 2, cfg).unwrap();
//! let mut s = db.session().unwrap();
//! assert_eq!(s.get(&1), Some(10));
//! ```
//!
//! The [`Durability`] policy trades the crash-loss window against commit
//! latency: `Always` fsyncs every commit, `EveryN(n)` amortizes (a
//! crash loses at most the last `n - 1` acknowledged commits, always
//! from the tail), and `Off` preserves this crate's in-memory behavior
//! and performance exactly — the lock-free commit path, no logging —
//! with only explicit [`DurableDatabase::checkpoint`] calls persisting
//! state. Orthogonally, [`GroupCommit`] decides how concurrent `Always`
//! committers share fsyncs: `Serial` pays one per commit inside the
//! commit lock; `Leader`/`Flusher` enqueue inside the lock and coalesce
//! overlapping commits into one group fsync outside it, acknowledged
//! through awaitable [`CommitAck`]s ([`DurableSession::write_acked`])
//! and measured by [`DurableStats`]. The recovery contract: the newest
//! valid checkpoint is loaded, the WAL tail after it is replayed in
//! `commit_ts` order, a torn tail ends replay at the last intact record
//! (and is truncated away), a coalesced group replays all-or-nothing,
//! and recovering the same store twice is idempotent.
//!
//! The pre-session entry points (`Database::read(pid, ..)` etc.) survive
//! as thin deprecated shims; they still work — now allocation-free via a
//! thread-local release buffer — but bypass the lease registry, so they
//! cannot protect callers from pid aliasing the way sessions do. They
//! also bypass the durable layer entirely: a raw write through the
//! [`Database`] inside a [`DurableDatabase`] is never logged, and a
//! durable commit that loses its `set` to one surfaces
//! [`DurableError::RacedByRawWriter`].
//!
//! The workspace-level `ARCHITECTURE.md` maps this crate's place in the
//! full stack (arena → version maintenance → trees → transactions →
//! WAL/network) and the invariants each boundary keeps.

pub mod batch;
pub mod durable;
pub mod pool;
mod session;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mvcc_ftree::{AllocCtx, Forest, OptNodeId, Root, TreeParams};
use mvcc_vm::{PidPool, PswfVm, VersionMaintenance, VmKind};

pub use batch::{BatchWriter, MapOp, SubmitError};
pub use durable::{
    CommitAck, Durability, DurableConfig, DurableDatabase, DurableError, DurableSession,
    DurableStats, DurableTxn, GroupCommit, Health, MaintenanceHandle, MaintenanceHook,
    MaintenancePolicy, MaintenanceStats, MaintenanceTick, RecoveryReport,
};
pub use mvcc_ftree as ftree;
pub use mvcc_vm as vm;
/// Error returned by [`Database::session`] / [`Database::session_for`]:
/// the pool is exhausted or the requested pid is already leased.
pub use mvcc_vm::LeaseError as SessionError;
pub use mvcc_wal as wal;
pub use pool::{
    AcquireFuture, AcquireState, AcquireTimeout, AcquireTimeoutFuture, LeaseGuard, LeaseRevoked,
    PoolStats, Router, SessionPool,
};
pub use session::{Session, SessionReadGuard, WriteTxn};

#[inline]
fn encode(root: Root) -> u64 {
    root.raw() as u64
}

#[inline]
fn decode(token: u64) -> Root {
    debug_assert!(token <= u32::MAX as u64, "corrupt version token");
    OptNodeId::from_raw(token as u32)
}

thread_local! {
    /// Reusable release/collect buffer for the deprecated pid-based entry
    /// points (sessions carry their own). Taken (not borrowed) around
    /// each transaction so nested legacy transactions on one thread each
    /// get a buffer instead of a `RefCell` panic.
    static RELEASE_BUF: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn with_release_buf<R>(f: impl FnOnce(&mut Vec<u64>) -> R) -> R {
    let mut buf = RELEASE_BUF.with(|b| std::mem::take(&mut *b.borrow_mut()));
    let result = f(&mut buf);
    RELEASE_BUF.with(|b| {
        let mut slot = b.borrow_mut();
        if slot.capacity() < buf.capacity() {
            buf.clear();
            *slot = buf;
        }
    });
    result
}

/// Cumulative transaction statistics (monotone counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Committed write transactions.
    pub commits: u64,
    /// Aborted `set` attempts (each implies a concurrent successful write).
    pub aborts: u64,
    /// Completed read transactions.
    pub reads: u64,
}

/// A multiversion ordered-map database: one [`Forest`] of tree versions
/// plus a Version Maintenance object deciding which versions are live.
///
/// `P` fixes key/value/augmentation types; `M` picks the VM algorithm
/// (default: the paper's PSWF). The `processes` process ids are handed
/// out as exclusive [`Session`] leases.
pub struct Database<P: TreeParams, M: VersionMaintenance = PswfVm> {
    forest: Forest<P>,
    vmo: M,
    pids: PidPool,
    /// FIFO wait queue for `pool().acquire()`; `Arc` because the pid
    /// pool's release hook (a `'static` closure) holds the other ref.
    pub(crate) waiters: Arc<pool::WaitQueue>,
    /// Lease-deadline table for `pool().acquire_leased()`; one slot per
    /// pid, occupied while a `LeaseGuard` holds it.
    pub(crate) leases: pool::LeaseRegistry,
    commits: AtomicU64,
    aborts: AtomicU64,
    reads: AtomicU64,
}

impl<P: TreeParams> Database<P, PswfVm> {
    /// An empty database using the PSWF algorithm for `processes`
    /// processes.
    pub fn new(processes: usize) -> Self {
        Self::with_vm(PswfVm::new(processes, encode(OptNodeId::NONE)))
    }
}

impl<P: TreeParams> Database<P, Box<dyn VersionMaintenance>> {
    /// An empty database using the given VM algorithm family — the
    /// experiment harness's entry point.
    pub fn with_kind(kind: VmKind, processes: usize) -> Self {
        Self::with_vm(kind.build(processes, encode(OptNodeId::NONE)))
    }
}

impl<P: TreeParams, M: VersionMaintenance> Database<P, M> {
    /// Wrap an explicit VM instance whose initial version must carry the
    /// nil-root token.
    pub fn with_vm(vmo: M) -> Self {
        assert_eq!(
            vmo.current(),
            encode(OptNodeId::NONE),
            "VM's initial version must be the empty tree"
        );
        let pids = PidPool::new(vmo.processes());
        let waiters = Arc::new(pool::WaitQueue::new());
        // Wake-on-release: a dropping `Session` releases its pid, and the
        // pool's hook unparks the FIFO wait queue — `pool().acquire()`
        // never polls.
        let wake = Arc::clone(&waiters);
        pids.add_release_hook(move |_pid| wake.notify());
        let leases = pool::LeaseRegistry::new(pids.processes());
        Database {
            forest: Forest::new(),
            pids,
            waiters,
            leases,
            vmo,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            reads: AtomicU64::new(0),
        }
    }

    /// Lease a free process id as a [`Session`].
    /// `Err(Exhausted)` when all `processes` pids are held.
    pub fn session(&self) -> Result<Session<'_, P, M>, SessionError> {
        Ok(Session::new(self, self.pids.lease()?))
    }

    /// Lease the specific process id `pid` (e.g. to pair a producer with
    /// a deterministic arena shard). `Err(PidLeased)` if it is held,
    /// `Err(OutOfRange)` if `pid >= processes()`.
    pub fn session_for(&self, pid: usize) -> Result<Session<'_, P, M>, SessionError> {
        self.pids.lease_exact(pid)?;
        Ok(Session::new(self, pid))
    }

    /// Number of currently leased sessions (racy snapshot, diagnostics).
    pub fn sessions_leased(&self) -> usize {
        self.pids.leased()
    }

    /// The waiting-mode session front end: [`SessionPool::acquire`]
    /// parks FIFO until a pid frees instead of returning
    /// `Err(Exhausted)`, so more logical sessions than `processes()` can
    /// share this database. The handle is `Copy`; every handle shares one
    /// wait queue.
    pub fn pool(&self) -> SessionPool<'_, P, M> {
        SessionPool::new(self)
    }

    /// The shared forest (for building batches outside transactions).
    pub fn forest(&self) -> &Forest<P> {
        &self.forest
    }

    /// The underlying Version Maintenance object (diagnostics).
    pub fn vm(&self) -> &M {
        &self.vmo
    }

    /// Number of process ids.
    pub fn processes(&self) -> usize {
        self.vmo.processes()
    }

    /// Snapshot of the global transaction counters.
    ///
    /// Live sessions count locally and flush here only when they drop,
    /// so a long-lived session's transactions are missing from this
    /// snapshot until then (consult [`Session::stats`] for its local
    /// tally) — the price of keeping three contended `fetch_add`s off
    /// every transaction.
    pub fn stats(&self) -> TxnStats {
        TxnStats {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn flush_stats(&self, local: TxnStats) {
        if local.commits > 0 {
            self.commits.fetch_add(local.commits, Ordering::Relaxed);
        }
        if local.aborts > 0 {
            self.aborts.fetch_add(local.aborts, Ordering::Relaxed);
        }
        if local.reads > 0 {
            self.reads.fetch_add(local.reads, Ordering::Relaxed);
        }
    }

    /// Versions not yet collected (Table 2's "live versions" metric).
    pub fn live_versions(&self) -> u64 {
        self.vmo.uncollected_versions()
    }

    /// The arena allocation context for process `pid` — one shard per
    /// process id, stable across threads. Sessions pin this
    /// automatically; it remains public for diagnostics and for batch
    /// construction outside transactions.
    pub fn alloc_ctx(&self, pid: usize) -> AllocCtx {
        self.forest.ctx_for(pid)
    }

    /// Release tokens returned by the VM and precisely collect their trees.
    fn collect_released(&self, released: &mut Vec<u64>) {
        for tok in released.drain(..) {
            self.forest.release(decode(tok));
        }
    }

    /// The common cleanup phase: release the pid's acquired version and
    /// precisely collect whatever stopped being live.
    pub(crate) fn finish_txn(&self, pid: usize, released: &mut Vec<u64>) {
        self.vmo.release(pid, released);
        self.collect_released(released);
    }

    /// One write attempt (Figure 1, right): acquire, run user code on an
    /// owned snapshot root, `set`, then release/collect. No counters —
    /// callers account locally (sessions) or globally (legacy shims).
    pub(crate) fn try_write_core<R>(
        &self,
        pid: usize,
        released: &mut Vec<u64>,
        f: &mut impl FnMut(&Forest<P>, Root) -> (Root, R),
    ) -> Option<R> {
        let base = decode(self.vmo.acquire(pid));
        // Hand the user code an owned reference to the snapshot; the
        // version system keeps its own.
        self.forest.retain(base);
        let (new_root, result) = f(&self.forest, base);
        // Commit: ownership of `new_root`'s reference transfers to the
        // version system on success.
        let ok = self.vmo.set(pid, encode(new_root));
        // ---- response (if ok) delivered; cleanup phase ----
        self.finish_txn(pid, released);
        if ok {
            Some(result)
        } else {
            // Figure 1 line 7: collect the speculative version.
            self.forest.release(new_root);
            None
        }
    }

    // ------------------------------------------------------------------
    // Deprecated pid-based entry points
    // ------------------------------------------------------------------
    //
    // Thin shims over the same transaction core the sessions use. They
    // do not consult the lease registry: the caller is again responsible
    // for the "one thread per pid" contract, and a pid used here may
    // collide with a leased session. Writes through these shims also
    // never reach a wrapping `DurableDatabase`'s WAL — see
    // `DurableError::RacedByRawWriter`.

    /// Run a read-only transaction on a raw process id.
    ///
    /// Unlike [`Database::session`], no lease protects `pid`: the caller
    /// must guarantee no other thread (including a leased [`Session`])
    /// is using it concurrently.
    #[deprecated(since = "0.1.0", note = "lease a `Session` and use `Session::read`")]
    pub fn read<R>(&self, pid: usize, f: impl FnOnce(&Snapshot<'_, P>) -> R) -> R {
        let result = with_release_buf(|buf| {
            let root = decode(self.vmo.acquire(pid));
            let result = f(&Snapshot {
                forest: &self.forest,
                root,
            });
            self.finish_txn(pid, buf);
            result
        });
        self.reads.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Begin a read transaction on a raw process id as an RAII guard.
    #[deprecated(
        since = "0.1.0",
        note = "lease a `Session` and use `Session::begin_read`"
    )]
    pub fn begin_read(&self, pid: usize) -> ReadGuard<'_, P, M> {
        let root = decode(self.vmo.acquire(pid));
        ReadGuard {
            db: self,
            pid,
            root,
        }
    }

    /// Run a write transaction on a raw process id, retrying on abort.
    ///
    /// The same unleased-pid caveat as [`Database::read`] applies, and
    /// writes through this shim bypass any wrapping
    /// [`DurableDatabase`]'s WAL entirely — they are never logged, and a
    /// durable commit racing one surfaces
    /// [`DurableError::RacedByRawWriter`].
    #[deprecated(
        since = "0.1.0",
        note = "lease a `Session` and use `Session::write` / `Session::write_raw`"
    )]
    pub fn write<R>(&self, pid: usize, mut f: impl FnMut(&Forest<P>, Root) -> (Root, R)) -> R {
        loop {
            if let Some(r) = self.legacy_attempt(pid, &mut f) {
                return r;
            }
        }
    }

    /// [`Database::write`] with allocation pinned to an explicit arena
    /// shard.
    #[deprecated(
        since = "0.1.0",
        note = "sessions pin their own `AllocCtx`; use `Session::write_raw`"
    )]
    #[allow(deprecated)]
    pub fn write_in<R>(
        &self,
        pid: usize,
        ctx: AllocCtx,
        f: impl FnMut(&Forest<P>, Root) -> (Root, R),
    ) -> R {
        self.forest.with_ctx(ctx, || self.write(pid, f))
    }

    /// Run a write transaction on a raw process id without retrying.
    #[deprecated(
        since = "0.1.0",
        note = "lease a `Session` and use `Session::try_write` / `Session::try_write_raw`"
    )]
    pub fn try_write<R>(
        &self,
        pid: usize,
        mut f: impl FnMut(&Forest<P>, Root) -> (Root, R),
    ) -> Result<R, Aborted> {
        self.legacy_attempt(pid, &mut f).ok_or(Aborted)
    }

    fn legacy_attempt<R>(
        &self,
        pid: usize,
        f: &mut impl FnMut(&Forest<P>, Root) -> (Root, R),
    ) -> Option<R> {
        let result = with_release_buf(|buf| self.try_write_core(pid, buf, f));
        match result {
            Some(_) => self.commits.fetch_add(1, Ordering::Relaxed),
            None => self.aborts.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Transactionally insert one entry on a raw process id.
    #[deprecated(since = "0.1.0", note = "lease a `Session` and use `Session::insert`")]
    #[allow(deprecated)]
    pub fn insert(&self, pid: usize, key: P::K, value: P::V) {
        self.write(pid, move |f, base| {
            (f.insert(base, key.clone(), value.clone()), ())
        })
    }

    /// Transactionally remove one key on a raw process id.
    #[deprecated(since = "0.1.0", note = "lease a `Session` and use `Session::remove`")]
    #[allow(deprecated)]
    pub fn remove(&self, pid: usize, key: &P::K) -> Option<P::V> {
        self.write(pid, |f, base| f.remove(base, key))
    }

    /// Transactionally remove every key in `[lo, hi]` on a raw process id.
    #[deprecated(
        since = "0.1.0",
        note = "lease a `Session` and use `Session::remove_range`"
    )]
    #[allow(deprecated)]
    pub fn remove_range(&self, pid: usize, lo: &P::K, hi: &P::K) {
        self.write(pid, |f, base| (f.remove_range(base, lo, hi), ()))
    }

    /// Point lookup as a read transaction on a raw process id.
    #[deprecated(since = "0.1.0", note = "lease a `Session` and use `Session::get`")]
    #[allow(deprecated)]
    pub fn get(&self, pid: usize, key: &P::K) -> Option<P::V> {
        self.read(pid, |s| s.get(key).cloned())
    }

    /// Entry count of the current version via a raw process id.
    #[deprecated(since = "0.1.0", note = "lease a `Session` and use `Session::len`")]
    #[allow(deprecated)]
    pub fn len(&self, pid: usize) -> usize {
        self.read(pid, |s| s.len())
    }

    /// Is the current version empty?
    #[deprecated(
        since = "0.1.0",
        note = "lease a `Session` and use `Session::is_empty`"
    )]
    #[allow(deprecated)]
    pub fn is_empty(&self, pid: usize) -> bool {
        self.len(pid) == 0
    }
}

/// Error returned by [`Session::try_write`] (and the deprecated
/// [`Database::try_write`]) when a concurrent writer committed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

impl std::fmt::Display for Aborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "write transaction aborted by a concurrent commit")
    }
}

impl std::error::Error for Aborted {}

/// An immutable view of one version of the database — what read
/// transactions and writers' user code see. All queries run the plain
/// sequential tree code (delay-free).
pub struct Snapshot<'a, P: TreeParams> {
    forest: &'a Forest<P>,
    root: Root,
}

impl<'a, P: TreeParams> Snapshot<'a, P> {
    /// The version root (for advanced tree operations via
    /// [`Snapshot::forest`]).
    pub fn root(&self) -> Root {
        self.root
    }

    /// The forest the root lives in. The borrow is tied to the snapshot so
    /// references cannot outlive the transaction's active interval.
    pub fn forest(&self) -> &Forest<P> {
        self.forest
    }

    /// Look up a key. The returned borrow is tied to the snapshot, not the
    /// database — it cannot escape the transaction closure.
    pub fn get(&self, key: &P::K) -> Option<&P::V> {
        self.forest.get(self.root, key)
    }

    /// Does the snapshot contain `key`?
    pub fn contains(&self, key: &P::K) -> bool {
        self.forest.contains(self.root, key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.forest.size(self.root)
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monoid fold over the inclusive key range (O(log n)).
    pub fn aug_range(&self, lo: &P::K, hi: &P::K) -> P::Aug {
        self.forest.aug_range(self.root, lo, hi)
    }

    /// Fold over the whole snapshot.
    pub fn aug_total(&self) -> P::Aug {
        self.forest.aug_total(self.root)
    }

    /// In-order traversal.
    pub fn for_each(&self, mut f: impl FnMut(&P::K, &P::V)) {
        self.forest.for_each(self.root, &mut f);
    }

    /// Clone the snapshot out as a sorted vector.
    pub fn to_vec(&self) -> Vec<(P::K, P::V)> {
        self.forest.to_vec(self.root)
    }

    /// Smallest entry.
    pub fn min(&self) -> Option<(&P::K, &P::V)> {
        self.forest.min(self.root)
    }

    /// Largest entry.
    pub fn max(&self) -> Option<(&P::K, &P::V)> {
        self.forest.max(self.root)
    }

    /// The `i`-th smallest entry (0-based), in O(log n).
    pub fn kth(&self, i: usize) -> Option<(&P::K, &P::V)> {
        self.forest.kth(self.root, i)
    }

    /// Number of entries with key strictly below `key`, in O(log n).
    pub fn rank(&self, key: &P::K) -> usize {
        self.forest.rank(self.root, key)
    }

    /// In-order traversal restricted to the inclusive key range.
    pub fn range_for_each(&self, lo: &P::K, hi: &P::K, mut f: impl FnMut(&P::K, &P::V)) {
        self.forest.range_for_each(self.root, lo, hi, &mut f);
    }
}

/// RAII read transaction on a raw process id (the deprecated
/// [`Database::begin_read`]); prefer [`Session::begin_read`], whose guard
/// also keeps the session's other transactions out for the duration.
pub struct ReadGuard<'a, P: TreeParams, M: VersionMaintenance> {
    db: &'a Database<P, M>,
    pid: usize,
    root: Root,
}

impl<'a, P: TreeParams, M: VersionMaintenance> ReadGuard<'a, P, M> {
    /// The snapshot this guard pins.
    pub fn snapshot(&self) -> Snapshot<'_, P> {
        Snapshot {
            forest: &self.db.forest,
            root: self.root,
        }
    }
}

impl<P: TreeParams, M: VersionMaintenance> Drop for ReadGuard<'_, P, M> {
    fn drop(&mut self) {
        with_release_buf(|buf| self.db.finish_txn(self.pid, buf));
        self.db.reads.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_ftree::{SumU64Map, U64Map};

    #[test]
    fn snapshot_order_statistics() {
        let db: Database<U64Map> = Database::new(2);
        let mut w = db.session().unwrap();
        for k in [40u64, 10, 30, 20, 50] {
            w.insert(k, k * 2);
        }
        let mut r = db.session().unwrap();
        r.read(|s| {
            assert_eq!(s.min(), Some((&10, &20)));
            assert_eq!(s.max(), Some((&50, &100)));
            assert_eq!(s.kth(0), Some((&10, &20)));
            assert_eq!(s.kth(2), Some((&30, &60)));
            assert_eq!(s.kth(5), None);
            assert_eq!(s.rank(&10), 0);
            assert_eq!(s.rank(&35), 3);
            assert_eq!(s.rank(&99), 5);
            let mut seen = Vec::new();
            s.range_for_each(&20, &40, |k, _| seen.push(*k));
            assert_eq!(seen, vec![20, 30, 40]);
        });
    }

    #[test]
    fn remove_range_is_one_atomic_commit() {
        let db: Database<SumU64Map> = Database::new(2);
        let mut w = db.session().unwrap();
        w.write(|txn| {
            let init: Vec<(u64, u64)> = (0..100).map(|k| (k, 1)).collect();
            txn.multi_insert(init, |_o, v| *v);
        });
        let before = w.stats().commits;
        w.remove_range(&10, &89);
        assert_eq!(w.stats().commits, before + 1, "single commit");
        let mut r = db.session().unwrap();
        assert_eq!(r.len(), 20);
        assert_eq!(r.read(|s| s.aug_total()), 20);
        // Precision: the removed entries' tuples are collected.
        assert_eq!(db.live_versions(), 1);
        assert_eq!(db.forest().arena().live(), 20);
    }

    #[test]
    fn single_process_insert_get_remove() {
        let db: Database<U64Map> = Database::new(1);
        {
            let mut s = db.session().unwrap();
            s.insert(5, 50);
            s.insert(3, 30);
            assert_eq!(s.get(&5), Some(50));
            assert_eq!(s.get(&4), None);
            assert_eq!(s.remove(&5), Some(50));
            assert_eq!(s.get(&5), None);
            assert_eq!(s.len(), 1);
        }
        // The session's local counters flushed on drop.
        let stats = db.stats();
        assert_eq!(stats.commits, 3);
        assert_eq!(stats.aborts, 0);
    }

    #[test]
    fn snapshot_isolation_under_writes() {
        let db: Database<U64Map> = Database::new(2);
        let mut w = db.session().unwrap();
        let mut r = db.session().unwrap();
        for k in 0..50u64 {
            w.insert(k, k);
        }
        let guard = r.begin_read();
        let snap_len = guard.snapshot().len();
        for k in 50..100u64 {
            w.insert(k, k);
        }
        // The pinned snapshot is unaffected by the 50 commits after it.
        assert_eq!(guard.snapshot().len(), snap_len);
        assert_eq!(guard.snapshot().get(&75), None);
        drop(guard);
        assert_eq!(w.len(), 100);
    }

    #[test]
    fn precise_gc_after_quiescence() {
        let db: Database<U64Map> = Database::new(2);
        let mut s = db.session().unwrap();
        for k in 0..200u64 {
            s.insert(k, k);
        }
        for k in 0..100u64 {
            s.remove(&k);
        }
        // Quiescent: exactly the current version is live.
        assert_eq!(db.live_versions(), 1);
        let live = db.forest().arena().live();
        assert_eq!(
            live, 100,
            "allocated tuples must equal entries of the sole live version"
        );
    }

    #[test]
    fn failed_set_collects_speculative_version() {
        let db: Database<U64Map> = Database::new(2);
        let mut a = db.session().unwrap();
        let mut b = db.session().unwrap();
        a.insert(1, 1);
        // Force an abort: acquire on session b, then let session a commit
        // first.
        let r = b.try_write(|txn| {
            // Sneak a competing committed write in while we're active.
            a.insert(99, 99);
            txn.insert(2, 2);
        });
        assert_eq!(r, Err(Aborted));
        assert_eq!(b.stats().aborts, 1);
        assert_eq!(a.get(&2), None);
        assert_eq!(a.get(&99), Some(99));
        // The speculative path-copied nodes were collected.
        assert_eq!(db.live_versions(), 1);
        assert_eq!(db.forest().arena().live(), 2);
    }

    #[test]
    fn write_retries_until_commit() {
        let db: Database<U64Map> = Database::new(2);
        let mut a = db.session().unwrap();
        let mut b = db.session().unwrap();
        a.insert(1, 1);
        let mut attempts = 0;
        b.write(|txn| {
            attempts += 1;
            if attempts == 1 {
                a.insert(100 + attempts, 0); // make attempt 1 fail
            }
            txn.insert(2, 2);
        });
        assert_eq!(attempts, 2);
        assert_eq!(a.get(&2), Some(2));
        assert_eq!(b.stats().commits, 1);
        assert_eq!(b.stats().aborts, 1);
    }

    #[test]
    fn write_txn_sees_own_writes() {
        let db: Database<SumU64Map> = Database::new(1);
        let mut s = db.session().unwrap();
        s.write(|txn| {
            assert!(txn.is_empty());
            txn.insert(1, 10);
            txn.insert(2, 20);
            assert_eq!(txn.get(&1), Some(&10));
            assert_eq!(txn.len(), 2);
            assert_eq!(txn.aug_total(), 30);
            assert_eq!(txn.remove(&1), Some(10));
            assert!(!txn.contains(&1));
            txn.multi_insert(vec![(3, 30), (4, 40)], |_o, n| *n);
            txn.remove_range(&4, &9);
            assert_eq!(txn.min(), Some((&2, &20)));
            assert_eq!(txn.max(), Some((&3, &30)));
        });
        assert_eq!(s.read(|s| s.to_vec()), vec![(2, 20), (3, 30)]);
        assert_eq!(s.stats().commits, 1, "one atomic commit for the batch");
        assert_eq!(db.forest().arena().live(), 2, "temporaries collected");
    }

    #[test]
    fn aug_range_through_snapshot() {
        let db: Database<SumU64Map> = Database::new(1);
        let mut s = db.session().unwrap();
        s.write(|txn| {
            let batch: Vec<(u64, u64)> = (0..100).map(|k| (k, k)).collect();
            txn.multi_insert(batch, |_o, n| *n);
        });
        let sum = s.read(|s| s.aug_range(&10, &20));
        assert_eq!(sum, (10..=20).sum::<u64>());
        assert_eq!(s.read(|s| s.aug_total()), (0..100).sum::<u64>());
    }

    #[test]
    fn with_kind_builds_all_algorithms() {
        for kind in VmKind::ALL {
            let db: Database<U64Map, _> = Database::with_kind(kind, 2);
            let mut w = db.session().unwrap();
            let mut r = db.session().unwrap();
            w.insert(1, 10);
            assert_eq!(r.get(&1), Some(10), "{kind:?}");
            w.insert(1, 20);
            assert_eq!(r.get(&1), Some(20), "{kind:?}");
        }
    }

    #[test]
    fn legacy_pid_entry_points_still_work() {
        // The deprecated shims share the transaction core (and the
        // thread-local release buffer) with the session path.
        #![allow(deprecated)]
        let db: Database<U64Map> = Database::new(2);
        db.insert(0, 5, 50);
        assert_eq!(db.get(1, &5), Some(50));
        db.write(0, |f, base| (f.insert(base, 6, 60), ()));
        let nested = db.read(1, |s| {
            // Nested legacy transaction on the same thread must not
            // collide on the shared buffer.
            db.insert(0, 7, 70);
            s.len()
        });
        assert_eq!(nested, 2, "snapshot predates the nested insert");
        assert_eq!(db.remove(0, &5), Some(50));
        let g = db.begin_read(1);
        assert_eq!(g.snapshot().len(), 2);
        drop(g);
        assert_eq!(db.len(0), 2);
        assert_eq!(db.stats().commits, 4);
        assert_eq!(db.live_versions(), 1);
    }

    #[test]
    fn legacy_shims_bypass_the_registry() {
        // The deprecated raw-pid entry points do not consult the lease
        // registry — using a pid a session holds is the documented
        // hazard the shims carry, not a panic.
        #![allow(deprecated)]
        let db: Database<U64Map> = Database::new(2);
        let _held = db.session_for(0).unwrap();
        db.insert(0, 1, 1);
        assert_eq!(db.get(1, &1), Some(1));
        assert_eq!(db.sessions_leased(), 1, "shims do not lease");
    }

    #[test]
    fn concurrent_readers_and_single_writer_smoke() {
        use std::sync::atomic::AtomicBool;
        let db: std::sync::Arc<Database<SumU64Map>> = std::sync::Arc::new(Database::new(4));
        // Constant-sum invariant: every committed version sums to 1000.
        let mut w = db.session().unwrap();
        w.write(|txn| {
            let batch: Vec<(u64, u64)> = (0..10).map(|k| (k, 100)).collect();
            txn.multi_insert(batch, |_o, n| *n);
        });
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 1..4 {
                let db = db.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut reader = db.session().unwrap();
                    while !stop.load(Ordering::Relaxed) {
                        let total = reader.read(|snap| snap.aug_total());
                        assert_eq!(total, 1000, "snapshot saw a torn update");
                    }
                });
            }
            // Writer moves value between keys, preserving the total.
            for i in 0..2_000u64 {
                let from = i % 10;
                let to = (i + 1) % 10;
                w.write(|txn| {
                    let vf = *txn.get(&from).unwrap();
                    let vt = *txn.get(&to).unwrap();
                    let moved = vf.min(10);
                    txn.insert(from, vf - moved);
                    txn.insert(to, vt + moved);
                });
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(w.read(|s| s.aug_total()), 1000);
        assert_eq!(db.live_versions(), 1);
        assert_eq!(db.forest().arena().live(), 10);
    }
}
