//! # mvcc-core — the multiversion transactional framework (Figure 1)
//!
//! This crate assembles the paper's primary contribution: a transactional
//! system over purely functional data structures in which
//!
//! * **read transactions are delay-free** — `acquire` (O(1) with PSWF),
//!   then the unmodified sequential user code on an immutable snapshot
//!   (Theorem 5.4);
//! * **a single writer has O(P) delay** — `acquire` + user code
//!   (path-copying) + `set` (O(P));
//! * **concurrent writers are lock-free** — a failed `set` implies another
//!   writer succeeded; the loser collects its speculative version and
//!   retries;
//! * **garbage collection is safe and precise** (Theorem 5.3) — `release`
//!   returns a version exactly when its last holder lets go, and
//!   [`mvcc_ftree::Forest::release`] then frees exactly the tuples
//!   unreachable from every other live version, in time linear in the
//!   garbage (Theorem 4.2).
//!
//! The transaction skeletons are Figure 1 verbatim:
//!
//! ```text
//! Read:  v = acquire(k); user_code(v); /*response*/ release(k) -> collect
//! Write: v = acquire(k); newv = user_code(v); set(newv); /*response*/
//!        release(k) -> collect; if set failed: collect(newv), retry
//! ```
//!
//! [`Database`] is generic over the [`VersionMaintenance`] algorithm, so
//! the §7.1 experiments can swap PSWF / PSLF / HP / EP / RCU under an
//! identical transaction layer. [`batch`] adds the Appendix F
//! flat-combining single-writer that turns concurrent update requests into
//! atomically-committed parallel batches.

pub mod batch;

use std::sync::atomic::{AtomicU64, Ordering};

use mvcc_ftree::{AllocCtx, Forest, OptNodeId, Root, TreeParams};
use mvcc_vm::{PswfVm, VersionMaintenance, VmKind};

pub use batch::{BatchWriter, MapOp, SubmitError};
pub use mvcc_ftree as ftree;
pub use mvcc_vm as vm;

#[inline]
fn encode(root: Root) -> u64 {
    root.raw() as u64
}

#[inline]
fn decode(token: u64) -> Root {
    debug_assert!(token <= u32::MAX as u64, "corrupt version token");
    OptNodeId::from_raw(token as u32)
}

/// Cumulative transaction statistics (monotone counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Committed write transactions.
    pub commits: u64,
    /// Aborted `set` attempts (each implies a concurrent successful write).
    pub aborts: u64,
    /// Completed read transactions.
    pub reads: u64,
}

/// A multiversion ordered-map database: one [`Forest`] of tree versions
/// plus a Version Maintenance object deciding which versions are live.
///
/// `P` fixes key/value/augmentation types; `M` picks the VM algorithm
/// (default: the paper's PSWF). Each of the `processes` process ids may be
/// used by at most one thread at a time (the VM problem's contract).
pub struct Database<P: TreeParams, M: VersionMaintenance = PswfVm> {
    forest: Forest<P>,
    vmo: M,
    commits: AtomicU64,
    aborts: AtomicU64,
    reads: AtomicU64,
}

impl<P: TreeParams> Database<P, PswfVm> {
    /// An empty database using the PSWF algorithm for `processes`
    /// processes.
    pub fn new(processes: usize) -> Self {
        Self::with_vm(PswfVm::new(processes, encode(OptNodeId::NONE)))
    }
}

impl<P: TreeParams> Database<P, Box<dyn VersionMaintenance>> {
    /// An empty database using the given VM algorithm family — the
    /// experiment harness's entry point.
    pub fn with_kind(kind: VmKind, processes: usize) -> Self {
        Self::with_vm(kind.build(processes, encode(OptNodeId::NONE)))
    }
}

impl<P: TreeParams, M: VersionMaintenance> Database<P, M> {
    /// Wrap an explicit VM instance whose initial version must carry the
    /// nil-root token.
    pub fn with_vm(vmo: M) -> Self {
        assert_eq!(
            vmo.current(),
            encode(OptNodeId::NONE),
            "VM's initial version must be the empty tree"
        );
        Database {
            forest: Forest::new(),
            vmo,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            reads: AtomicU64::new(0),
        }
    }

    /// The shared forest (for building batches outside transactions).
    pub fn forest(&self) -> &Forest<P> {
        &self.forest
    }

    /// The underlying Version Maintenance object (diagnostics).
    pub fn vm(&self) -> &M {
        &self.vmo
    }

    /// Number of process ids.
    pub fn processes(&self) -> usize {
        self.vmo.processes()
    }

    /// Snapshot of the transaction counters.
    pub fn stats(&self) -> TxnStats {
        TxnStats {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
        }
    }

    /// Versions not yet collected (Table 2's "live versions" metric).
    pub fn live_versions(&self) -> u64 {
        self.vmo.uncollected_versions()
    }

    /// The arena allocation context for process `pid` — one shard per
    /// process id, stable across threads. Use with
    /// [`Database::write_in`] (or [`mvcc_ftree::Forest::with_ctx`]) to
    /// keep a logical writer's path-copying and collection on one
    /// allocator shard even when a thread pool migrates it.
    pub fn alloc_ctx(&self, pid: usize) -> AllocCtx {
        self.forest.ctx_for(pid)
    }

    /// Release tokens returned by the VM and precisely collect their trees.
    fn collect_released(&self, released: &mut Vec<u64>) {
        for tok in released.drain(..) {
            self.forest.release(decode(tok));
        }
    }

    /// Run a **read-only transaction** on process `pid` (Figure 1, left).
    ///
    /// `f` sees an immutable [`Snapshot`]; the transaction's *response* is
    /// when `f` returns — the release/collect cleanup that follows is the
    /// completion phase and adds no delay to the result.
    pub fn read<R>(&self, pid: usize, f: impl FnOnce(&Snapshot<'_, P>) -> R) -> R {
        let root = decode(self.vmo.acquire(pid));
        let result = f(&Snapshot {
            forest: &self.forest,
            root,
        });
        // ---- response delivered; cleanup phase ----
        let mut released = Vec::new();
        self.vmo.release(pid, &mut released);
        self.collect_released(&mut released);
        self.reads.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Begin a read transaction as an RAII guard (release + collect on
    /// drop). Useful when the borrow needs to live across statements.
    pub fn begin_read(&self, pid: usize) -> ReadGuard<'_, P, M> {
        let root = decode(self.vmo.acquire(pid));
        ReadGuard {
            db: self,
            pid,
            root,
        }
    }

    /// Run a **write transaction** (Figure 1, right), retrying on abort —
    /// lock-free: each retry is caused by another writer's commit.
    ///
    /// `f` receives the forest and an *owned* copy of the snapshot root;
    /// it returns the new version's owned root (typically via consuming
    /// tree operations such as `insert` / `multi_insert`). `f` may run
    /// multiple times; it must not have side effects beyond tree building.
    pub fn write<R>(&self, pid: usize, mut f: impl FnMut(&Forest<P>, Root) -> (Root, R)) -> R {
        loop {
            match self.try_write_inner(pid, &mut f) {
                Some(r) => return r,
                None => continue,
            }
        }
    }

    /// [`Database::write`] with allocation pinned to an explicit arena
    /// shard: the user code's path copies, the commit bookkeeping and
    /// the precise collection of displaced versions all route through
    /// `ctx`'s freelist.
    pub fn write_in<R>(
        &self,
        pid: usize,
        ctx: AllocCtx,
        f: impl FnMut(&Forest<P>, Root) -> (Root, R),
    ) -> R {
        self.forest.with_ctx(ctx, || self.write(pid, f))
    }

    /// Run a write transaction without retrying. Returns `Err(Aborted)` if
    /// a concurrent writer's `set` intervened.
    pub fn try_write<R>(
        &self,
        pid: usize,
        mut f: impl FnMut(&Forest<P>, Root) -> (Root, R),
    ) -> Result<R, Aborted> {
        self.try_write_inner(pid, &mut f).ok_or(Aborted)
    }

    fn try_write_inner<R>(
        &self,
        pid: usize,
        f: &mut impl FnMut(&Forest<P>, Root) -> (Root, R),
    ) -> Option<R> {
        let base = decode(self.vmo.acquire(pid));
        // Hand the user code an owned reference to the snapshot; the
        // version system keeps its own.
        self.forest.retain(base);
        let (new_root, result) = f(&self.forest, base);
        // Commit: ownership of `new_root`'s reference transfers to the
        // version system on success.
        let ok = self.vmo.set(pid, encode(new_root));
        // ---- response (if ok) delivered; cleanup phase ----
        let mut released = Vec::new();
        self.vmo.release(pid, &mut released);
        self.collect_released(&mut released);
        if ok {
            self.commits.fetch_add(1, Ordering::Relaxed);
            Some(result)
        } else {
            // Figure 1 line 7: collect the speculative version.
            self.forest.release(new_root);
            self.aborts.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    // ---- convenience single-op transactions ----

    /// Transactionally insert one entry.
    pub fn insert(&self, pid: usize, key: P::K, value: P::V) {
        self.write(pid, move |f, base| {
            (f.insert(base, key.clone(), value.clone()), ())
        })
    }

    /// Transactionally remove one key; returns the removed value.
    pub fn remove(&self, pid: usize, key: &P::K) -> Option<P::V> {
        self.write(pid, |f, base| f.remove(base, key))
    }

    /// Transactionally remove every key in `[lo, hi]` (one atomic
    /// commit, O(log n) plus the collected garbage).
    pub fn remove_range(&self, pid: usize, lo: &P::K, hi: &P::K) {
        self.write(pid, |f, base| (f.remove_range(base, lo, hi), ()))
    }

    /// Point lookup as a read transaction (clones the value out).
    pub fn get(&self, pid: usize, key: &P::K) -> Option<P::V> {
        self.read(pid, |s| s.get(key).cloned())
    }

    /// Entry count of the current version.
    pub fn len(&self, pid: usize) -> usize {
        self.read(pid, |s| s.len())
    }

    /// Is the current version empty?
    pub fn is_empty(&self, pid: usize) -> bool {
        self.len(pid) == 0
    }
}

/// Error returned by [`Database::try_write`] when a concurrent writer
/// committed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

impl std::fmt::Display for Aborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "write transaction aborted by a concurrent commit")
    }
}

impl std::error::Error for Aborted {}

/// An immutable view of one version of the database — what read
/// transactions and writers' user code see. All queries run the plain
/// sequential tree code (delay-free).
pub struct Snapshot<'a, P: TreeParams> {
    forest: &'a Forest<P>,
    root: Root,
}

impl<'a, P: TreeParams> Snapshot<'a, P> {
    /// The version root (for advanced tree operations via
    /// [`Snapshot::forest`]).
    pub fn root(&self) -> Root {
        self.root
    }

    /// The forest the root lives in. The borrow is tied to the snapshot so
    /// references cannot outlive the transaction's active interval.
    pub fn forest(&self) -> &Forest<P> {
        self.forest
    }

    /// Look up a key. The returned borrow is tied to the snapshot, not the
    /// database — it cannot escape the transaction closure.
    pub fn get(&self, key: &P::K) -> Option<&P::V> {
        self.forest.get(self.root, key)
    }

    /// Does the snapshot contain `key`?
    pub fn contains(&self, key: &P::K) -> bool {
        self.forest.contains(self.root, key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.forest.size(self.root)
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monoid fold over the inclusive key range (O(log n)).
    pub fn aug_range(&self, lo: &P::K, hi: &P::K) -> P::Aug {
        self.forest.aug_range(self.root, lo, hi)
    }

    /// Fold over the whole snapshot.
    pub fn aug_total(&self) -> P::Aug {
        self.forest.aug_total(self.root)
    }

    /// In-order traversal.
    pub fn for_each(&self, mut f: impl FnMut(&P::K, &P::V)) {
        self.forest.for_each(self.root, &mut f);
    }

    /// Clone the snapshot out as a sorted vector.
    pub fn to_vec(&self) -> Vec<(P::K, P::V)> {
        self.forest.to_vec(self.root)
    }

    /// Smallest entry.
    pub fn min(&self) -> Option<(&P::K, &P::V)> {
        self.forest.min(self.root)
    }

    /// Largest entry.
    pub fn max(&self) -> Option<(&P::K, &P::V)> {
        self.forest.max(self.root)
    }

    /// The `i`-th smallest entry (0-based), in O(log n).
    pub fn kth(&self, i: usize) -> Option<(&P::K, &P::V)> {
        self.forest.kth(self.root, i)
    }

    /// Number of entries with key strictly below `key`, in O(log n).
    pub fn rank(&self, key: &P::K) -> usize {
        self.forest.rank(self.root, key)
    }

    /// In-order traversal restricted to the inclusive key range.
    pub fn range_for_each(&self, lo: &P::K, hi: &P::K, mut f: impl FnMut(&P::K, &P::V)) {
        self.forest.range_for_each(self.root, lo, hi, &mut f);
    }
}

/// RAII read transaction: the snapshot stays valid until the guard drops,
/// at which point the version is released and (if this was the last
/// holder) precisely collected.
pub struct ReadGuard<'a, P: TreeParams, M: VersionMaintenance> {
    db: &'a Database<P, M>,
    pid: usize,
    root: Root,
}

impl<'a, P: TreeParams, M: VersionMaintenance> ReadGuard<'a, P, M> {
    /// The snapshot this guard pins.
    pub fn snapshot(&self) -> Snapshot<'_, P> {
        Snapshot {
            forest: &self.db.forest,
            root: self.root,
        }
    }
}

impl<P: TreeParams, M: VersionMaintenance> Drop for ReadGuard<'_, P, M> {
    fn drop(&mut self) {
        let mut released = Vec::new();
        self.db.vmo.release(self.pid, &mut released);
        self.db.collect_released(&mut released);
        self.db.reads.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_ftree::{SumU64Map, U64Map};

    #[test]
    fn snapshot_order_statistics() {
        let db: Database<U64Map> = Database::new(2);
        for k in [40u64, 10, 30, 20, 50] {
            db.insert(0, k, k * 2);
        }
        db.read(1, |s| {
            assert_eq!(s.min(), Some((&10, &20)));
            assert_eq!(s.max(), Some((&50, &100)));
            assert_eq!(s.kth(0), Some((&10, &20)));
            assert_eq!(s.kth(2), Some((&30, &60)));
            assert_eq!(s.kth(5), None);
            assert_eq!(s.rank(&10), 0);
            assert_eq!(s.rank(&35), 3);
            assert_eq!(s.rank(&99), 5);
            let mut seen = Vec::new();
            s.range_for_each(&20, &40, |k, _| seen.push(*k));
            assert_eq!(seen, vec![20, 30, 40]);
        });
    }

    #[test]
    fn remove_range_is_one_atomic_commit() {
        let db: Database<SumU64Map> = Database::new(2);
        db.write(0, |f, base| {
            let init: Vec<(u64, u64)> = (0..100).map(|k| (k, 1)).collect();
            (f.multi_insert(base, init, |_o, v| *v), ())
        });
        let before = db.stats().commits;
        db.remove_range(0, &10, &89);
        assert_eq!(db.stats().commits, before + 1, "single commit");
        assert_eq!(db.read(1, |s| s.len()), 20);
        assert_eq!(db.read(1, |s| s.aug_total()), 20);
        // Precision: the removed entries' tuples are collected.
        assert_eq!(db.live_versions(), 1);
        assert_eq!(db.forest().arena().live(), 20);
    }

    #[test]
    fn single_process_insert_get_remove() {
        let db: Database<U64Map> = Database::new(1);
        db.insert(0, 5, 50);
        db.insert(0, 3, 30);
        assert_eq!(db.get(0, &5), Some(50));
        assert_eq!(db.get(0, &4), None);
        assert_eq!(db.remove(0, &5), Some(50));
        assert_eq!(db.get(0, &5), None);
        assert_eq!(db.len(0), 1);
        let s = db.stats();
        assert_eq!(s.commits, 3);
        assert_eq!(s.aborts, 0);
    }

    #[test]
    fn snapshot_isolation_under_writes() {
        let db: Database<U64Map> = Database::new(2);
        for k in 0..50u64 {
            db.insert(0, k, k);
        }
        let guard = db.begin_read(1);
        let snap_len = guard.snapshot().len();
        for k in 50..100u64 {
            db.insert(0, k, k);
        }
        // The pinned snapshot is unaffected by the 50 commits after it.
        assert_eq!(guard.snapshot().len(), snap_len);
        assert_eq!(guard.snapshot().get(&75), None);
        drop(guard);
        assert_eq!(db.len(0), 100);
    }

    #[test]
    fn precise_gc_after_quiescence() {
        let db: Database<U64Map> = Database::new(2);
        for k in 0..200u64 {
            db.insert(0, k, k);
        }
        for k in 0..100u64 {
            db.remove(0, &k);
        }
        // Quiescent: exactly the current version is live.
        assert_eq!(db.live_versions(), 1);
        let live = db.forest().arena().live();
        assert_eq!(
            live, 100,
            "allocated tuples must equal entries of the sole live version"
        );
    }

    #[test]
    fn failed_set_collects_speculative_version() {
        let db: Database<U64Map> = Database::new(2);
        db.insert(0, 1, 1);
        // Force an abort: acquire on pid 1, then let pid 0 commit first.
        let r = db.try_write(1, |f, base| {
            // Sneak a competing committed write in while we're active.
            db.insert(0, 99, 99);
            (f.insert(base, 2, 2), ())
        });
        assert_eq!(r, Err(Aborted));
        assert_eq!(db.stats().aborts, 1);
        assert_eq!(db.get(0, &2), None);
        assert_eq!(db.get(0, &99), Some(99));
        // The speculative path-copied nodes were collected.
        assert_eq!(db.live_versions(), 1);
        assert_eq!(db.forest().arena().live(), 2);
    }

    #[test]
    fn write_retries_until_commit() {
        let db: Database<U64Map> = Database::new(2);
        db.insert(0, 1, 1);
        let mut attempts = 0;
        db.write(1, |f, base| {
            attempts += 1;
            if attempts == 1 {
                db.insert(0, 100 + attempts, 0); // make attempt 1 fail
            }
            (f.insert(base, 2, 2), ())
        });
        assert_eq!(attempts, 2);
        assert_eq!(db.get(0, &2), Some(2));
    }

    #[test]
    fn aug_range_through_snapshot() {
        let db: Database<SumU64Map> = Database::new(1);
        db.write(0, |f, base| {
            let batch: Vec<(u64, u64)> = (0..100).map(|k| (k, k)).collect();
            (f.multi_insert(base, batch, |_o, n| *n), ())
        });
        let sum = db.read(0, |s| s.aug_range(&10, &20));
        assert_eq!(sum, (10..=20).sum::<u64>());
        assert_eq!(db.read(0, |s| s.aug_total()), (0..100).sum::<u64>());
    }

    #[test]
    fn with_kind_builds_all_algorithms() {
        for kind in VmKind::ALL {
            let db: Database<U64Map, _> = Database::with_kind(kind, 2);
            db.insert(0, 1, 10);
            assert_eq!(db.get(1, &1), Some(10), "{kind:?}");
            db.insert(0, 1, 20);
            assert_eq!(db.get(1, &1), Some(20), "{kind:?}");
        }
    }

    #[test]
    fn concurrent_readers_and_single_writer_smoke() {
        use std::sync::atomic::AtomicBool;
        let db: std::sync::Arc<Database<SumU64Map>> = std::sync::Arc::new(Database::new(4));
        // Constant-sum invariant: every committed version sums to 1000.
        db.write(0, |f, base| {
            let batch: Vec<(u64, u64)> = (0..10).map(|k| (k, 100)).collect();
            (f.multi_insert(base, batch, |_o, n| *n), ())
        });
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for pid in 1..4 {
                let db = db.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let total = db.read(pid, |snap| snap.aug_total());
                        assert_eq!(total, 1000, "snapshot saw a torn update");
                    }
                });
            }
            // Writer moves value between keys, preserving the total.
            for i in 0..2_000u64 {
                let from = i % 10;
                let to = (i + 1) % 10;
                db.write(0, |f, base| {
                    let vf = *f.get(base, &from).unwrap();
                    let vt = *f.get(base, &to).unwrap();
                    let moved = vf.min(10);
                    let t = f.insert(base, from, vf - moved);
                    let t = f.insert(t, to, vt + moved);
                    (t, ())
                });
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(db.read(0, |s| s.aug_total()), 1000);
        assert_eq!(db.live_versions(), 1);
        assert_eq!(db.forest().arena().live(), 10);
    }
}
