//! Durable transactions: the WAL-backed commit path, snapshot-consistent
//! checkpoints, and crash recovery for a [`Database`].
//!
//! A [`DurableDatabase`] wraps the in-memory multiversion database with
//! the `mvcc-wal` layers:
//!
//! * **Commit** — a durable write transaction runs the usual Figure 1
//!   skeleton, but its key/value deltas are recorded and the batch is
//!   *published to the write-ahead log before the version becomes
//!   visible*: WAL append (the commit point, fsynced per the
//!   [`Durability`] policy) happens between user code and the VM `set`.
//!   Durable writers serialize on a commit mutex, so the `set` cannot
//!   lose a race to another durable writer and every batch gets the next
//!   `commit_ts` in log order.
//! * **Checkpoint** — [`DurableDatabase::checkpoint`] pins a snapshot via
//!   the existing session machinery (`begin_read` under a brief clock
//!   lock), then walks it *at its own pace while writers proceed* — the
//!   paper's bounded-delay-reads claim doing real I/O — and finally
//!   retires WAL segments older than the checkpoint's `commit_ts`.
//! * **Recovery** — [`DurableDatabase::recover`] loads the newest valid
//!   checkpoint, replays the WAL tail after it, and gracefully degrades
//!   on a torn tail (replay ends at the last intact record; see
//!   [`mvcc_wal::Replay`]). Replaying the same WAL twice is a no-op:
//!   batches at or below the recovered `commit_ts` are skipped.
//!
//! [`Durability::Off`] keeps today's in-memory behavior: writes go
//! straight through the lock-free session path — no logging, no commit
//! mutex, no fsync — and only an explicit checkpoint persists anything.
//! Since `Off` commits never touch the commit clock, each `Off`
//! checkpoint advances it by one instead, so successive checkpoints get
//! distinct (monotone) file names and the newest-valid fallback keeps
//! real redundancy.
//!
//! The raw [`Database`] stays reachable ([`DurableDatabase::database`])
//! for reads, pools and diagnostics, but a *write* through it bypasses
//! the log; a durable commit that loses its `set` to such a writer
//! surfaces [`DurableError::RacedByRawWriter`] instead of retrying —
//! that race is a misuse, not a liveness event.

use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use mvcc_ftree::TreeParams;
use mvcc_vm::{PswfVm, VersionMaintenance};
use mvcc_wal::checkpoint::{self};
use mvcc_wal::{
    DirStorage, FsyncPolicy, RetryPolicy, Storage, TornTail, Wal, WalBatch, WalCodec, WalConfig,
    WalError, WalOp,
};

use crate::batch::MapOp;
use crate::{decode, encode, Database, Session, SessionError, SessionReadGuard, WriteTxn};

/// When a committed batch becomes durable.
///
/// * [`Always`](Durability::Always) — every commit is appended to the WAL
///   and fsynced before it is acknowledged; a crash loses nothing acked.
/// * [`EveryN`](Durability::EveryN)`(n)` — group commit: every commit is
///   appended, the log fsyncs once per `n` appends. A crash can lose up
///   to the last `n - 1` acked commits, always from the tail.
/// * [`Off`](Durability::Off) — no logging at all: the lock-free
///   in-memory commit path, byte-for-byte. Only explicit
///   [`DurableDatabase::checkpoint`] calls persist state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Fsync every commit before acknowledging it.
    Always,
    /// Append every commit, fsync once per `n` (group commit).
    EveryN(u64),
    /// No write-ahead logging (in-memory behavior and performance).
    Off,
}

/// Configuration for opening / recovering a [`DurableDatabase`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Commit durability policy.
    pub durability: Durability,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Transient I/O retry policy for WAL appends.
    pub retry: RetryPolicy,
}

impl Default for DurableConfig {
    fn default() -> Self {
        let wal = WalConfig::default();
        DurableConfig {
            durability: Durability::Always,
            segment_bytes: wal.segment_bytes,
            retry: wal.retry,
        }
    }
}

impl DurableConfig {
    /// The default config with a different [`Durability`] policy.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    fn wal_config(&self) -> WalConfig {
        WalConfig {
            fsync: match self.durability {
                Durability::Always => FsyncPolicy::Always,
                Durability::EveryN(n) => FsyncPolicy::EveryN(n),
                // Off never appends; the policy is irrelevant but Off is
                // the honest mapping for the recovery-time segment repair.
                Durability::Off => FsyncPolicy::Off,
            },
            segment_bytes: self.segment_bytes,
            retry: self.retry,
        }
    }
}

/// Typed errors of the durable layer. Composes the WAL's I/O/corruption
/// errors with the session layer's lease errors so call sites handle one
/// enum.
#[derive(Debug)]
pub enum DurableError {
    /// The write-ahead log or checkpoint I/O failed (after retries).
    Wal(WalError),
    /// No session/pid was available where the operation needed one.
    Session(SessionError),
    /// A persisted record decoded at the byte layer but its typed
    /// key/value contents did not ([`WalCodec::decode`] failed) —
    /// corruption past what the CRC can see, or a codec change.
    Corrupt {
        /// What was being decoded.
        context: &'static str,
    },
    /// A durable commit lost its `set` to a writer that bypassed the
    /// durable layer (a raw [`Database`] write). The batch is already in
    /// the WAL — the durable image and the in-memory image have diverged,
    /// which is exactly why raw writes on a durable database are a
    /// contract violation.
    RacedByRawWriter,
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "durability I/O failed: {e}"),
            DurableError::Session(e) => write!(f, "no session available: {e}"),
            DurableError::Corrupt { context } => {
                write!(f, "persisted {context} failed typed decoding")
            }
            DurableError::RacedByRawWriter => write!(
                f,
                "durable commit raced by a non-durable writer (raw Database write)"
            ),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Wal(e) => Some(e),
            DurableError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<SessionError> for DurableError {
    fn from(e: SessionError) -> Self {
        DurableError::Session(e)
    }
}

/// What [`DurableDatabase::recover`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// `commit_ts` of the checkpoint the recovery started from, if any.
    pub checkpoint_ts: Option<u64>,
    /// Entries loaded from that checkpoint.
    pub checkpoint_entries: usize,
    /// WAL batches replayed (those after the checkpoint).
    pub replayed: usize,
    /// WAL batches skipped as already covered by the checkpoint —
    /// replaying a WAL twice is a no-op by this rule.
    pub skipped: usize,
    /// The torn tail recovery truncated, if the log had one.
    pub torn: Option<TornTail>,
    /// WAL segments dropped beyond the torn point.
    pub dropped_segments: usize,
}

/// The durable commit clock, shared by all durable writers under one
/// mutex: the next batch's identifiers are assigned inside the critical
/// section, so `commit_ts` is strictly increasing along the WAL.
struct CommitClock {
    next_tx: u64,
    last_ts: u64,
}

/// A [`Database`] with a write-ahead log, checkpoints and crash recovery.
///
/// Create with [`DurableDatabase::recover`] (filesystem directory) or
/// [`DurableDatabase::recover_storage`] (any [`Storage`], e.g. the
/// fault-injection double) — recovery of an empty directory *is* the
/// constructor. Write through [`DurableDatabase::session`] handles;
/// anything read-only may also use the raw database underneath.
pub struct DurableDatabase<P: TreeParams, M: VersionMaintenance = PswfVm> {
    db: Database<P, M>,
    storage: Arc<dyn Storage>,
    /// `None` under [`Durability::Off`]: commits skip logging entirely.
    wal: Option<Wal>,
    commit: Mutex<CommitClock>,
    report: RecoveryReport,
}

fn decode_ops<P: TreeParams>(ops: &[WalOp]) -> Result<Vec<MapOp<P>>, DurableError>
where
    P::K: WalCodec,
    P::V: WalCodec,
{
    ops.iter()
        .map(|op| match op {
            WalOp::Put(k, v) => match (P::K::decode(k), P::V::decode(v)) {
                (Some(k), Some(v)) => Ok(MapOp::Insert(k, v)),
                _ => Err(DurableError::Corrupt {
                    context: "WAL put delta",
                }),
            },
            WalOp::Del(k) => P::K::decode(k)
                .map(MapOp::Remove)
                .ok_or(DurableError::Corrupt {
                    context: "WAL delete delta",
                }),
        })
        .collect()
}

fn encode_ops<P: TreeParams>(ops: &[MapOp<P>]) -> Vec<WalOp>
where
    P::K: WalCodec,
    P::V: WalCodec,
{
    ops.iter()
        .map(|op| match op {
            MapOp::Insert(k, v) => {
                let mut kb = Vec::new();
                let mut vb = Vec::new();
                k.encode(&mut kb);
                v.encode(&mut vb);
                WalOp::Put(kb, vb)
            }
            MapOp::Remove(k) => {
                let mut kb = Vec::new();
                k.encode(&mut kb);
                WalOp::Del(kb)
            }
        })
        .collect()
}

impl<P: TreeParams> DurableDatabase<P, PswfVm>
where
    P::K: WalCodec,
    P::V: WalCodec,
{
    /// Open-or-recover a durable database backed by the directory `path`
    /// (created if absent). An empty directory yields an empty database;
    /// otherwise the newest valid checkpoint is loaded and the WAL tail
    /// replayed — including after a crash, where a torn tail ends replay
    /// at the last intact record instead of failing.
    pub fn recover(
        path: impl AsRef<Path>,
        processes: usize,
        cfg: DurableConfig,
    ) -> Result<Self, DurableError> {
        let storage = DirStorage::new(path.as_ref()).map_err(|e| {
            DurableError::Wal(WalError::Io {
                op: "open",
                name: path.as_ref().display().to_string(),
                source: e,
            })
        })?;
        Self::recover_storage(Arc::new(storage), processes, cfg)
    }

    /// [`DurableDatabase::recover`] over an explicit [`Storage`] — the
    /// entry point the fault-injection tests drive with an in-memory
    /// crashed image.
    pub fn recover_storage(
        storage: Arc<dyn Storage>,
        processes: usize,
        cfg: DurableConfig,
    ) -> Result<Self, DurableError> {
        let (wal, replay) = Wal::open(Arc::clone(&storage), cfg.wal_config())?;
        let ckpt = checkpoint::load_latest(&*storage)?;

        let db: Database<P, PswfVm> = Database::new(processes);
        let mut report = RecoveryReport {
            torn: replay.torn.clone(),
            dropped_segments: replay.dropped_segments,
            ..RecoveryReport::default()
        };
        let mut last_ts = 0u64;
        let mut next_tx = 1u64;
        {
            let mut session = db.session()?;
            if let Some(c) = &ckpt {
                last_ts = c.ts;
                // The checkpoint carries the tx-id high-water mark, so
                // tx_id stays monotone across recoveries even when
                // truncation has emptied the WAL tail.
                next_tx = next_tx.max(c.next_tx);
                report.checkpoint_ts = Some(c.ts);
                report.checkpoint_entries = c.entries.len();
                let mut pairs = Vec::with_capacity(c.entries.len());
                for (k, v) in &c.entries {
                    match (P::K::decode(k), P::V::decode(v)) {
                        (Some(k), Some(v)) => pairs.push((k, v)),
                        _ => {
                            return Err(DurableError::Corrupt {
                                context: "checkpoint entry",
                            })
                        }
                    }
                }
                session.write_raw(|f, base| {
                    // The database is freshly constructed: `base` is the
                    // nil root, so building the image directly is safe.
                    debug_assert!(base.is_none(), "recovery must start empty");
                    (f.build_sorted(&pairs), ())
                });
            }
            for b in &replay.batches {
                // Even checkpoint-covered (skipped) batches advance the
                // tx-id high-water mark.
                next_tx = next_tx.max(b.tx_id + 1);
                if b.commit_ts <= last_ts {
                    report.skipped += 1;
                    continue;
                }
                let ops = decode_ops::<P>(&b.ops)?;
                session.write_raw(|f, base| {
                    let mut root = base;
                    for op in &ops {
                        match op {
                            MapOp::Insert(k, v) => {
                                root = f.insert(root, k.clone(), v.clone());
                            }
                            MapOp::Remove(k) => root = f.remove(root, k).0,
                        }
                    }
                    (root, ())
                });
                report.replayed += 1;
                last_ts = b.commit_ts;
            }
        }

        Ok(DurableDatabase {
            db,
            storage,
            wal: match cfg.durability {
                Durability::Off => None,
                _ => Some(wal),
            },
            commit: Mutex::new(CommitClock { next_tx, last_ts }),
            report,
        })
    }
}

impl<P: TreeParams, M: VersionMaintenance> DurableDatabase<P, M> {
    /// What the recovery that opened this database found.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.report
    }

    /// The in-memory database underneath. Reads, pools and diagnostics
    /// are fine; a **write** through it bypasses the WAL and breaks the
    /// durable image (see [`DurableError::RacedByRawWriter`]).
    pub fn database(&self) -> &Database<P, M> {
        &self.db
    }

    /// The storage namespace holding the WAL segments and checkpoints.
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    /// `commit_ts` of the most recent durable commit (0 = none yet).
    /// Under [`Durability::Off`] this advances per *checkpoint*, not per
    /// commit (see [`DurableDatabase::checkpoint`]).
    pub fn last_commit_ts(&self) -> u64 {
        self.clock().last_ts
    }

    /// Is write-ahead logging active (i.e. durability not
    /// [`Durability::Off`])?
    pub fn durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Total bytes currently held by WAL segments (0 when logging is
    /// off). Grows with commits, shrinks at checkpoints.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::bytes)
    }

    /// Force an fsync of the WAL (flushes a pending
    /// [`Durability::EveryN`] group). A no-op with logging off.
    pub fn sync(&self) -> Result<(), DurableError> {
        match &self.wal {
            Some(wal) => wal.sync().map_err(DurableError::from),
            None => Ok(()),
        }
    }

    fn clock(&self) -> MutexGuard<'_, CommitClock> {
        self.commit.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Lease a durable session (a [`Session`] whose write transactions go
    /// through the WAL). `Err(Exhausted)` when all pids are out.
    pub fn session(&self) -> Result<DurableSession<'_, P, M>, DurableError> {
        Ok(DurableSession {
            inner: self.db.session()?,
            dd: self,
            ops: Vec::new(),
        })
    }
}

impl<P: TreeParams, M: VersionMaintenance> DurableDatabase<P, M>
where
    P::K: WalCodec,
    P::V: WalCodec,
{
    /// Write a snapshot-consistent checkpoint and retire the WAL segments
    /// it covers. Returns the checkpoint's `commit_ts`.
    ///
    /// The snapshot is pinned under a brief clock lock (so its contents
    /// correspond exactly to one `commit_ts`), then walked while writers
    /// proceed — precise GC keeps the pinned version alive at zero cost
    /// to them. Needs a free pid for the reading session; parks FIFO
    /// until one frees.
    ///
    /// Under [`Durability::Off`] commits bypass the commit clock, so the
    /// clock is advanced *here* instead: each checkpoint gets a fresh,
    /// strictly larger `commit_ts`, which keeps successive checkpoint
    /// file names distinct (the newest-valid fallback needs the previous
    /// image to still exist) — `last_commit_ts` then counts checkpoints
    /// rather than commits.
    pub fn checkpoint(&self) -> Result<u64, DurableError> {
        let mut session = self.db.pool().acquire();
        // Pin the snapshot at a known clock value: no durable commit can
        // land between reading `last_ts` and acquiring the version.
        let mut clock = self.clock();
        if self.wal.is_none() {
            clock.last_ts += 1;
        }
        let ts = clock.last_ts;
        let next_tx = clock.next_tx;
        let guard = session.begin_read();
        drop(clock);

        // Writers proceed from here; the walk goes at its own pace.
        let mut kb = Vec::new();
        let mut vb = Vec::new();
        checkpoint::write_checkpoint(&*self.storage, ts, next_tx, |w| {
            guard.snapshot().for_each(|k, v| {
                kb.clear();
                vb.clear();
                k.encode(&mut kb);
                v.encode(&mut vb);
                w.entry(&kb, &vb);
            });
            Ok(())
        })?;
        drop(guard);

        if let Some(wal) = &self.wal {
            wal.truncate_before(ts)?;
        }
        Ok(ts)
    }
}

/// A [`Session`] whose write transactions commit through the write-ahead
/// log. Reads are the ordinary delay-free snapshot reads.
///
/// Obtained from [`DurableDatabase::session`]; like `Session` it is
/// `Send + !Sync` and every transaction takes `&mut self`.
pub struct DurableSession<'db, P: TreeParams, M: VersionMaintenance = PswfVm> {
    inner: Session<'db, P, M>,
    dd: &'db DurableDatabase<P, M>,
    /// Reusable delta-log buffer for the commit path.
    ops: Vec<MapOp<P>>,
}

impl<'db, P: TreeParams, M: VersionMaintenance> DurableSession<'db, P, M> {
    /// The leased process id.
    pub fn pid(&self) -> usize {
        self.inner.pid()
    }

    /// The durable database this session writes to.
    pub fn durable_database(&self) -> &'db DurableDatabase<P, M> {
        self.dd
    }

    /// This session's transaction counters (see [`Session::stats`]).
    pub fn stats(&self) -> crate::TxnStats {
        self.inner.stats()
    }

    /// Run a read-only transaction — identical to [`Session::read`]:
    /// durability adds nothing to the read path.
    pub fn read<R>(&mut self, f: impl FnOnce(&crate::Snapshot<'_, P>) -> R) -> R {
        self.inner.read(f)
    }

    /// Begin an RAII read transaction (see [`Session::begin_read`]).
    pub fn begin_read(&mut self) -> SessionReadGuard<'_, 'db, P, M> {
        self.inner.begin_read()
    }

    /// Point lookup as a read transaction.
    pub fn get(&mut self, key: &P::K) -> Option<P::V> {
        self.inner.get(key)
    }

    /// Entry count of the current version.
    pub fn len(&mut self) -> usize {
        self.inner.len()
    }

    /// Is the current version empty?
    pub fn is_empty(&mut self) -> bool {
        self.inner.is_empty()
    }
}

impl<'db, P: TreeParams, M: VersionMaintenance> DurableSession<'db, P, M>
where
    P::K: WalCodec,
    P::V: WalCodec,
{
    /// Run a **durable write transaction**.
    ///
    /// User code sees a [`DurableTxn`] — the [`WriteTxn`] surface, with
    /// every delta recorded. On return the batch is appended to the WAL
    /// (fsynced per the [`Durability`] policy) *before* the new version
    /// becomes visible; `Ok` means both happened. On a WAL error the
    /// in-memory database is untouched and the error is surfaced — the
    /// transaction did not happen.
    ///
    /// Under [`Durability::Off`] this is exactly [`Session::write`]
    /// (lock-free, retrying, nothing logged), wrapped in `Ok`.
    ///
    /// `f` may run more than once only in the `Off` mode (retry on a
    /// lost race); with logging on, durable writers serialize and `f`
    /// runs exactly once.
    pub fn write<R>(
        &mut self,
        mut f: impl FnMut(&mut DurableTxn<'_, '_, P>) -> R,
    ) -> Result<R, DurableError> {
        let dd = self.dd;
        let Some(wal) = &dd.wal else {
            // Durability::Off: the unmodified in-memory commit path.
            return Ok(self
                .inner
                .write(|txn| f(&mut DurableTxn { txn, log: None })));
        };

        let db = self.inner.database();
        self.ops.clear();

        // Serialize durable writers: commit_ts assignment, WAL append and
        // `set` form one critical section, so the log order is the commit
        // order and `set` cannot lose to another *durable* writer.
        let mut clock = dd.clock();
        let _pin = db.forest().arena().pin(self.inner.alloc_ctx());
        let pid = self.inner.pid();
        let base = decode(db.vmo.acquire(pid));
        db.forest().retain(base);
        let mut txn = WriteTxn::new(db.forest(), base);
        let result = f(&mut DurableTxn {
            txn: &mut txn,
            log: Some(&mut self.ops),
        });
        let new_root = txn.root();

        // Publish to the log BEFORE the version becomes visible: the WAL
        // record is the commit point.
        let batch = WalBatch {
            tx_id: clock.next_tx,
            commit_ts: clock.last_ts + 1,
            snapshot_ts: clock.last_ts,
            ops: encode_ops::<P>(&self.ops),
        };
        if let Err(e) = wal.append(&batch) {
            // The log rolled the frame back (or poisoned itself so no
            // later append can bury it): nothing visible, nothing the
            // next recovery would replay as acked. Release the
            // speculative version and leave the database as it was;
            // `commit_ts` is safe to reuse because the failed frame is
            // off the log.
            db.forest().release(new_root);
            db.finish_txn(pid, &mut self.inner.released);
            self.inner.aborts += 1;
            return Err(e.into());
        }
        // The batch is in the log; its identifiers are spent even if the
        // `set` below loses to a contract-violating raw writer.
        clock.next_tx += 1;
        clock.last_ts = batch.commit_ts;

        let ok = db.vmo.set(pid, encode(new_root));
        db.finish_txn(pid, &mut self.inner.released);
        if ok {
            self.inner.commits += 1;
            Ok(result)
        } else {
            db.forest().release(new_root);
            self.inner.aborts += 1;
            Err(DurableError::RacedByRawWriter)
        }
    }

    /// Durably insert one entry.
    pub fn insert(&mut self, key: P::K, value: P::V) -> Result<(), DurableError> {
        self.write(move |txn| txn.insert(key.clone(), value.clone()))
    }

    /// Durably remove one key; returns the removed value.
    pub fn remove(&mut self, key: &P::K) -> Result<Option<P::V>, DurableError> {
        self.write(|txn| txn.remove(key))
    }

    /// Durably remove every key in the inclusive range `[lo, hi]` as one
    /// atomic commit.
    pub fn remove_range(&mut self, lo: &P::K, hi: &P::K) -> Result<(), DurableError> {
        self.write(|txn| txn.remove_range(lo, hi))
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for DurableSession<'_, P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSession")
            .field("pid", &self.inner.pid())
            .field("durable", &self.dd.durable())
            .finish_non_exhaustive()
    }
}

/// The mutable view a durable write transaction receives: the
/// [`WriteTxn`] surface, with every delta recorded for the WAL. There
/// are deliberately no raw-root escape hatches — an unrecorded tree
/// mutation could not be replayed.
pub struct DurableTxn<'a, 't, P: TreeParams> {
    txn: &'a mut WriteTxn<'t, P>,
    /// `None` under [`Durability::Off`]: nothing is recorded.
    log: Option<&'a mut Vec<MapOp<P>>>,
}

impl<P: TreeParams> DurableTxn<'_, '_, P> {
    fn record(&mut self, op: MapOp<P>) {
        if let Some(log) = self.log.as_deref_mut() {
            log.push(op);
        }
    }

    /// Insert or overwrite one entry.
    pub fn insert(&mut self, key: P::K, value: P::V) {
        self.record(MapOp::Insert(key.clone(), value.clone()));
        self.txn.insert(key, value);
    }

    /// Remove one key; returns the removed value.
    pub fn remove(&mut self, key: &P::K) -> Option<P::V> {
        let removed = self.txn.remove(key);
        if removed.is_some() {
            self.record(MapOp::Remove(key.clone()));
        }
        removed
    }

    /// Remove every key in the inclusive range `[lo, hi]`.
    pub fn remove_range(&mut self, lo: &P::K, hi: &P::K) {
        if self.log.is_some() {
            let mut doomed = Vec::new();
            self.txn
                .forest()
                .range_for_each(self.txn.root(), lo, hi, &mut |k: &P::K, _: &P::V| {
                    doomed.push(k.clone())
                });
            for k in doomed {
                self.record(MapOp::Remove(k));
            }
        }
        self.txn.remove_range(lo, hi);
    }

    /// Apply a whole batch of insertions (parallel `multi_insert`);
    /// duplicates merge with `combine(old, new)`. The *merged* values are
    /// what the WAL records, so replay needs no combine function.
    pub fn multi_insert(
        &mut self,
        batch: Vec<(P::K, P::V)>,
        combine: impl Fn(&P::V, &P::V) -> P::V + Sync,
    ) {
        if self.log.is_none() {
            self.txn.multi_insert(batch, combine);
            return;
        }
        let mut keys: Vec<P::K> = batch.iter().map(|(k, _)| k.clone()).collect();
        keys.sort();
        keys.dedup();
        self.txn.multi_insert(batch, combine);
        for k in keys {
            let v = self
                .txn
                .get(&k)
                .expect("multi_insert key present in working version")
                .clone();
            self.record(MapOp::Insert(k, v));
        }
    }

    /// Remove a whole batch of keys (parallel `multi_remove`).
    pub fn multi_remove(&mut self, keys: Vec<P::K>) {
        if self.log.is_some() {
            for k in &keys {
                self.record(MapOp::Remove(k.clone()));
            }
        }
        self.txn.multi_remove(keys);
    }

    // ---- queries on the working root (see own writes) ----

    /// Look up a key in the working version.
    pub fn get(&self, key: &P::K) -> Option<&P::V> {
        self.txn.get(key)
    }

    /// Does the working version contain `key`?
    pub fn contains(&self, key: &P::K) -> bool {
        self.txn.contains(key)
    }

    /// Entry count of the working version.
    pub fn len(&self) -> usize {
        self.txn.len()
    }

    /// Is the working version empty?
    pub fn is_empty(&self) -> bool {
        self.txn.is_empty()
    }

    /// Monoid fold over the inclusive key range (O(log n)).
    pub fn aug_range(&self, lo: &P::K, hi: &P::K) -> P::Aug {
        self.txn.aug_range(lo, hi)
    }

    /// Fold over the whole working version.
    pub fn aug_total(&self) -> P::Aug {
        self.txn.aug_total()
    }

    /// Smallest entry of the working version.
    pub fn min(&self) -> Option<(&P::K, &P::V)> {
        self.txn.min()
    }

    /// Largest entry of the working version.
    pub fn max(&self) -> Option<(&P::K, &P::V)> {
        self.txn.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_ftree::U64Map;
    use mvcc_wal::FaultStorage;

    fn open(storage: &FaultStorage, durability: Durability) -> DurableDatabase<U64Map> {
        DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig {
                durability,
                ..DurableConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn commits_survive_reopen() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            let mut s = db.session().unwrap();
            s.insert(1, 10).unwrap();
            s.insert(2, 20).unwrap();
            assert_eq!(s.remove(&1).unwrap(), Some(10));
            s.write(|txn| {
                txn.insert(3, 30);
                txn.insert(4, 40);
            })
            .unwrap();
            assert_eq!(db.last_commit_ts(), 4);
        }
        let db = open(&storage, Durability::Always);
        assert_eq!(db.recovery().replayed, 4);
        assert_eq!(db.last_commit_ts(), 4);
        let mut s = db.session().unwrap();
        assert_eq!(s.get(&1), None);
        assert_eq!(s.get(&2), Some(20));
        assert_eq!(s.get(&3), Some(30));
        assert_eq!(s.get(&4), Some(40));
    }

    #[test]
    fn range_and_bulk_deltas_replay() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            let mut s = db.session().unwrap();
            s.write(|txn| {
                txn.multi_insert((0..50u64).map(|k| (k, k)).collect(), |_o, n| *n);
            })
            .unwrap();
            s.remove_range(&10, &39).unwrap();
            s.write(|txn| txn.multi_remove(vec![0, 1, 2])).unwrap();
        }
        let db = open(&storage, Durability::Always);
        let mut s = db.session().unwrap();
        assert_eq!(s.len(), 17);
        assert_eq!(s.get(&5), Some(5));
        assert_eq!(s.get(&10), None);
        assert_eq!(s.get(&40), Some(40));
        assert_eq!(s.get(&0), None);
    }

    #[test]
    fn merged_values_are_logged_not_the_raw_batch() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            let mut s = db.session().unwrap();
            s.insert(7, 100).unwrap();
            // Sum-combine with the existing value and an in-batch dup:
            // replay must see 100 + 1 + 2 = 103 without the combine fn.
            s.write(|txn| {
                txn.multi_insert(vec![(7, 1), (7, 2)], |old, new| old + new);
            })
            .unwrap();
            assert_eq!(s.get(&7), Some(103));
        }
        let db = open(&storage, Durability::Always);
        assert_eq!(db.session().unwrap().get(&7), Some(103));
    }

    #[test]
    fn checkpoint_truncates_and_recovery_prefers_it() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            let mut s = db.session().unwrap();
            for k in 0..20u64 {
                s.insert(k, k * 3).unwrap();
            }
            let ts = db.checkpoint().unwrap();
            assert_eq!(ts, 20);
            s.insert(100, 1).unwrap(); // WAL tail beyond the checkpoint
        }
        let db = open(&storage, Durability::Always);
        let report = db.recovery();
        assert_eq!(report.checkpoint_ts, Some(20));
        assert_eq!(report.checkpoint_entries, 20);
        assert_eq!(report.replayed, 1, "only the tail replays");
        let mut s = db.session().unwrap();
        assert_eq!(s.len(), 21);
        assert_eq!(s.get(&100), Some(1));
    }

    #[test]
    fn durability_off_persists_nothing_but_checkpoints() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Off);
            assert!(!db.durable());
            let mut s = db.session().unwrap();
            s.insert(1, 1).unwrap();
            db.checkpoint().unwrap();
            s.insert(2, 2).unwrap(); // after the checkpoint: lost on crash
            assert_eq!(db.wal_bytes(), 0);
        }
        let db = open(&storage, Durability::Off);
        let mut s = db.session().unwrap();
        assert_eq!(s.get(&1), Some(1), "checkpointed commit survives");
        assert_eq!(s.get(&2), None, "post-checkpoint Off commit is lost");
    }

    #[test]
    fn failed_fsync_does_not_resurrect_the_aborted_commit() {
        use mvcc_wal::FaultPlan;
        // Commit A's fsync fails after its frame was appended: the log
        // must roll the frame back so commit B can take the same
        // commit_ts. Recovery must yield exactly B — the old bug replayed
        // A and skipped B.
        let storage = FaultStorage::new(
            FaultPlan {
                transient_sync_failures: 1,
                ..FaultPlan::default()
            },
            29,
        );
        let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig::default(),
        )
        .unwrap();
        let mut s = db.session().unwrap();
        let err = s.insert(1, 10).expect_err("first commit's fsync fails");
        assert!(matches!(err, DurableError::Wal(WalError::Io { .. })));
        s.insert(2, 20).unwrap();
        assert_eq!(db.last_commit_ts(), 1);
        drop(s);
        drop(db);

        let db = open(&storage, Durability::Always);
        assert_eq!(db.recovery().replayed, 1);
        let mut s = db.session().unwrap();
        assert_eq!(s.get(&1), None, "the failed commit must not come back");
        assert_eq!(s.get(&2), Some(20), "the acked commit must survive");
    }

    #[test]
    fn off_checkpoints_rotate_names_and_keep_fallback_redundancy() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Off);
            let mut s = db.session().unwrap();
            s.insert(1, 1).unwrap();
            let ts1 = db.checkpoint().unwrap();
            s.insert(2, 2).unwrap();
            let ts2 = db.checkpoint().unwrap();
            assert!(ts2 > ts1, "Off checkpoints must get distinct names");
            // Both published images exist: KEEP_CHECKPOINTS redundancy.
            let cks: Vec<String> = storage
                .list()
                .unwrap()
                .into_iter()
                .filter(|n| n.ends_with(".ck"))
                .collect();
            assert_eq!(cks.len(), 2, "previous checkpoint destroyed: {cks:?}");
        }
        // Corrupt the newest: recovery falls back to the previous image.
        let newest = storage
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".ck"))
            .max()
            .unwrap();
        storage.truncate(&newest, 10).unwrap();
        let db = open(&storage, Durability::Off);
        let mut s = db.session().unwrap();
        assert_eq!(s.get(&1), Some(1), "fallback image restores commit 1");
        assert_eq!(s.get(&2), None, "newest (corrupt) image is not used");
    }

    #[test]
    fn tx_ids_stay_monotone_across_checkpoint_recovery() {
        // Tiny segments so every frame seals and the checkpoint leaves an
        // empty WAL tail — next_tx must then come from the checkpoint.
        let cfg = || DurableConfig {
            segment_bytes: 1,
            ..DurableConfig::default()
        };
        let storage = FaultStorage::unfaulted();
        {
            let db: DurableDatabase<U64Map> =
                DurableDatabase::recover_storage(Arc::new(storage.clone()), 2, cfg()).unwrap();
            let mut s = db.session().unwrap();
            for k in 0..3u64 {
                s.insert(k, k).unwrap(); // tx_id 1..=3
            }
            db.checkpoint().unwrap();
        }
        {
            let db: DurableDatabase<U64Map> =
                DurableDatabase::recover_storage(Arc::new(storage.clone()), 2, cfg()).unwrap();
            assert_eq!(db.recovery().replayed, 0, "tail fully truncated");
            db.session().unwrap().insert(9, 9).unwrap(); // must be tx_id 4
        }
        let (_, replay) = mvcc_wal::Wal::open(
            Arc::new(storage.clone()),
            mvcc_wal::WalConfig {
                segment_bytes: 1,
                ..mvcc_wal::WalConfig::default()
            },
        )
        .unwrap();
        let tx: Vec<u64> = replay.batches.iter().map(|b| b.tx_id).collect();
        assert_eq!(tx, vec![4], "tx_id restarted instead of staying monotone");
    }

    #[test]
    fn wal_error_leaves_memory_untouched() {
        use mvcc_wal::FaultPlan;
        let storage = FaultStorage::new(
            FaultPlan {
                // Segment header survives open (one transient), then the
                // first commit's append fails beyond the retry budget.
                transient_append_failures: u64::MAX,
                ..FaultPlan::default()
            },
            3,
        );
        // Header append also fails => open itself errors typed.
        let r: Result<DurableDatabase<U64Map>, _> =
            DurableDatabase::recover_storage(Arc::new(storage), 1, DurableConfig::default());
        assert!(matches!(r, Err(DurableError::Wal(WalError::Io { .. }))));
    }

    #[test]
    fn raw_writer_race_is_a_typed_error() {
        let storage = FaultStorage::unfaulted();
        let db = open(&storage, Durability::Always);
        let mut s = db.session().unwrap();
        s.insert(1, 1).unwrap();
        let err = s
            .write(|txn| {
                // A contract-violating raw write sneaks in mid-transaction.
                let mut raw = db.database().session().unwrap();
                raw.insert(99, 99);
                txn.insert(2, 2);
            })
            .expect_err("set must lose to the raw writer");
        assert!(matches!(err, DurableError::RacedByRawWriter));
        // The durable session keeps working afterwards.
        s.insert(3, 3).unwrap();
        assert_eq!(s.get(&3), Some(3));
    }

    #[test]
    fn double_recovery_is_idempotent() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            let mut s = db.session().unwrap();
            for k in 0..10u64 {
                s.insert(k, k).unwrap();
            }
        }
        let once = open(&storage, Durability::Always);
        let first: Vec<(u64, u64)> = once.session().unwrap().read(|s| s.to_vec());
        let ts = once.last_commit_ts();
        drop(once);
        let twice = open(&storage, Durability::Always);
        assert_eq!(twice.session().unwrap().read(|s| s.to_vec()), first);
        assert_eq!(twice.last_commit_ts(), ts);
        assert_eq!(twice.recovery().skipped, 0);
        assert_eq!(twice.recovery().replayed, 10);
    }
}
