//! Durable transactions: the group-commit WAL pipeline, snapshot-
//! consistent checkpoints, and crash recovery for a [`Database`].
//!
//! A [`DurableDatabase`] wraps the in-memory multiversion database with
//! the `mvcc-wal` layers:
//!
//! * **Commit** — a durable write transaction runs the usual Figure 1
//!   skeleton, but its key/value deltas are recorded and the batch is
//!   *published to the write-ahead log before the version becomes
//!   visible*: the WAL publish happens between user code and the VM
//!   `set`, inside a commit mutex that hands every batch the next
//!   `commit_ts` in log order (so the `set` cannot lose a race to
//!   another durable writer). What "publish" costs depends on the
//!   [`GroupCommit`] policy: `Serial` appends *and fsyncs* the frame
//!   inside the critical section, while `Leader`/`Flusher` only
//!   *enqueue* the record on the WAL's commit-ordered group tail there
//!   and wait for the coalesced group fsync **outside** the lock — one
//!   fsync covers every commit that overlapped it. The invariant is
//!   then *logged-before-visible, durable-before-acked*: a commit is in
//!   the log before readers can see it, and [`DurableSession::write`]
//!   returns (or [`CommitAck::wait`] completes) only once its group's
//!   fsync landed. [`DurableSession::write_acked`] splits the commit at
//!   that seam for callers that want to overlap work with the flush.
//! * **Checkpoint** — [`DurableDatabase::checkpoint`] pins a snapshot via
//!   the existing session machinery (`begin_read` under a brief clock
//!   lock), then walks it *at its own pace while writers proceed* — the
//!   paper's bounded-delay-reads claim doing real I/O — and finally
//!   retires WAL segments older than the checkpoint's `commit_ts`.
//! * **Recovery** — [`DurableDatabase::recover`] loads the newest valid
//!   checkpoint, replays the WAL tail after it, and gracefully degrades
//!   on a torn tail (replay ends at the last intact record; see
//!   [`mvcc_wal::Replay`]). A coalesced group is one CRC-guarded
//!   multi-record frame, so its members replay all-or-nothing — after a
//!   crash, each writer recovers a gapless prefix of its acked commits
//!   plus at most its one in-flight commit
//!   (`acked <= T <= acked + group_size`). Replaying the same WAL twice
//!   is a no-op: batches at or below the recovered `commit_ts` are
//!   skipped.
//!
//! [`Durability::Off`] keeps today's in-memory behavior: writes go
//! straight through the lock-free session path — no logging, no commit
//! mutex, no fsync — and only an explicit checkpoint persists anything.
//! Since `Off` commits never touch the commit clock, each `Off`
//! checkpoint advances it by one instead, so successive checkpoints get
//! distinct (monotone) file names and the newest-valid fallback keeps
//! real redundancy.
//!
//! The raw [`Database`] stays reachable ([`DurableDatabase::database`])
//! for reads, pools and diagnostics, but a *write* through it bypasses
//! the log; a durable commit that loses its `set` to such a writer
//! surfaces [`DurableError::RacedByRawWriter`] instead of retrying —
//! that race is a misuse, not a liveness event.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mvcc_ftree::TreeParams;
use mvcc_vm::{PswfVm, VersionMaintenance};
use mvcc_wal::checkpoint::{self};
use mvcc_wal::{
    is_segment_name, DirStorage, FsyncPolicy, RetryPolicy, Storage, TornTail, Wal, WalBatch,
    WalCodec, WalConfig, WalError, WalOp,
};

use crate::batch::MapOp;
use crate::{decode, encode, Database, Session, SessionError, SessionReadGuard, WriteTxn};

/// When a committed batch becomes durable.
///
/// * [`Always`](Durability::Always) — every commit is appended to the WAL
///   and fsynced before it is acknowledged; a crash loses nothing acked.
/// * [`EveryN`](Durability::EveryN)`(n)` — group commit: every commit is
///   appended, the log fsyncs once per `n` appends. A crash can lose up
///   to the last `n - 1` acked commits, always from the tail.
/// * [`Off`](Durability::Off) — no logging at all: the lock-free
///   in-memory commit path, byte-for-byte. Only explicit
///   [`DurableDatabase::checkpoint`] calls persist state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Fsync every commit before acknowledging it.
    Always,
    /// Append every commit, fsync once per `n` (group commit).
    EveryN(u64),
    /// No write-ahead logging (in-memory behavior and performance).
    Off,
}

/// How concurrent [`Durability::Always`] committers share fsyncs.
///
/// * [`Serial`](GroupCommit::Serial) — each commit appends its own frame
///   and pays its own fsync inside the commit critical section (the
///   original durable path). Simplest; the per-commit fsync bounds
///   multi-writer throughput.
/// * [`Leader`](GroupCommit::Leader) — commits *enqueue* their batch on
///   the WAL's group tail inside the critical section and wait for
///   durability outside it. The first waiter to find no flush in
///   progress elects itself leader and flushes the whole pending group
///   (one append, one fsync); commits that arrive during that flush form
///   the next group. Coalescing is driven purely by overlap — a lone
///   writer degenerates to one fsync per commit, same as `Serial`.
/// * [`Flusher`](GroupCommit::Flusher) — a dedicated background thread
///   flushes the group tail after waiting up to `max_coalesce` for more
///   commits to accumulate; committers wait passively. Trades up to
///   `max_coalesce` of added commit latency for bigger groups (useful
///   when writers rarely overlap but fsyncs are expensive).
///
/// Group commit only changes *when the fsync happens*, never what is
/// logged: records still enter the WAL's commit-ordered tail before the
/// version becomes visible, and an `Ok` from [`DurableSession::write`]
/// (or [`CommitAck::wait`]) still means durable. The policy applies only
/// under [`Durability::Always`]; `EveryN` and `Off` already amortize or
/// skip fsyncs, so they keep the serial path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupCommit {
    /// One frame + one fsync per commit, inside the commit lock.
    Serial,
    /// First durability waiter flushes the whole pending group.
    Leader,
    /// A dedicated thread flushes after a bounded coalescing wait.
    Flusher {
        /// How long the flusher lets a non-empty group accumulate before
        /// flushing it (an upper bound on added commit latency).
        max_coalesce: Duration,
    },
}

/// Configuration for opening / recovering a [`DurableDatabase`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Commit durability policy.
    pub durability: Durability,
    /// Fsync-sharing policy for concurrent `Always` committers.
    pub group_commit: GroupCommit,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Transient I/O retry policy for WAL appends.
    pub retry: RetryPolicy,
    /// Bounded commit queue: high watermark on the group-commit tail in
    /// pending commits (0 = unbounded). A commit that would push past it
    /// blocks inside its critical section until the flusher drains the
    /// tail — backpressure instead of unbounded memory when the commit
    /// rate outruns the disk. Counted in
    /// [`DurableStats::blocked_enqueues`].
    pub max_pending_batches: usize,
    /// Bounded commit queue by encoded bytes (0 = unbounded); whichever
    /// watermark trips first wins.
    pub max_pending_bytes: usize,
    /// Flusher-latency SLO: a group flush slower than this is counted in
    /// [`DurableStats::slo_misses`] (`None` = no SLO).
    pub flush_slo: Option<Duration>,
}

impl Default for DurableConfig {
    fn default() -> Self {
        let wal = WalConfig::default();
        DurableConfig {
            durability: Durability::Always,
            group_commit: GroupCommit::Serial,
            segment_bytes: wal.segment_bytes,
            retry: wal.retry,
            max_pending_batches: wal.max_pending_batches,
            max_pending_bytes: wal.max_pending_bytes,
            flush_slo: wal.flush_slo,
        }
    }
}

impl DurableConfig {
    /// The default config with a different [`Durability`] policy.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// This config with a different [`GroupCommit`] policy.
    pub fn with_group_commit(mut self, group_commit: GroupCommit) -> Self {
        self.group_commit = group_commit;
        self
    }

    /// This config with a bounded commit queue (high watermark in
    /// pending commits; 0 = unbounded).
    pub fn with_max_pending_batches(mut self, batches: usize) -> Self {
        self.max_pending_batches = batches;
        self
    }

    /// This config with a flusher-latency SLO.
    pub fn with_flush_slo(mut self, slo: Duration) -> Self {
        self.flush_slo = Some(slo);
        self
    }

    fn wal_config(&self) -> WalConfig {
        WalConfig {
            fsync: match self.durability {
                Durability::Always => FsyncPolicy::Always,
                Durability::EveryN(n) => FsyncPolicy::EveryN(n),
                // Off never appends; the policy is irrelevant but Off is
                // the honest mapping for the recovery-time segment repair.
                Durability::Off => FsyncPolicy::Off,
            },
            segment_bytes: self.segment_bytes,
            retry: self.retry,
            max_pending_batches: self.max_pending_batches,
            max_pending_bytes: self.max_pending_bytes,
            flush_slo: self.flush_slo,
        }
    }
}

/// Typed errors of the durable layer. Composes the WAL's I/O/corruption
/// errors with the session layer's lease errors so call sites handle one
/// enum.
#[derive(Debug)]
pub enum DurableError {
    /// The write-ahead log or checkpoint I/O failed (after retries).
    Wal(WalError),
    /// No session/pid was available where the operation needed one.
    Session(SessionError),
    /// A persisted record decoded at the byte layer but its typed
    /// key/value contents did not ([`WalCodec::decode`] failed) —
    /// corruption past what the CRC can see, or a codec change.
    Corrupt {
        /// What was being decoded.
        context: &'static str,
    },
    /// A durable commit lost its `set` to a writer that bypassed the
    /// durable layer (a raw [`Database`] write). The batch is already in
    /// the WAL — the durable image and the in-memory image have diverged,
    /// which is exactly why raw writes on a durable database are a
    /// contract violation.
    RacedByRawWriter,
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal(e) => write!(f, "durability I/O failed: {e}"),
            DurableError::Session(e) => write!(f, "no session available: {e}"),
            DurableError::Corrupt { context } => {
                write!(f, "persisted {context} failed typed decoding")
            }
            DurableError::RacedByRawWriter => write!(
                f,
                "durable commit raced by a non-durable writer (raw Database write)"
            ),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Wal(e) => Some(e),
            DurableError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<SessionError> for DurableError {
    fn from(e: SessionError) -> Self {
        DurableError::Session(e)
    }
}

/// What [`DurableDatabase::recover`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// `commit_ts` of the checkpoint the recovery started from, if any.
    pub checkpoint_ts: Option<u64>,
    /// Entries loaded from that checkpoint.
    pub checkpoint_entries: usize,
    /// WAL batches replayed (those after the checkpoint).
    pub replayed: usize,
    /// WAL batches skipped as already covered by the checkpoint —
    /// replaying a WAL twice is a no-op by this rule.
    pub skipped: usize,
    /// The torn tail recovery truncated, if the log had one.
    pub torn: Option<TornTail>,
    /// WAL segments dropped beyond the torn point.
    pub dropped_segments: usize,
    /// Stale `ckpt-*.tmp` files swept — leftovers of a checkpointer that
    /// crashed between its tmp write and the publishing rename.
    pub swept_tmp: usize,
}

/// Group-commit counters of a [`DurableDatabase`]
/// (see [`DurableDatabase::durable_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Group flushes that reached storage (one append + one fsync each).
    pub groups_flushed: u64,
    /// Commits coalesced across all flushed groups.
    pub batches_flushed: u64,
    /// The largest single group flushed.
    pub max_group: u64,
    /// Total wall-clock nanoseconds spent inside group flushes.
    pub flush_ns_total: u64,
    /// The slowest single group flush observed.
    pub max_flush_ns: u64,
    /// Flushes that exceeded [`DurableConfig::flush_slo`].
    pub slo_misses: u64,
    /// Commits that found the bounded queue at its watermark and had to
    /// block for a flush (saturation: the commit rate outran the disk).
    pub blocked_enqueues: u64,
    /// Total wall-clock nanoseconds commits spent blocked at the
    /// watermark.
    pub blocked_ns: u64,
    /// Commits enqueued on the group tail but not yet flushed (a racy
    /// snapshot).
    pub pending_batches: u64,
}

impl DurableStats {
    /// Mean commits per flushed group (0.0 before the first flush).
    pub fn mean_group(&self) -> f64 {
        if self.groups_flushed == 0 {
            0.0
        } else {
            self.batches_flushed as f64 / self.groups_flushed as f64
        }
    }

    /// Mean wall-clock time per group flush.
    pub fn mean_flush(&self) -> Duration {
        self.flush_ns_total
            .checked_div(self.groups_flushed)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }
}

/// When the durability maintenance supervisor checkpoints, how hard it
/// backs off on failure, and where the disk-footprint red line sits.
///
/// Drives [`DurableDatabase::maintenance_tick`] — either from the
/// dedicated thread of [`DurableDatabase::start_maintenance`] or embedded
/// in a caller's own periodic loop (mvcc-net's server tick). A checkpoint
/// is due when the WAL footprint reaches
/// [`wal_bytes_threshold`](MaintenancePolicy::wal_bytes_threshold) *or*
/// [`interval`](MaintenancePolicy::interval) has elapsed since the last
/// one; failures retry with jittered exponential backoff capped at
/// [`max_backoff`](MaintenancePolicy::max_backoff) while commits keep
/// flowing (see [`Health`]).
#[derive(Debug, Clone)]
pub struct MaintenancePolicy {
    /// Checkpoint once [`DurableDatabase::wal_bytes`] reaches this many
    /// bytes (0 disables the bytes trigger).
    pub wal_bytes_threshold: u64,
    /// Checkpoint when this much time has passed since the last
    /// successful checkpoint (`None` disables the time trigger).
    pub interval: Option<Duration>,
    /// Upper bound on the failure backoff (the first retry waits
    /// ~10ms, doubling — with jitter — up to this cap).
    pub max_backoff: Duration,
    /// Published checkpoints to retain (clamped to at least 1). More
    /// copies buy fallback redundancy against a corrupt newest image at
    /// the price of disk space.
    pub min_keep_checkpoints: usize,
    /// Disk-footprint **red line**: when [`DurableDatabase::wal_bytes`]
    /// reaches this, the supervisor narrows the WAL's group-commit
    /// watermark to one pending record, so committers feel bounded-queue
    /// backpressure at disk speed instead of growing the log without
    /// bound while reclamation is stalled. Cleared automatically once a
    /// checkpoint brings the footprint back under. 0 disables.
    pub redline_bytes: u64,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy {
            // One default WAL segment: checkpoint roughly per segment roll.
            wal_bytes_threshold: 8 << 20,
            interval: None,
            max_backoff: Duration::from_secs(5),
            min_keep_checkpoints: checkpoint::KEEP_CHECKPOINTS,
            redline_bytes: 0,
        }
    }
}

impl MaintenancePolicy {
    /// This policy with a different WAL-bytes checkpoint trigger.
    pub fn with_wal_bytes_threshold(mut self, bytes: u64) -> Self {
        self.wal_bytes_threshold = bytes;
        self
    }

    /// This policy with an elapsed-time checkpoint trigger.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = Some(interval);
        self
    }

    /// This policy with a different backoff cap.
    pub fn with_max_backoff(mut self, cap: Duration) -> Self {
        self.max_backoff = cap;
        self
    }

    /// This policy with a different checkpoint retention depth.
    pub fn with_min_keep_checkpoints(mut self, keep: usize) -> Self {
        self.min_keep_checkpoints = keep;
        self
    }

    /// This policy with a disk-footprint red line.
    pub fn with_redline_bytes(mut self, bytes: u64) -> Self {
        self.redline_bytes = bytes;
        self
    }
}

/// Maintenance health, surfaced by [`DurableDatabase::health`].
///
/// Degradation is *typed and bounded*: a failing checkpoint path stalls
/// log reclamation (and, past the policy red line, slows commits to disk
/// speed), but it never blocks commits outright and never corrupts the
/// log — the supervisor keeps retrying with backoff and recovers to
/// [`Health::Ok`] on the first success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// Maintenance is keeping up (or has not been needed yet).
    Ok,
    /// Checkpoints are failing; only reclamation is stalled.
    Degraded {
        /// The most recent failure, rendered.
        reason: String,
        /// When the current failure streak began.
        since: Instant,
        /// Consecutive failed attempts in the streak.
        retries: u32,
    },
}

impl Health {
    /// Is maintenance currently degraded?
    pub fn is_degraded(&self) -> bool {
        matches!(self, Health::Degraded { .. })
    }
}

/// Counters of the maintenance supervisor
/// (see [`DurableDatabase::maintenance_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// [`DurableDatabase::maintenance_tick`] invocations.
    pub ticks: u64,
    /// Checkpoints the supervisor completed.
    pub checkpoints: u64,
    /// Checkpoint attempts that failed.
    pub failures: u64,
    /// Ticks skipped because a failure backoff was still in force.
    pub skipped_backoff: u64,
    /// `commit_ts` of the newest supervisor-written (or recovered)
    /// checkpoint.
    pub last_checkpoint_ts: u64,
    /// [`DurableDatabase::wal_bytes`] at the most recent tick.
    pub wal_bytes: u64,
    /// Is the red-line backpressure currently engaged?
    pub redline_engaged: bool,
    /// How many times the red line newly engaged.
    pub redline_engagements: u64,
}

/// What one [`DurableDatabase::maintenance_tick`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceTick {
    /// No checkpoint was due.
    Idle,
    /// Another tick's checkpoint is still in flight (thread + embedded
    /// tick can overlap; the work is never duplicated).
    Busy,
    /// A failure backoff is in force; nothing was attempted.
    Backoff,
    /// A checkpoint at this `commit_ts` was written and the WAL
    /// truncated behind it.
    Checkpointed(u64),
    /// A checkpoint was due and failed; [`DurableDatabase::health`] is
    /// now [`Health::Degraded`] and a backoff is armed.
    Failed,
}

/// The embeddable form of the supervisor: a shareable closure that runs
/// one [`DurableDatabase::maintenance_tick`] and reports [`Health`].
/// Produced by [`DurableDatabase::maintenance_hook`]; mvcc-net's server
/// invokes one from its poll-loop tick.
pub type MaintenanceHook = Arc<dyn Fn() -> Health + Send + Sync>;

/// First failure backoff; doubles (with jitter) up to
/// [`MaintenancePolicy::max_backoff`].
const MAINT_INITIAL_BACKOFF: Duration = Duration::from_millis(10);

/// How long a maintenance checkpoint waits for a free session pid before
/// treating the attempt as a transient failure. Bounds how long a
/// [`MaintenanceHandle`] drop can block behind a pid-starved checkpoint.
const MAINT_ACQUIRE_TIMEOUT: Duration = Duration::from_millis(250);

/// Supervisor-internal state, behind its own mutex (never held across
/// checkpoint I/O).
struct MaintInner {
    health: Health,
    stats: MaintenanceStats,
    backoff_until: Option<Instant>,
    next_backoff: Duration,
    last_checkpoint_at: Instant,
    in_flight: bool,
    rng: u64,
}

impl MaintInner {
    /// xorshift64*; deterministic jitter, no external RNG dependency.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// An awaitable durability acknowledgement for one commit, returned by
/// [`DurableSession::write_acked`].
///
/// When the ack is created the commit is already *visible* (readers see
/// it) and *logged* (its record sits in the WAL's commit-ordered tail);
/// [`CommitAck::wait`] blocks until it is *durable* — covered by a group
/// fsync. Under [`GroupCommit::Serial`] (and `EveryN`/`Off`) the commit
/// is as durable as the policy makes it before `write_acked` even
/// returns, so `wait` is free.
///
/// The ack holds an `Arc` to the WAL, not a borrow of the session: it
/// may be stored, sent to another thread, or waited on after the session
/// is gone.
#[must_use = "a group commit is only durable once the ack is waited on"]
pub struct CommitAck {
    /// `None`: already as durable as the policy guarantees.
    wal: Option<Arc<Wal>>,
    seq: u64,
    /// Whether the waiter may lead the flush ([`GroupCommit::Leader`]) or
    /// should defer to the dedicated flusher ([`GroupCommit::Flusher`]).
    lead: bool,
    commit_ts: Option<u64>,
}

impl std::fmt::Debug for CommitAck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitAck")
            .field("seq", &self.seq)
            .field("lead", &self.lead)
            .field("commit_ts", &self.commit_ts)
            .field("durable", &self.is_durable())
            .finish()
    }
}

impl CommitAck {
    fn immediate(commit_ts: Option<u64>) -> CommitAck {
        CommitAck {
            wal: None,
            seq: 0,
            lead: false,
            commit_ts,
        }
    }

    /// The `commit_ts` this commit established (`None` under
    /// [`Durability::Off`], whose commits bypass the commit clock).
    pub fn commit_ts(&self) -> Option<u64> {
        self.commit_ts
    }

    /// Has a flush already covered this commit? (Non-blocking; `true` is
    /// stable.)
    pub fn is_durable(&self) -> bool {
        match &self.wal {
            None => true,
            Some(wal) => wal.durable_seq() >= self.seq,
        }
    }

    /// Block until this commit is durable. Under [`GroupCommit::Leader`]
    /// the caller may end up performing the group flush itself. `Err`
    /// means the flush failed *after* the commit became visible — the
    /// log is poisoned (see [`WalError::Poisoned`]) and the commit,
    /// while readable in memory, may not survive a crash.
    pub fn wait(&self) -> Result<(), DurableError> {
        match &self.wal {
            None => Ok(()),
            Some(wal) => {
                if self.lead {
                    wal.wait_durable(self.seq)?;
                } else {
                    wal.wait_durable_passive(self.seq)?;
                }
                Ok(())
            }
        }
    }
}

/// The durable commit clock, shared by all durable writers under one
/// mutex: the next batch's identifiers are assigned inside the critical
/// section, so `commit_ts` is strictly increasing along the WAL.
struct CommitClock {
    next_tx: u64,
    last_ts: u64,
}

/// A [`Database`] with a write-ahead log, checkpoints and crash recovery.
///
/// Create with [`DurableDatabase::recover`] (filesystem directory) or
/// [`DurableDatabase::recover_storage`] (any [`Storage`], e.g. the
/// fault-injection double) — recovery of an empty directory *is* the
/// constructor. Write through [`DurableDatabase::session`] handles;
/// anything read-only may also use the raw database underneath.
pub struct DurableDatabase<P: TreeParams, M: VersionMaintenance = PswfVm> {
    db: Database<P, M>,
    storage: Arc<dyn Storage>,
    /// `None` under [`Durability::Off`]: commits skip logging entirely.
    /// Shared ([`Arc`]) so [`CommitAck`]s and the flusher thread can
    /// outlive the borrow of a session.
    wal: Option<Arc<Wal>>,
    /// The *effective* group-commit policy ([`GroupCommit::Serial`]
    /// whenever durability is not [`Durability::Always`]).
    group: GroupCommit,
    _flusher: Option<FlusherHandle>,
    commit: Mutex<CommitClock>,
    report: RecoveryReport,
    maint: Mutex<MaintInner>,
}

/// The dedicated flusher thread of [`GroupCommit::Flusher`], joined on
/// drop (after a final flush of whatever is still pending).
struct FlusherHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl FlusherHandle {
    fn spawn(wal: Arc<Wal>, max_coalesce: Duration) -> FlusherHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        // The park interval bounds both shutdown latency and how stale an
        // empty-tail check can go; the coalescing window itself is the
        // sleep between "work observed" and "flush".
        let idle = max_coalesce.max(Duration::from_micros(100));
        let join = std::thread::Builder::new()
            .name("mvcc-wal-flusher".into())
            .spawn(move || loop {
                if stop2.load(Ordering::Acquire) {
                    let _ = wal.flush_pending();
                    return;
                }
                if wal.pending_batches() > 0 {
                    std::thread::sleep(max_coalesce);
                    // A poisoned log surfaces to the waiters themselves;
                    // the flusher just parks until shutdown.
                    if wal.flush_pending().is_err() {
                        while !stop2.load(Ordering::Acquire) {
                            std::thread::park_timeout(idle);
                        }
                        return;
                    }
                } else {
                    std::thread::park_timeout(idle);
                }
            })
            .expect("spawn wal flusher thread");
        FlusherHandle {
            stop,
            join: Some(join),
        }
    }
}

impl Drop for FlusherHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            join.thread().unpark();
            let _ = join.join();
        }
    }
}

fn decode_ops<P: TreeParams>(ops: &[WalOp]) -> Result<Vec<MapOp<P>>, DurableError>
where
    P::K: WalCodec,
    P::V: WalCodec,
{
    ops.iter()
        .map(|op| match op {
            WalOp::Put(k, v) => match (P::K::decode(k), P::V::decode(v)) {
                (Some(k), Some(v)) => Ok(MapOp::Insert(k, v)),
                _ => Err(DurableError::Corrupt {
                    context: "WAL put delta",
                }),
            },
            WalOp::Del(k) => P::K::decode(k)
                .map(MapOp::Remove)
                .ok_or(DurableError::Corrupt {
                    context: "WAL delete delta",
                }),
        })
        .collect()
}

fn encode_ops<P: TreeParams>(ops: &[MapOp<P>]) -> Vec<WalOp>
where
    P::K: WalCodec,
    P::V: WalCodec,
{
    ops.iter()
        .map(|op| match op {
            MapOp::Insert(k, v) => {
                let mut kb = Vec::new();
                let mut vb = Vec::new();
                k.encode(&mut kb);
                v.encode(&mut vb);
                WalOp::Put(kb, vb)
            }
            MapOp::Remove(k) => {
                let mut kb = Vec::new();
                k.encode(&mut kb);
                WalOp::Del(kb)
            }
        })
        .collect()
}

impl<P: TreeParams> DurableDatabase<P, PswfVm>
where
    P::K: WalCodec,
    P::V: WalCodec,
{
    /// Open-or-recover a durable database backed by the directory `path`
    /// (created if absent). An empty directory yields an empty database;
    /// otherwise the newest valid checkpoint is loaded and the WAL tail
    /// replayed — including after a crash, where a torn tail ends replay
    /// at the last intact record instead of failing.
    pub fn recover(
        path: impl AsRef<Path>,
        processes: usize,
        cfg: DurableConfig,
    ) -> Result<Self, DurableError> {
        let storage = DirStorage::new(path.as_ref()).map_err(|e| {
            DurableError::Wal(WalError::Io {
                op: "open",
                name: path.as_ref().display().to_string(),
                source: e,
            })
        })?;
        Self::recover_storage(Arc::new(storage), processes, cfg)
    }

    /// [`DurableDatabase::recover`] over an explicit [`Storage`] — the
    /// entry point the fault-injection tests drive with an in-memory
    /// crashed image.
    pub fn recover_storage(
        storage: Arc<dyn Storage>,
        processes: usize,
        cfg: DurableConfig,
    ) -> Result<Self, DurableError> {
        let (wal, replay) = Wal::open(Arc::clone(&storage), cfg.wal_config())?;
        let ckpt = checkpoint::load_latest(&*storage)?;
        // A checkpointer that crashed before its publishing rename leaves
        // a `ckpt-*.tmp`; sweep it here so a crash-then-recover sequence
        // cannot leak tmp files while the disk stays too sick for the
        // next successful checkpoint to prune them.
        let swept_tmp = checkpoint::sweep_stale_tmp(&*storage)?;

        let db: Database<P, PswfVm> = Database::new(processes);
        let mut report = RecoveryReport {
            torn: replay.torn.clone(),
            dropped_segments: replay.dropped_segments,
            swept_tmp,
            ..RecoveryReport::default()
        };
        let mut last_ts = 0u64;
        let mut next_tx = 1u64;
        {
            let mut session = db.session()?;
            if let Some(c) = &ckpt {
                last_ts = c.ts;
                // The checkpoint carries the tx-id high-water mark, so
                // tx_id stays monotone across recoveries even when
                // truncation has emptied the WAL tail.
                next_tx = next_tx.max(c.next_tx);
                report.checkpoint_ts = Some(c.ts);
                report.checkpoint_entries = c.entries.len();
                let mut pairs = Vec::with_capacity(c.entries.len());
                for (k, v) in &c.entries {
                    match (P::K::decode(k), P::V::decode(v)) {
                        (Some(k), Some(v)) => pairs.push((k, v)),
                        _ => {
                            return Err(DurableError::Corrupt {
                                context: "checkpoint entry",
                            })
                        }
                    }
                }
                session.write_raw(|f, base| {
                    // The database is freshly constructed: `base` is the
                    // nil root, so building the image directly is safe.
                    debug_assert!(base.is_none(), "recovery must start empty");
                    (f.build_sorted(&pairs), ())
                });
            }
            for b in &replay.batches {
                // Even checkpoint-covered (skipped) batches advance the
                // tx-id high-water mark.
                next_tx = next_tx.max(b.tx_id + 1);
                if b.commit_ts <= last_ts {
                    report.skipped += 1;
                    continue;
                }
                let ops = decode_ops::<P>(&b.ops)?;
                session.write_raw(|f, base| {
                    let mut root = base;
                    for op in &ops {
                        match op {
                            MapOp::Insert(k, v) => {
                                root = f.insert(root, k.clone(), v.clone());
                            }
                            MapOp::Remove(k) => root = f.remove(root, k).0,
                        }
                    }
                    (root, ())
                });
                report.replayed += 1;
                last_ts = b.commit_ts;
            }
        }

        // Group commit only applies where every commit would otherwise
        // pay its own fsync; EveryN and Off keep the serial path.
        let group = match (cfg.durability, cfg.group_commit) {
            (Durability::Always, g) => g,
            _ => GroupCommit::Serial,
        };
        let wal = match cfg.durability {
            Durability::Off => None,
            _ => Some(Arc::new(wal)),
        };
        let _flusher = match (&wal, group) {
            (Some(wal), GroupCommit::Flusher { max_coalesce }) => {
                Some(FlusherHandle::spawn(Arc::clone(wal), max_coalesce))
            }
            _ => None,
        };
        let maint = MaintInner {
            health: Health::Ok,
            stats: MaintenanceStats {
                // The recovered checkpoint counts as the staleness
                // baseline: nothing new to cover means nothing to write.
                last_checkpoint_ts: report.checkpoint_ts.unwrap_or(0),
                ..MaintenanceStats::default()
            },
            backoff_until: None,
            next_backoff: MAINT_INITIAL_BACKOFF,
            last_checkpoint_at: Instant::now(),
            in_flight: false,
            rng: 0x9E37_79B9_7F4A_7C15,
        };
        Ok(DurableDatabase {
            db,
            storage,
            wal,
            group,
            _flusher,
            commit: Mutex::new(CommitClock { next_tx, last_ts }),
            report,
            maint: Mutex::new(maint),
        })
    }
}

impl<P: TreeParams, M: VersionMaintenance> DurableDatabase<P, M> {
    /// What the recovery that opened this database found.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.report
    }

    /// The in-memory database underneath. Reads, pools and diagnostics
    /// are fine; a **write** through it bypasses the WAL and breaks the
    /// durable image (see [`DurableError::RacedByRawWriter`]).
    pub fn database(&self) -> &Database<P, M> {
        &self.db
    }

    /// The storage namespace holding the WAL segments and checkpoints.
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    /// `commit_ts` of the most recent durable commit (0 = none yet).
    /// Under [`Durability::Off`] this advances per *checkpoint*, not per
    /// commit (see [`DurableDatabase::checkpoint`]).
    pub fn last_commit_ts(&self) -> u64 {
        self.clock().last_ts
    }

    /// Is write-ahead logging active (i.e. durability not
    /// [`Durability::Off`])?
    pub fn durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Total bytes currently held by WAL segment files — sealed *and*
    /// active, so a maintenance threshold sees the true disk footprint.
    /// Grows with commits, shrinks when a checkpoint truncates.
    ///
    /// With logging on this is the live [`Wal`]'s accounting. Under
    /// [`Durability::Off`] there is no live log, but segments from an
    /// earlier durable run may still sit on disk until a checkpoint
    /// retires them; those are counted by scanning the storage listing.
    pub fn wal_bytes(&self) -> u64 {
        match &self.wal {
            Some(w) => w.bytes(),
            None => {
                let Ok(names) = self.storage.list() else {
                    return 0;
                };
                names
                    .iter()
                    .filter(|n| is_segment_name(n))
                    .filter_map(|n| self.storage.len(n).ok())
                    .sum()
            }
        }
    }

    /// Maintenance health: [`Health::Ok`], or [`Health::Degraded`] while
    /// the supervisor's checkpoints keep failing. Degradation stalls log
    /// reclamation only — commits keep their WAL-before-visible order
    /// and keep flowing (at disk speed past the policy red line).
    pub fn health(&self) -> Health {
        self.maint().health.clone()
    }

    /// Counters of the maintenance supervisor (all zero until the first
    /// [`DurableDatabase::maintenance_tick`]).
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        self.maint().stats
    }

    /// The effective [`GroupCommit`] policy (always
    /// [`GroupCommit::Serial`] unless durability is
    /// [`Durability::Always`]).
    pub fn group_commit(&self) -> GroupCommit {
        self.group
    }

    /// Group-commit counters: how many flushes ran, how many commits
    /// they coalesced, the largest group, total flush time, and how many
    /// commits are enqueued but not yet flushed right now. All zero
    /// under [`GroupCommit::Serial`] (and with logging off).
    pub fn durable_stats(&self) -> DurableStats {
        match &self.wal {
            Some(wal) => {
                let g = wal.group_stats();
                DurableStats {
                    groups_flushed: g.groups,
                    batches_flushed: g.batches,
                    max_group: g.max_group,
                    flush_ns_total: g.flush_ns,
                    max_flush_ns: g.max_flush_ns,
                    slo_misses: g.slo_misses,
                    blocked_enqueues: g.blocked_enqueues,
                    blocked_ns: g.blocked_ns,
                    pending_batches: wal.pending_batches() as u64,
                }
            }
            None => DurableStats::default(),
        }
    }

    /// Force an fsync of the WAL (flushes the pending group-commit tail
    /// and any pending [`Durability::EveryN`] group). A no-op with
    /// logging off.
    pub fn sync(&self) -> Result<(), DurableError> {
        match &self.wal {
            Some(wal) => wal.sync().map_err(DurableError::from),
            None => Ok(()),
        }
    }

    fn clock(&self) -> MutexGuard<'_, CommitClock> {
        self.commit.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn maint(&self) -> MutexGuard<'_, MaintInner> {
        self.maint.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Lease a durable session (a [`Session`] whose write transactions go
    /// through the WAL). `Err(Exhausted)` when all pids are out.
    pub fn session(&self) -> Result<DurableSession<'_, P, M>, DurableError> {
        Ok(DurableSession {
            inner: self.db.session()?,
            dd: self,
            ops: Vec::new(),
        })
    }
}

impl<P: TreeParams, M: VersionMaintenance> DurableDatabase<P, M>
where
    P::K: WalCodec,
    P::V: WalCodec,
{
    /// Write a snapshot-consistent checkpoint and retire the WAL segments
    /// it covers. Returns the checkpoint's `commit_ts`.
    ///
    /// The snapshot is pinned under a brief clock lock (so its contents
    /// correspond exactly to one `commit_ts`), then walked while writers
    /// proceed — precise GC keeps the pinned version alive at zero cost
    /// to them. Needs a free pid for the reading session; parks FIFO
    /// until one frees.
    ///
    /// Under [`Durability::Off`] commits bypass the commit clock, so the
    /// clock is advanced *here* instead: each checkpoint gets a fresh,
    /// strictly larger `commit_ts`, which keeps successive checkpoint
    /// file names distinct (the newest-valid fallback needs the previous
    /// image to still exist) — `last_commit_ts` then counts checkpoints
    /// rather than commits.
    pub fn checkpoint(&self) -> Result<u64, DurableError> {
        self.checkpoint_with_keep(checkpoint::KEEP_CHECKPOINTS)
    }

    /// [`DurableDatabase::checkpoint`] with an explicit retention depth:
    /// after the new image publishes, all but the newest `keep`
    /// checkpoints are pruned (`keep` clamps to at least 1).
    pub fn checkpoint_with_keep(&self, keep: usize) -> Result<u64, DurableError> {
        let session = self.db.pool().acquire();
        self.checkpoint_session(session, keep)
    }

    fn checkpoint_session(
        &self,
        mut session: Session<'_, P, M>,
        keep: usize,
    ) -> Result<u64, DurableError> {
        // Flush the pending group tail first so the image the checkpoint
        // pins (which may include visible-but-unflushed group commits) is
        // never *ahead* of the durable log it truncates.
        if let Some(wal) = &self.wal {
            wal.flush_pending()?;
        }
        // Pin the snapshot at a known clock value: no durable commit can
        // land between reading `last_ts` and acquiring the version.
        let mut clock = self.clock();
        if self.wal.is_none() {
            clock.last_ts += 1;
        }
        let ts = clock.last_ts;
        let next_tx = clock.next_tx;
        let guard = session.begin_read();
        drop(clock);

        // Writers proceed from here; the walk goes at its own pace.
        let mut kb = Vec::new();
        let mut vb = Vec::new();
        checkpoint::write_checkpoint_keep(&*self.storage, ts, next_tx, keep, |w| {
            guard.snapshot().for_each(|k, v| {
                kb.clear();
                vb.clear();
                k.encode(&mut kb);
                v.encode(&mut vb);
                w.entry(&kb, &vb);
            });
            Ok(())
        })?;
        drop(guard);

        match &self.wal {
            Some(wal) => {
                wal.truncate_before(ts)?;
            }
            None => {
                // No live log, but segments from an earlier durable run
                // may still sit on disk. Recovery replayed every one of
                // their batches into the image just published, so they
                // are fully covered: retire them all.
                let names = self.storage.list().map_err(|e| {
                    DurableError::Wal(WalError::Io {
                        op: "list",
                        name: "<storage>".to_string(),
                        source: e,
                    })
                })?;
                for name in names.into_iter().filter(|n| is_segment_name(n)) {
                    self.storage.remove(&name).map_err(|e| {
                        DurableError::Wal(WalError::Io {
                            op: "remove",
                            name,
                            source: e,
                        })
                    })?;
                }
            }
        }
        Ok(ts)
    }

    /// Run one step of the durability maintenance supervisor: decide
    /// whether a checkpoint is due under `policy`, run it off the commit
    /// path if so, and fold the outcome into [`DurableDatabase::health`]
    /// / [`DurableDatabase::maintenance_stats`].
    ///
    /// Embeddable: call it from any periodic loop (mvcc-net's server
    /// invokes it from its ~1ms poll tick via
    /// [`DurableDatabase::maintenance_hook`]) or let
    /// [`DurableDatabase::start_maintenance`] drive it from a dedicated
    /// thread — concurrent ticks coordinate through an in-flight guard,
    /// so the checkpoint work is never duplicated.
    ///
    /// **Degrades instead of dying**: a failed checkpoint records
    /// [`Health::Degraded`], arms a jittered exponential backoff (capped
    /// at [`MaintenancePolicy::max_backoff`]) and returns
    /// [`MaintenanceTick::Failed`] — it never panics and never blocks
    /// commits. Past [`MaintenancePolicy::redline_bytes`] the WAL's
    /// group tail is narrowed to one pending record, converting
    /// unbounded disk growth into the existing bounded-queue
    /// backpressure.
    pub fn maintenance_tick(&self, policy: &MaintenancePolicy) -> MaintenanceTick {
        let now = Instant::now();
        let wal_bytes = self.wal_bytes();
        {
            let mut m = self.maint();
            m.stats.ticks += 1;
            m.stats.wal_bytes = wal_bytes;

            // The red line engages and clears on every tick, independent
            // of checkpoint cadence, backoff, or in-flight work.
            if policy.redline_bytes > 0 {
                if let Some(wal) = &self.wal {
                    let over = wal_bytes >= policy.redline_bytes;
                    let was = wal.set_redline(over);
                    if over && !was {
                        m.stats.redline_engagements += 1;
                    }
                    m.stats.redline_engaged = over;
                }
            }

            if m.in_flight {
                return MaintenanceTick::Busy;
            }
            if let Some(until) = m.backoff_until {
                if now < until {
                    m.stats.skipped_backoff += 1;
                    return MaintenanceTick::Backoff;
                }
            }
            let bytes_due =
                policy.wal_bytes_threshold > 0 && wal_bytes >= policy.wal_bytes_threshold;
            let time_due = policy
                .interval
                .is_some_and(|i| now.duration_since(m.last_checkpoint_at) >= i);
            if !bytes_due && !time_due {
                return MaintenanceTick::Idle;
            }
            // Staleness guard (durable mode): when no commit landed since
            // the last checkpoint, a new image would be identical and the
            // surviving bytes (the active segment) cannot shrink — skip
            // rather than rewrite forever. Off-mode checkpoints advance
            // the clock themselves, so they always proceed.
            if self.wal.is_some() && self.last_commit_ts() == m.stats.last_checkpoint_ts {
                return MaintenanceTick::Idle;
            }
            m.in_flight = true;
        }

        // The checkpoint itself runs outside the maintenance lock, so
        // health/stats stay readable (and other ticks return `Busy`)
        // while the snapshot walk does I/O. A pid-starved pool is a
        // transient failure, not a hang: bounded acquire.
        let res = match self.db.pool().acquire_timeout(MAINT_ACQUIRE_TIMEOUT) {
            Ok(session) => self.checkpoint_session(session, policy.min_keep_checkpoints),
            Err(_) => Err(DurableError::Session(SessionError::Exhausted {
                processes: self.db.processes(),
            })),
        };

        let mut m = self.maint();
        m.in_flight = false;
        match res {
            Ok(ts) => {
                m.stats.checkpoints += 1;
                m.stats.last_checkpoint_ts = ts;
                m.stats.wal_bytes = self.wal_bytes();
                m.last_checkpoint_at = Instant::now();
                m.backoff_until = None;
                m.next_backoff = MAINT_INITIAL_BACKOFF;
                m.health = Health::Ok;
                MaintenanceTick::Checkpointed(ts)
            }
            Err(e) => {
                m.stats.failures += 1;
                let (since, retries) = match &m.health {
                    Health::Degraded { since, retries, .. } => (*since, retries + 1),
                    Health::Ok => (now, 1),
                };
                m.health = Health::Degraded {
                    reason: e.to_string(),
                    since,
                    retries,
                };
                // Jittered exponential backoff: wait somewhere in
                // [base/2, base], then double the base up to the cap.
                let base = m.next_backoff.min(policy.max_backoff);
                let half = base / 2;
                let jitter_ns = (half.as_nanos() as u64).saturating_add(1);
                let jitter = Duration::from_nanos(m.next_rand() % jitter_ns);
                m.backoff_until = Some(Instant::now() + half + jitter);
                m.next_backoff = (base * 2).min(policy.max_backoff);
                MaintenanceTick::Failed
            }
        }
    }
}

impl<P, M> DurableDatabase<P, M>
where
    P: TreeParams + 'static,
    M: VersionMaintenance + 'static,
    P::K: WalCodec,
    P::V: WalCodec,
{
    /// Start the durability maintenance supervisor on a dedicated
    /// background thread: [`DurableDatabase::maintenance_tick`] runs
    /// every couple of milliseconds (the policy's thresholds decide when
    /// a tick actually checkpoints). Returns a [`MaintenanceHandle`]
    /// that stops and joins the thread on drop — promptly even
    /// mid-backoff, and waiting out (never interrupting) a checkpoint
    /// already in flight, so dropping the handle can never tear an image
    /// or poison the WAL.
    pub fn start_maintenance(self: &Arc<Self>, policy: MaintenancePolicy) -> MaintenanceHandle
    where
        Self: Send + Sync,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let db = Arc::clone(self);
        const NAP: Duration = Duration::from_millis(2);
        let join = std::thread::Builder::new()
            .name("mvcc-maintenance".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    let _ = db.maintenance_tick(&policy);
                    std::thread::park_timeout(NAP);
                }
            })
            .expect("spawn maintenance thread");
        MaintenanceHandle {
            stop,
            join: Some(join),
        }
    }

    /// The supervisor as an embeddable closure: each call runs one
    /// [`DurableDatabase::maintenance_tick`] under `policy` and returns
    /// the current [`Health`]. Hand it to a caller-owned periodic loop —
    /// mvcc-net's `Server::set_maintenance` drives one from its poll
    /// tick — instead of (or alongside) the dedicated thread; the
    /// in-flight guard keeps concurrent drivers from duplicating work.
    pub fn maintenance_hook(self: &Arc<Self>, policy: MaintenancePolicy) -> MaintenanceHook
    where
        Self: Send + Sync,
    {
        let db = Arc::clone(self);
        Arc::new(move || {
            let _ = db.maintenance_tick(&policy);
            db.health()
        })
    }
}

/// The background supervisor thread of
/// [`DurableDatabase::start_maintenance`], stopped and joined on drop
/// (RAII, mirroring the WAL flusher thread).
pub struct MaintenanceHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl MaintenanceHandle {
    /// Stop and join the supervisor thread explicitly (drop does the
    /// same). Returns once the thread is gone; a checkpoint already in
    /// flight completes first.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            join.thread().unpark();
            let _ = join.join();
        }
    }
}

impl Drop for MaintenanceHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

impl std::fmt::Debug for MaintenanceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceHandle")
            .field("stopped", &self.stop.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

/// A [`Session`] whose write transactions commit through the write-ahead
/// log. Reads are the ordinary delay-free snapshot reads.
///
/// Obtained from [`DurableDatabase::session`]; like `Session` it is
/// `Send + !Sync` and every transaction takes `&mut self`.
pub struct DurableSession<'db, P: TreeParams, M: VersionMaintenance = PswfVm> {
    inner: Session<'db, P, M>,
    dd: &'db DurableDatabase<P, M>,
    /// Reusable delta-log buffer for the commit path.
    ops: Vec<MapOp<P>>,
}

impl<'db, P: TreeParams, M: VersionMaintenance> DurableSession<'db, P, M> {
    /// The leased process id.
    pub fn pid(&self) -> usize {
        self.inner.pid()
    }

    /// The durable database this session writes to.
    pub fn durable_database(&self) -> &'db DurableDatabase<P, M> {
        self.dd
    }

    /// This session's transaction counters (see [`Session::stats`]).
    pub fn stats(&self) -> crate::TxnStats {
        self.inner.stats()
    }

    /// Run a read-only transaction — identical to [`Session::read`]:
    /// durability adds nothing to the read path.
    pub fn read<R>(&mut self, f: impl FnOnce(&crate::Snapshot<'_, P>) -> R) -> R {
        self.inner.read(f)
    }

    /// Begin an RAII read transaction (see [`Session::begin_read`]).
    pub fn begin_read(&mut self) -> SessionReadGuard<'_, 'db, P, M> {
        self.inner.begin_read()
    }

    /// Point lookup as a read transaction.
    pub fn get(&mut self, key: &P::K) -> Option<P::V> {
        self.inner.get(key)
    }

    /// Entry count of the current version.
    pub fn len(&mut self) -> usize {
        self.inner.len()
    }

    /// Is the current version empty?
    pub fn is_empty(&mut self) -> bool {
        self.inner.is_empty()
    }
}

impl<'db, P: TreeParams, M: VersionMaintenance> DurableSession<'db, P, M>
where
    P::K: WalCodec,
    P::V: WalCodec,
{
    /// Run a **durable write transaction**.
    ///
    /// User code sees a [`DurableTxn`] — the [`WriteTxn`] surface, with
    /// every delta recorded. On return the batch is in the WAL *before*
    /// the new version becomes visible, and `Ok` means the commit is as
    /// durable as the [`Durability`] policy guarantees: under
    /// [`GroupCommit::Serial`] the frame was appended and fsynced inside
    /// the commit critical section; under `Leader`/`Flusher` the record
    /// entered the WAL's commit-ordered tail inside the critical section
    /// and this call then waited (outside it) for the group fsync —
    /// equivalent to [`DurableSession::write_acked`] followed by an
    /// immediate [`CommitAck::wait`].
    ///
    /// On a WAL *append* error the in-memory database is untouched and
    /// the error is surfaced — the transaction did not happen. A group
    /// *flush* error is different: the commit is already visible but its
    /// durability is unknown, the log is poisoned, and every coalesced
    /// waiter gets [`WalError::Poisoned`] (see [`CommitAck::wait`]).
    ///
    /// Under [`Durability::Off`] this is exactly [`Session::write`]
    /// (lock-free, retrying, nothing logged), wrapped in `Ok`.
    ///
    /// `f` may run more than once only in the `Off` mode (retry on a
    /// lost race); with logging on, durable writers serialize and `f`
    /// runs exactly once.
    pub fn write<R>(
        &mut self,
        f: impl FnMut(&mut DurableTxn<'_, '_, P>) -> R,
    ) -> Result<R, DurableError> {
        let (result, ack) = self.write_acked(f)?;
        ack.wait()?;
        Ok(result)
    }

    /// [`DurableSession::write`], split at the durability wait: returns
    /// as soon as the commit is **visible and logged**, handing back a
    /// [`CommitAck`] to await (or poll) the group fsync.
    ///
    /// This is the producer side of group commit: a committer that does
    /// other work between `write_acked` and [`CommitAck::wait`] overlaps
    /// that work with its group's flush, and commits that land while a
    /// flush is in flight coalesce into the next one. With
    /// [`GroupCommit::Serial`] (or `EveryN`/`Off`) the returned ack is
    /// already satisfied and `wait` is free.
    pub fn write_acked<R>(
        &mut self,
        mut f: impl FnMut(&mut DurableTxn<'_, '_, P>) -> R,
    ) -> Result<(R, CommitAck), DurableError> {
        let dd = self.dd;
        let Some(wal) = &dd.wal else {
            // Durability::Off: the unmodified in-memory commit path.
            let result = self
                .inner
                .write(|txn| f(&mut DurableTxn { txn, log: None }));
            return Ok((result, CommitAck::immediate(None)));
        };
        let grouped = !matches!(dd.group, GroupCommit::Serial);

        let db = self.inner.database();
        self.ops.clear();

        // Serialize durable writers: commit_ts assignment, WAL publish
        // and `set` form one critical section, so the log order is the
        // commit order and `set` cannot lose to another *durable* writer.
        // The group fsync is NOT in here — that is the whole point.
        let mut clock = dd.clock();
        let _pin = db.forest().arena().pin(self.inner.alloc_ctx());
        let pid = self.inner.pid();
        let base = decode(db.vmo.acquire(pid));
        db.forest().retain(base);
        let mut txn = WriteTxn::new(db.forest(), base);
        let result = f(&mut DurableTxn {
            txn: &mut txn,
            log: Some(&mut self.ops),
        });
        let new_root = txn.root();

        // Publish to the log BEFORE the version becomes visible: the WAL
        // record is the commit point. Serial appends (and fsyncs) here;
        // grouped mode enqueues on the commit-ordered tail and defers
        // the fsync to the group flush.
        let batch = WalBatch {
            tx_id: clock.next_tx,
            commit_ts: clock.last_ts + 1,
            snapshot_ts: clock.last_ts,
            ops: encode_ops::<P>(&self.ops),
        };
        let publish = if grouped {
            wal.enqueue(&batch).map(Some)
        } else {
            wal.append(&batch).map(|()| None)
        };
        let seq = match publish {
            Ok(seq) => seq,
            Err(e) => {
                // Nothing entered the log (a failed serial append rolls
                // its frame back; a refused enqueue never queued):
                // nothing visible, nothing the next recovery would
                // replay as acked. Release the speculative version and
                // leave the database as it was; `commit_ts` is safe to
                // reuse because the failed record is off the log.
                db.forest().release(new_root);
                db.finish_txn(pid, &mut self.inner.released);
                self.inner.aborts += 1;
                return Err(e.into());
            }
        };
        // The batch is in the log; its identifiers are spent even if the
        // `set` below loses to a contract-violating raw writer.
        clock.next_tx += 1;
        clock.last_ts = batch.commit_ts;

        let ok = db.vmo.set(pid, encode(new_root));
        db.finish_txn(pid, &mut self.inner.released);
        if ok {
            self.inner.commits += 1;
            let ack = match seq {
                Some(seq) => CommitAck {
                    wal: Some(Arc::clone(wal)),
                    seq,
                    lead: !matches!(dd.group, GroupCommit::Flusher { .. }),
                    commit_ts: Some(batch.commit_ts),
                },
                None => CommitAck::immediate(Some(batch.commit_ts)),
            };
            Ok((result, ack))
        } else {
            db.forest().release(new_root);
            self.inner.aborts += 1;
            Err(DurableError::RacedByRawWriter)
        }
    }

    /// Durably insert one entry.
    pub fn insert(&mut self, key: P::K, value: P::V) -> Result<(), DurableError> {
        self.write(move |txn| txn.insert(key.clone(), value.clone()))
    }

    /// Durably remove one key; returns the removed value.
    pub fn remove(&mut self, key: &P::K) -> Result<Option<P::V>, DurableError> {
        self.write(|txn| txn.remove(key))
    }

    /// Durably remove every key in the inclusive range `[lo, hi]` as one
    /// atomic commit.
    pub fn remove_range(&mut self, lo: &P::K, hi: &P::K) -> Result<(), DurableError> {
        self.write(|txn| txn.remove_range(lo, hi))
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for DurableSession<'_, P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSession")
            .field("pid", &self.inner.pid())
            .field("durable", &self.dd.durable())
            .finish_non_exhaustive()
    }
}

/// The mutable view a durable write transaction receives: the
/// [`WriteTxn`] surface, with every delta recorded for the WAL. There
/// are deliberately no raw-root escape hatches — an unrecorded tree
/// mutation could not be replayed.
pub struct DurableTxn<'a, 't, P: TreeParams> {
    txn: &'a mut WriteTxn<'t, P>,
    /// `None` under [`Durability::Off`]: nothing is recorded.
    log: Option<&'a mut Vec<MapOp<P>>>,
}

impl<P: TreeParams> DurableTxn<'_, '_, P> {
    fn record(&mut self, op: MapOp<P>) {
        if let Some(log) = self.log.as_deref_mut() {
            log.push(op);
        }
    }

    /// Insert or overwrite one entry.
    pub fn insert(&mut self, key: P::K, value: P::V) {
        self.record(MapOp::Insert(key.clone(), value.clone()));
        self.txn.insert(key, value);
    }

    /// Remove one key; returns the removed value.
    pub fn remove(&mut self, key: &P::K) -> Option<P::V> {
        let removed = self.txn.remove(key);
        if removed.is_some() {
            self.record(MapOp::Remove(key.clone()));
        }
        removed
    }

    /// Remove every key in the inclusive range `[lo, hi]`.
    pub fn remove_range(&mut self, lo: &P::K, hi: &P::K) {
        if self.log.is_some() {
            let mut doomed = Vec::new();
            self.txn
                .forest()
                .range_for_each(self.txn.root(), lo, hi, &mut |k: &P::K, _: &P::V| {
                    doomed.push(k.clone())
                });
            for k in doomed {
                self.record(MapOp::Remove(k));
            }
        }
        self.txn.remove_range(lo, hi);
    }

    /// Apply a whole batch of insertions (parallel `multi_insert`);
    /// duplicates merge with `combine(old, new)`. The *merged* values are
    /// what the WAL records, so replay needs no combine function.
    pub fn multi_insert(
        &mut self,
        batch: Vec<(P::K, P::V)>,
        combine: impl Fn(&P::V, &P::V) -> P::V + Sync,
    ) {
        if self.log.is_none() {
            self.txn.multi_insert(batch, combine);
            return;
        }
        let mut keys: Vec<P::K> = batch.iter().map(|(k, _)| k.clone()).collect();
        keys.sort();
        keys.dedup();
        self.txn.multi_insert(batch, combine);
        for k in keys {
            let v = self
                .txn
                .get(&k)
                .expect("multi_insert key present in working version")
                .clone();
            self.record(MapOp::Insert(k, v));
        }
    }

    /// Remove a whole batch of keys (parallel `multi_remove`).
    pub fn multi_remove(&mut self, keys: Vec<P::K>) {
        if self.log.is_some() {
            for k in &keys {
                self.record(MapOp::Remove(k.clone()));
            }
        }
        self.txn.multi_remove(keys);
    }

    // ---- queries on the working root (see own writes) ----

    /// Look up a key in the working version.
    pub fn get(&self, key: &P::K) -> Option<&P::V> {
        self.txn.get(key)
    }

    /// Does the working version contain `key`?
    pub fn contains(&self, key: &P::K) -> bool {
        self.txn.contains(key)
    }

    /// Entry count of the working version.
    pub fn len(&self) -> usize {
        self.txn.len()
    }

    /// Is the working version empty?
    pub fn is_empty(&self) -> bool {
        self.txn.is_empty()
    }

    /// Monoid fold over the inclusive key range (O(log n)).
    pub fn aug_range(&self, lo: &P::K, hi: &P::K) -> P::Aug {
        self.txn.aug_range(lo, hi)
    }

    /// Fold over the whole working version.
    pub fn aug_total(&self) -> P::Aug {
        self.txn.aug_total()
    }

    /// Smallest entry of the working version.
    pub fn min(&self) -> Option<(&P::K, &P::V)> {
        self.txn.min()
    }

    /// Largest entry of the working version.
    pub fn max(&self) -> Option<(&P::K, &P::V)> {
        self.txn.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_ftree::U64Map;
    use mvcc_wal::FaultStorage;

    fn open(storage: &FaultStorage, durability: Durability) -> DurableDatabase<U64Map> {
        DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig {
                durability,
                ..DurableConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn commits_survive_reopen() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            let mut s = db.session().unwrap();
            s.insert(1, 10).unwrap();
            s.insert(2, 20).unwrap();
            assert_eq!(s.remove(&1).unwrap(), Some(10));
            s.write(|txn| {
                txn.insert(3, 30);
                txn.insert(4, 40);
            })
            .unwrap();
            assert_eq!(db.last_commit_ts(), 4);
        }
        let db = open(&storage, Durability::Always);
        assert_eq!(db.recovery().replayed, 4);
        assert_eq!(db.last_commit_ts(), 4);
        let mut s = db.session().unwrap();
        assert_eq!(s.get(&1), None);
        assert_eq!(s.get(&2), Some(20));
        assert_eq!(s.get(&3), Some(30));
        assert_eq!(s.get(&4), Some(40));
    }

    #[test]
    fn range_and_bulk_deltas_replay() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            let mut s = db.session().unwrap();
            s.write(|txn| {
                txn.multi_insert((0..50u64).map(|k| (k, k)).collect(), |_o, n| *n);
            })
            .unwrap();
            s.remove_range(&10, &39).unwrap();
            s.write(|txn| txn.multi_remove(vec![0, 1, 2])).unwrap();
        }
        let db = open(&storage, Durability::Always);
        let mut s = db.session().unwrap();
        assert_eq!(s.len(), 17);
        assert_eq!(s.get(&5), Some(5));
        assert_eq!(s.get(&10), None);
        assert_eq!(s.get(&40), Some(40));
        assert_eq!(s.get(&0), None);
    }

    #[test]
    fn merged_values_are_logged_not_the_raw_batch() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            let mut s = db.session().unwrap();
            s.insert(7, 100).unwrap();
            // Sum-combine with the existing value and an in-batch dup:
            // replay must see 100 + 1 + 2 = 103 without the combine fn.
            s.write(|txn| {
                txn.multi_insert(vec![(7, 1), (7, 2)], |old, new| old + new);
            })
            .unwrap();
            assert_eq!(s.get(&7), Some(103));
        }
        let db = open(&storage, Durability::Always);
        assert_eq!(db.session().unwrap().get(&7), Some(103));
    }

    #[test]
    fn checkpoint_truncates_and_recovery_prefers_it() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            let mut s = db.session().unwrap();
            for k in 0..20u64 {
                s.insert(k, k * 3).unwrap();
            }
            let ts = db.checkpoint().unwrap();
            assert_eq!(ts, 20);
            s.insert(100, 1).unwrap(); // WAL tail beyond the checkpoint
        }
        let db = open(&storage, Durability::Always);
        let report = db.recovery();
        assert_eq!(report.checkpoint_ts, Some(20));
        assert_eq!(report.checkpoint_entries, 20);
        assert_eq!(report.replayed, 1, "only the tail replays");
        let mut s = db.session().unwrap();
        assert_eq!(s.len(), 21);
        assert_eq!(s.get(&100), Some(1));
    }

    #[test]
    fn durability_off_persists_nothing_but_checkpoints() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Off);
            assert!(!db.durable());
            let mut s = db.session().unwrap();
            s.insert(1, 1).unwrap();
            db.checkpoint().unwrap();
            s.insert(2, 2).unwrap(); // after the checkpoint: lost on crash
            assert_eq!(db.wal_bytes(), 0);
        }
        let db = open(&storage, Durability::Off);
        let mut s = db.session().unwrap();
        assert_eq!(s.get(&1), Some(1), "checkpointed commit survives");
        assert_eq!(s.get(&2), None, "post-checkpoint Off commit is lost");
    }

    #[test]
    fn failed_fsync_does_not_resurrect_the_aborted_commit() {
        use mvcc_wal::FaultPlan;
        // Commit A's fsync fails after its frame was appended: the log
        // must roll the frame back so commit B can take the same
        // commit_ts. Recovery must yield exactly B — the old bug replayed
        // A and skipped B.
        let storage = FaultStorage::new(
            FaultPlan {
                transient_sync_failures: 1,
                ..FaultPlan::default()
            },
            29,
        );
        let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig::default(),
        )
        .unwrap();
        let mut s = db.session().unwrap();
        let err = s.insert(1, 10).expect_err("first commit's fsync fails");
        assert!(matches!(err, DurableError::Wal(WalError::Io { .. })));
        s.insert(2, 20).unwrap();
        assert_eq!(db.last_commit_ts(), 1);
        drop(s);
        drop(db);

        let db = open(&storage, Durability::Always);
        assert_eq!(db.recovery().replayed, 1);
        let mut s = db.session().unwrap();
        assert_eq!(s.get(&1), None, "the failed commit must not come back");
        assert_eq!(s.get(&2), Some(20), "the acked commit must survive");
    }

    #[test]
    fn off_checkpoints_rotate_names_and_keep_fallback_redundancy() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Off);
            let mut s = db.session().unwrap();
            s.insert(1, 1).unwrap();
            let ts1 = db.checkpoint().unwrap();
            s.insert(2, 2).unwrap();
            let ts2 = db.checkpoint().unwrap();
            assert!(ts2 > ts1, "Off checkpoints must get distinct names");
            // Both published images exist: KEEP_CHECKPOINTS redundancy.
            let cks: Vec<String> = storage
                .list()
                .unwrap()
                .into_iter()
                .filter(|n| n.ends_with(".ck"))
                .collect();
            assert_eq!(cks.len(), 2, "previous checkpoint destroyed: {cks:?}");
        }
        // Corrupt the newest: recovery falls back to the previous image.
        let newest = storage
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| n.ends_with(".ck"))
            .max()
            .unwrap();
        storage.truncate(&newest, 10).unwrap();
        let db = open(&storage, Durability::Off);
        let mut s = db.session().unwrap();
        assert_eq!(s.get(&1), Some(1), "fallback image restores commit 1");
        assert_eq!(s.get(&2), None, "newest (corrupt) image is not used");
    }

    #[test]
    fn tx_ids_stay_monotone_across_checkpoint_recovery() {
        // Tiny segments so every frame seals and the checkpoint leaves an
        // empty WAL tail — next_tx must then come from the checkpoint.
        let cfg = || DurableConfig {
            segment_bytes: 1,
            ..DurableConfig::default()
        };
        let storage = FaultStorage::unfaulted();
        {
            let db: DurableDatabase<U64Map> =
                DurableDatabase::recover_storage(Arc::new(storage.clone()), 2, cfg()).unwrap();
            let mut s = db.session().unwrap();
            for k in 0..3u64 {
                s.insert(k, k).unwrap(); // tx_id 1..=3
            }
            db.checkpoint().unwrap();
        }
        {
            let db: DurableDatabase<U64Map> =
                DurableDatabase::recover_storage(Arc::new(storage.clone()), 2, cfg()).unwrap();
            assert_eq!(db.recovery().replayed, 0, "tail fully truncated");
            db.session().unwrap().insert(9, 9).unwrap(); // must be tx_id 4
        }
        let (_, replay) = mvcc_wal::Wal::open(
            Arc::new(storage.clone()),
            mvcc_wal::WalConfig {
                segment_bytes: 1,
                ..mvcc_wal::WalConfig::default()
            },
        )
        .unwrap();
        let tx: Vec<u64> = replay.batches.iter().map(|b| b.tx_id).collect();
        assert_eq!(tx, vec![4], "tx_id restarted instead of staying monotone");
    }

    #[test]
    fn wal_error_leaves_memory_untouched() {
        use mvcc_wal::FaultPlan;
        let storage = FaultStorage::new(
            FaultPlan {
                // Segment header survives open (one transient), then the
                // first commit's append fails beyond the retry budget.
                transient_append_failures: u64::MAX,
                ..FaultPlan::default()
            },
            3,
        );
        // Header append also fails => open itself errors typed.
        let r: Result<DurableDatabase<U64Map>, _> =
            DurableDatabase::recover_storage(Arc::new(storage), 1, DurableConfig::default());
        assert!(matches!(r, Err(DurableError::Wal(WalError::Io { .. }))));
    }

    #[test]
    fn raw_writer_race_is_a_typed_error() {
        let storage = FaultStorage::unfaulted();
        let db = open(&storage, Durability::Always);
        let mut s = db.session().unwrap();
        s.insert(1, 1).unwrap();
        let err = s
            .write(|txn| {
                // A contract-violating raw write sneaks in mid-transaction.
                let mut raw = db.database().session().unwrap();
                raw.insert(99, 99);
                txn.insert(2, 2);
            })
            .expect_err("set must lose to the raw writer");
        assert!(matches!(err, DurableError::RacedByRawWriter));
        // The durable session keeps working afterwards.
        s.insert(3, 3).unwrap();
        assert_eq!(s.get(&3), Some(3));
    }

    #[test]
    fn leader_group_commit_coalesces_concurrent_commits() {
        let storage = FaultStorage::unfaulted();
        {
            let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
                Arc::new(storage.clone()),
                4,
                DurableConfig::default().with_group_commit(GroupCommit::Leader),
            )
            .unwrap();
            assert_eq!(db.group_commit(), GroupCommit::Leader);
            let db = &db;
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    scope.spawn(move || {
                        let mut s = db.session().unwrap();
                        for j in 0..25u64 {
                            s.insert(t * 1000 + j, j).unwrap();
                        }
                    });
                }
            });
            let stats = db.durable_stats();
            assert_eq!(stats.batches_flushed, 100, "every commit flushed");
            assert_eq!(stats.pending_batches, 0, "acked means flushed");
            assert!(stats.groups_flushed >= 1);
            assert!(stats.groups_flushed <= stats.batches_flushed);
            assert!(stats.mean_group() >= 1.0);
        }
        let db = open(&storage, Durability::Always);
        assert_eq!(db.recovery().replayed, 100);
        assert_eq!(db.session().unwrap().len(), 100);
    }

    #[test]
    fn write_acked_overlaps_work_with_the_flush() {
        let storage = FaultStorage::unfaulted();
        let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig::default().with_group_commit(GroupCommit::Leader),
        )
        .unwrap();
        let mut s = db.session().unwrap();
        let (_, a1) = s
            .write_acked(|txn| {
                txn.insert(1, 1);
            })
            .unwrap();
        let (_, a2) = s
            .write_acked(|txn| {
                txn.insert(2, 2);
            })
            .unwrap();
        // Both commits are visible before anyone waited on durability.
        assert_eq!(s.get(&1), Some(1));
        assert_eq!(s.get(&2), Some(2));
        assert_eq!(a1.commit_ts(), Some(1));
        assert_eq!(a2.commit_ts(), Some(2));
        // Waiting on the later ack flushes the whole pending group, so
        // the earlier commit becomes durable with it.
        a2.wait().unwrap();
        assert!(a1.is_durable());
        a1.wait().unwrap();
        let stats = db.durable_stats();
        assert_eq!(stats.pending_batches, 0);
        assert_eq!(stats.max_group, 2, "the two commits shared one flush");
    }

    #[test]
    fn flusher_policy_flushes_in_background_and_recovers() {
        let storage = FaultStorage::unfaulted();
        {
            let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
                Arc::new(storage.clone()),
                2,
                DurableConfig::default().with_group_commit(GroupCommit::Flusher {
                    max_coalesce: Duration::from_micros(200),
                }),
            )
            .unwrap();
            let mut s = db.session().unwrap();
            for k in 0..30u64 {
                s.insert(k, k).unwrap();
            }
            let stats = db.durable_stats();
            assert_eq!(stats.batches_flushed, 30);
            assert!(stats.groups_flushed >= 1);
        } // drop stops and joins the flusher thread
        let db = open(&storage, Durability::Always);
        assert_eq!(db.recovery().replayed, 30);
        assert_eq!(db.session().unwrap().len(), 30);
    }

    #[test]
    fn group_commit_downgrades_to_serial_without_always() {
        let storage = FaultStorage::unfaulted();
        let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig::default()
                .with_durability(Durability::EveryN(4))
                .with_group_commit(GroupCommit::Leader),
        )
        .unwrap();
        assert_eq!(
            db.group_commit(),
            GroupCommit::Serial,
            "EveryN already amortizes fsyncs; grouping applies to Always only"
        );
        let mut s = db.session().unwrap();
        let (_, ack) = s
            .write_acked(|txn| {
                txn.insert(1, 1);
            })
            .unwrap();
        assert!(ack.is_durable(), "serial acks are satisfied immediately");
        ack.wait().unwrap();
    }

    #[test]
    fn poisoned_group_flush_fails_waiters_and_later_commits() {
        use mvcc_wal::FaultPlan;
        let storage = FaultStorage::new(
            FaultPlan {
                crash_at_sync: Some(0),
                ..FaultPlan::default()
            },
            7,
        );
        let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig::default().with_group_commit(GroupCommit::Leader),
        )
        .unwrap();
        let mut s = db.session().unwrap();
        // The commit becomes visible, but its group flush dies at the
        // fsync — after the frame entered the commit-ordered tail, so it
        // cannot be rolled back without creating a replay-order gap.
        let (_, ack) = s
            .write_acked(|txn| {
                txn.insert(1, 1);
            })
            .unwrap();
        assert!(ack.wait().is_err(), "flush failure must surface");
        assert_eq!(s.get(&1), Some(1), "the commit stays visible in memory");
        // Later durable commits refuse before becoming visible: the log
        // is poisoned and enqueue fails fast.
        let err = s.insert(2, 2).expect_err("poisoned log takes no commits");
        assert!(matches!(err, DurableError::Wal(WalError::Poisoned)));
        assert_eq!(s.get(&2), None, "the refused commit never became visible");
    }

    fn wal_disk_bytes(storage: &FaultStorage) -> u64 {
        storage
            .list()
            .unwrap()
            .iter()
            .filter(|n| is_segment_name(n))
            .map(|n| storage.len(n).unwrap())
            .sum()
    }

    fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn wal_bytes_counts_sealed_segments_across_a_roll() {
        let storage = FaultStorage::unfaulted();
        let cfg = DurableConfig {
            segment_bytes: 256,
            ..DurableConfig::default()
        };
        {
            let db: DurableDatabase<U64Map> =
                DurableDatabase::recover_storage(Arc::new(storage.clone()), 2, cfg.clone())
                    .unwrap();
            let mut s = db.session().unwrap();
            for k in 0..64u64 {
                s.insert(k, k).unwrap();
            }
            // The log rolled: the active segment alone is under the
            // threshold, so equality with the on-disk total proves the
            // sealed segments are counted too.
            assert!(db.wal_bytes() > 256, "no roll happened");
            assert_eq!(db.wal_bytes(), wal_disk_bytes(&storage));
            let before = db.wal_bytes();
            db.checkpoint().unwrap();
            assert!(db.wal_bytes() < before, "truncation must shrink it");
            assert_eq!(db.wal_bytes(), wal_disk_bytes(&storage));
        }
        // Re-opened with logging off: the segments still on disk are the
        // footprint the supervisor must see, not zero.
        let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig {
                durability: Durability::Off,
                ..cfg
            },
        )
        .unwrap();
        assert!(db.wal_bytes() > 0, "Off must still count on-disk segments");
        assert_eq!(db.wal_bytes(), wal_disk_bytes(&storage));
        // An Off checkpoint covers and retires them.
        db.checkpoint().unwrap();
        assert_eq!(db.wal_bytes(), 0);
        assert_eq!(wal_disk_bytes(&storage), 0);
    }

    #[test]
    fn maintenance_tick_checkpoints_on_bytes_threshold() {
        let storage = FaultStorage::unfaulted();
        let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig {
                segment_bytes: 256,
                ..DurableConfig::default()
            },
        )
        .unwrap();
        let policy = MaintenancePolicy::default().with_wal_bytes_threshold(512);
        assert_eq!(db.maintenance_tick(&policy), MaintenanceTick::Idle);
        let mut s = db.session().unwrap();
        while db.wal_bytes() < 512 {
            s.insert(db.wal_bytes(), 1).unwrap();
        }
        let ts = match db.maintenance_tick(&policy) {
            MaintenanceTick::Checkpointed(ts) => ts,
            other => panic!("expected a checkpoint, got {other:?}"),
        };
        assert_eq!(ts, db.last_commit_ts());
        assert!(db.wal_bytes() < 512, "checkpoint must reclaim the log");
        let stats = db.maintenance_stats();
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.last_checkpoint_ts, ts);
        assert_eq!(db.health(), Health::Ok);
        // Nothing new committed: the staleness guard skips a rewrite
        // even though time keeps passing.
        assert_eq!(
            db.maintenance_tick(&MaintenancePolicy::default().with_interval(Duration::ZERO)),
            MaintenanceTick::Idle
        );
    }

    #[test]
    fn maintenance_degrades_then_recovers_to_ok() {
        use mvcc_wal::FaultPlan;
        let storage = FaultStorage::new(
            FaultPlan {
                transient_checkpoint_failures: 2,
                ..FaultPlan::default()
            },
            5,
        );
        let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig::default(),
        )
        .unwrap();
        db.session().unwrap().insert(1, 1).unwrap();
        let policy = MaintenancePolicy::default()
            .with_wal_bytes_threshold(1)
            .with_max_backoff(Duration::from_millis(2));
        assert_eq!(db.maintenance_tick(&policy), MaintenanceTick::Failed);
        match db.health() {
            Health::Degraded { retries, .. } => assert_eq!(retries, 1),
            Health::Ok => panic!("first failure must degrade"),
        }
        // Commits keep flowing while maintenance is degraded.
        db.session().unwrap().insert(2, 2).unwrap();
        // Retry through the (jittered, capped) backoff until it heals.
        let mut failed = 1u64;
        loop {
            match db.maintenance_tick(&policy) {
                MaintenanceTick::Checkpointed(_) => break,
                MaintenanceTick::Failed => failed += 1,
                MaintenanceTick::Backoff => std::thread::sleep(Duration::from_millis(1)),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(failed, 2, "exactly the injected failures");
        assert_eq!(db.health(), Health::Ok, "first success heals");
        let stats = db.maintenance_stats();
        assert_eq!(stats.failures, 2);
        assert_eq!(stats.checkpoints, 1);
        assert!(stats.skipped_backoff > 0, "backoff was exercised");
    }

    #[test]
    fn start_maintenance_checkpoints_in_background_and_joins() {
        let storage = FaultStorage::unfaulted();
        let db: Arc<DurableDatabase<U64Map>> = Arc::new(
            DurableDatabase::recover_storage(
                Arc::new(storage.clone()),
                2,
                DurableConfig {
                    segment_bytes: 256,
                    ..DurableConfig::default()
                },
            )
            .unwrap(),
        );
        let handle =
            db.start_maintenance(MaintenancePolicy::default().with_wal_bytes_threshold(512));
        let mut s = db.session().unwrap();
        for k in 0..200u64 {
            s.insert(k, k).unwrap();
        }
        // Once the writers stop, the supervisor must both have
        // checkpointed and have brought the footprint back under the
        // threshold (plus at most one unsealed segment).
        wait_until(
            || db.maintenance_stats().checkpoints >= 1 && db.wal_bytes() < 512 + 256,
            "background checkpoint to bound the log",
        );
        drop(s);
        handle.shutdown();
        // The database is fully usable after the supervisor is gone.
        db.session().unwrap().insert(999, 9).unwrap();
        db.checkpoint().unwrap();
    }

    #[test]
    fn maintenance_handle_drop_is_prompt_mid_backoff() {
        use mvcc_wal::FaultPlan;
        let storage = FaultStorage::new(
            FaultPlan {
                fail_checkpoint_writes: true,
                ..FaultPlan::default()
            },
            9,
        );
        let db: Arc<DurableDatabase<U64Map>> = Arc::new(
            DurableDatabase::recover_storage(
                Arc::new(storage.clone()),
                2,
                DurableConfig::default(),
            )
            .unwrap(),
        );
        db.session().unwrap().insert(1, 1).unwrap();
        // A backoff far longer than the test: drop must not wait it out.
        let handle = db.start_maintenance(
            MaintenancePolicy::default()
                .with_wal_bytes_threshold(1)
                .with_max_backoff(Duration::from_secs(3600)),
        );
        wait_until(|| db.health().is_degraded(), "degraded health");
        let t0 = Instant::now();
        drop(handle);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "drop blocked on the backoff: {:?}",
            t0.elapsed()
        );
        // Degradation stalled reclamation only: the WAL takes commits.
        db.session().unwrap().insert(2, 2).unwrap();
    }

    #[test]
    fn maintenance_handle_drop_waits_out_in_flight_checkpoint() {
        let storage = FaultStorage::unfaulted();
        let db: Arc<DurableDatabase<U64Map>> = Arc::new(
            DurableDatabase::recover_storage(
                Arc::new(storage.clone()),
                2,
                DurableConfig::default(),
            )
            .unwrap(),
        );
        // A big image makes the snapshot walk take real time, so the
        // drop below almost certainly lands mid-checkpoint.
        let mut s = db.session().unwrap();
        s.write(|txn| {
            txn.multi_insert((0..50_000u64).map(|k| (k, k)).collect(), |_o, n| *n);
        })
        .unwrap();
        drop(s);
        let handle = db.start_maintenance(MaintenancePolicy::default().with_wal_bytes_threshold(1));
        std::thread::sleep(Duration::from_millis(1));
        drop(handle); // joins; must not tear the image or poison the WAL
        assert_eq!(db.health(), Health::Ok);
        db.session().unwrap().insert(999_999, 1).unwrap();
        db.checkpoint().unwrap();
        drop(db);
        let db = open(&storage, Durability::Always);
        assert!(db.recovery().checkpoint_ts.is_some());
        assert_eq!(db.session().unwrap().len(), 50_001);
    }

    #[test]
    fn redline_escalates_to_commit_backpressure_and_clears() {
        let storage = FaultStorage::unfaulted();
        let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig {
                segment_bytes: 256,
                ..DurableConfig::default()
            }
            .with_group_commit(GroupCommit::Leader),
        )
        .unwrap();
        let policy = MaintenancePolicy::default()
            .with_wal_bytes_threshold(0) // isolate the red line
            .with_redline_bytes(600);
        let mut s = db.session().unwrap();
        while db.wal_bytes() < 600 {
            s.insert(db.wal_bytes(), 1).unwrap();
        }
        assert_eq!(db.maintenance_tick(&policy), MaintenanceTick::Idle);
        let stats = db.maintenance_stats();
        assert!(stats.redline_engaged);
        assert_eq!(stats.redline_engagements, 1);
        // With one commit already pending, the next one must block for a
        // flush — the existing bounded-queue backpressure, forced by the
        // narrowed watermark.
        let blocked_before = db.durable_stats().blocked_enqueues;
        let (_, a1) = s.write_acked(|txn| txn.insert(9_001, 1)).unwrap();
        let (_, a2) = s.write_acked(|txn| txn.insert(9_002, 2)).unwrap();
        a1.wait().unwrap();
        a2.wait().unwrap();
        assert!(
            db.durable_stats().blocked_enqueues > blocked_before,
            "red line never produced backpressure"
        );
        // A checkpoint shrinks the footprint; the next tick clears it.
        let ts = db.checkpoint().unwrap();
        assert_eq!(ts, db.last_commit_ts());
        assert!(db.wal_bytes() < 600);
        assert_eq!(db.maintenance_tick(&policy), MaintenanceTick::Idle);
        assert!(!db.maintenance_stats().redline_engaged);
        // And enqueues flow freely again.
        let (_, a3) = s.write_acked(|txn| txn.insert(9_003, 3)).unwrap();
        let (_, a4) = s.write_acked(|txn| txn.insert(9_004, 4)).unwrap();
        a4.wait().unwrap();
        a3.wait().unwrap();
    }

    #[test]
    fn recover_sweeps_stale_checkpoint_tmp_files() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            db.session().unwrap().insert(1, 1).unwrap();
            db.checkpoint().unwrap();
        }
        // A checkpointer died before its rename: two orphaned tmps.
        storage
            .append("ckpt-00000000000000aa.tmp", b"torn image")
            .unwrap();
        storage
            .append("ckpt-00000000000000ab.tmp", b"torn image")
            .unwrap();
        let db = open(&storage, Durability::Always);
        assert_eq!(db.recovery().swept_tmp, 2);
        assert!(
            !storage.list().unwrap().iter().any(|n| n.ends_with(".tmp")),
            "recovery must not leak tmp files"
        );
        assert_eq!(db.session().unwrap().get(&1), Some(1));
    }

    #[test]
    fn double_recovery_is_idempotent() {
        let storage = FaultStorage::unfaulted();
        {
            let db = open(&storage, Durability::Always);
            let mut s = db.session().unwrap();
            for k in 0..10u64 {
                s.insert(k, k).unwrap();
            }
        }
        let once = open(&storage, Durability::Always);
        let first: Vec<(u64, u64)> = once.session().unwrap().read(|s| s.to_vec());
        let ts = once.last_commit_ts();
        drop(once);
        let twice = open(&storage, Durability::Always);
        assert_eq!(twice.session().unwrap().read(|s| s.to_vec()), first);
        assert_eq!(twice.last_commit_ts(), ts);
        assert_eq!(twice.recovery().skipped, 0);
        assert_eq!(twice.recovery().replayed, 10);
    }
}
