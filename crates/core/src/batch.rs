//! Flat-combining batched writes (Appendix F).
//!
//! Multi-writer workloads can avoid aborts entirely by funnelling updates
//! through a single combining writer: each producer process appends
//! operations to its own bounded buffer; the combiner periodically drains
//! every buffer, assembles one batch, applies it with the *parallel*
//! `multi_insert` / `multi_remove` of `mvcc-ftree`, and commits the whole
//! batch as **one atomic version**. Producers never contend with each
//! other (one queue each) and the single writer never aborts.
//!
//! As the paper notes, batching trades the wait-freedom of individual
//! writes for throughput and atomicity; per-buffer watermarks let a
//! producer wait until its operations are durable in a committed version
//! (bounded latency, §7.2 uses 50 ms batches).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::queue::ArrayQueue;
use mvcc_ftree::TreeParams;
use mvcc_vm::VersionMaintenance;
use mvcc_wal::WalCodec;

use crate::durable::{DurableError, DurableSession};
use crate::Session;

/// One map update, as submitted by a producer.
#[derive(Clone)]
pub enum MapOp<P: TreeParams> {
    /// Insert or overwrite `key`.
    Insert(P::K, P::V),
    /// Remove `key` (no-op if absent).
    Remove(P::K),
}

impl<P: TreeParams> std::fmt::Debug for MapOp<P>
where
    P::K: std::fmt::Debug,
    P::V: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapOp::Insert(k, v) => f.debug_tuple("Insert").field(k).field(v).finish(),
            MapOp::Remove(k) => f.debug_tuple("Remove").field(k).finish(),
        }
    }
}

impl<P: TreeParams> PartialEq for MapOp<P>
where
    P::K: PartialEq,
    P::V: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (MapOp::Insert(k1, v1), MapOp::Insert(k2, v2)) => k1 == k2 && v1 == v2,
            (MapOp::Remove(k1), MapOp::Remove(k2)) => k1 == k2,
            _ => false,
        }
    }
}

/// Error returned by [`BatchWriter::submit`] when the producer's buffer is
/// full (the combiner is behind); the operation is handed back.
pub struct SubmitError<P: TreeParams>(pub MapOp<P>);

impl<P: TreeParams> std::fmt::Debug for SubmitError<P>
where
    P::K: std::fmt::Debug,
    P::V: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SubmitError").field(&self.0).finish()
    }
}

impl<P: TreeParams> PartialEq for SubmitError<P>
where
    P::K: PartialEq,
    P::V: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

/// A ticket identifying a submitted operation's position in its buffer;
/// pass to [`BatchWriter::is_applied`] / [`BatchWriter::wait_applied`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    producer: usize,
    seq: u64,
}

struct Buffer<P: TreeParams> {
    queue: ArrayQueue<MapOp<P>>,
    /// Total operations ever pushed (producer-side sequence).
    pushed: AtomicU64,
    /// Total operations applied in committed versions (combiner-side).
    applied: AtomicU64,
    /// Total operations whose commit's durability ack has landed
    /// (combiner-side; trails `applied` while a group fsync is pending).
    durable: AtomicU64,
}

/// The Appendix F combining writer for a [`crate::Database`].
///
/// `producers` independent submitters (indexed `0..producers`, each used
/// by one thread at a time) plus one combiner thread calling
/// [`BatchWriter::combine`] with its own leased [`Session`].
pub struct BatchWriter<P: TreeParams> {
    buffers: Vec<Buffer<P>>,
}

impl<P: TreeParams> BatchWriter<P> {
    /// Create buffers for `producers` producers, each holding up to
    /// `capacity` pending operations.
    pub fn new(producers: usize, capacity: usize) -> Self {
        assert!(producers >= 1 && capacity >= 1);
        BatchWriter {
            buffers: (0..producers)
                .map(|_| Buffer {
                    queue: ArrayQueue::new(capacity),
                    pushed: AtomicU64::new(0),
                    applied: AtomicU64::new(0),
                    durable: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of producer buffers.
    pub fn producers(&self) -> usize {
        self.buffers.len()
    }

    /// Operations currently waiting in `producer`'s buffer (a racy
    /// snapshot — combiner pacing, not synchronization).
    pub fn pending(&self, producer: usize) -> usize {
        self.buffers[producer].queue.len()
    }

    /// Submit an operation from `producer`. Non-blocking; returns a ticket
    /// for durability tracking, or the operation back if the buffer is
    /// full.
    pub fn submit(&self, producer: usize, op: MapOp<P>) -> Result<Ticket, SubmitError<P>> {
        let buf = &self.buffers[producer];
        match buf.queue.push(op) {
            Ok(()) => {
                let seq = buf.pushed.fetch_add(1, Ordering::Relaxed) + 1;
                Ok(Ticket { producer, seq })
            }
            Err(op) => Err(SubmitError(op)),
        }
    }

    /// Submit, spinning until buffer space frees up (producers outpacing
    /// the combiner block — the latency/throughput trade-off of batching).
    pub fn submit_blocking(&self, producer: usize, mut op: MapOp<P>) -> Ticket {
        loop {
            match self.submit(producer, op) {
                Ok(t) => return t,
                Err(SubmitError(back)) => {
                    op = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Has the operation behind `ticket` been applied in a committed
    /// version?
    pub fn is_applied(&self, ticket: Ticket) -> bool {
        self.buffers[ticket.producer]
            .applied
            .load(Ordering::Acquire)
            >= ticket.seq
    }

    /// Spin until [`BatchWriter::is_applied`].
    pub fn wait_applied(&self, ticket: Ticket) {
        while !self.is_applied(ticket) {
            std::thread::yield_now();
        }
    }

    /// Has the operation behind `ticket` been made **durable** — applied
    /// in a committed version whose durability ack has landed? Through
    /// [`BatchWriter::combine`] (no WAL) this coincides with
    /// [`BatchWriter::is_applied`]; through
    /// [`BatchWriter::combine_durable`] under group commit it trails
    /// `is_applied` by the group fsync.
    pub fn is_durable(&self, ticket: Ticket) -> bool {
        self.buffers[ticket.producer]
            .durable
            .load(Ordering::Acquire)
            >= ticket.seq
    }

    /// Spin until [`BatchWriter::is_durable`].
    pub fn wait_durable(&self, ticket: Ticket) {
        while !self.is_durable(ticket) {
            std::thread::yield_now();
        }
    }

    /// Drain phase: take a snapshot of each queue's current contents,
    /// then resolve last-writer-wins per key (respecting each producer's
    /// order and a deterministic producer order). `None` when nothing was
    /// pending.
    fn drain_resolve(&self) -> Option<DrainedBatch<P>> {
        let mut per_producer: Vec<(usize, u64)> = Vec::with_capacity(self.buffers.len());
        let mut drained: Vec<Vec<MapOp<P>>> = Vec::with_capacity(self.buffers.len());
        let mut total = 0usize;
        for (i, buf) in self.buffers.iter().enumerate() {
            let n = buf.queue.len();
            if n == 0 {
                continue;
            }
            let mut ops = Vec::with_capacity(n);
            // Only pop what we observed: ops submitted during the drain
            // belong to the next batch (bounded latency).
            for _ in 0..n {
                match buf.queue.pop() {
                    Some(op) => ops.push(op),
                    None => break,
                }
            }
            total += ops.len();
            per_producer.push((i, ops.len() as u64));
            drained.push(ops);
        }
        if total == 0 {
            return None;
        }

        let mut resolved: std::collections::BTreeMap<P::K, Option<P::V>> =
            std::collections::BTreeMap::new();
        for ops in &drained {
            for op in ops {
                match op {
                    MapOp::Insert(k, v) => {
                        resolved.insert(k.clone(), Some(v.clone()));
                    }
                    MapOp::Remove(k) => {
                        resolved.insert(k.clone(), None);
                    }
                }
            }
        }
        let mut inserts: Vec<(P::K, P::V)> = Vec::new();
        let mut removes: Vec<P::K> = Vec::new();
        for (k, v) in resolved {
            match v {
                Some(v) => inserts.push((k, v)),
                None => removes.push(k),
            }
        }
        Some(DrainedBatch {
            per_producer,
            inserts,
            removes,
            total,
        })
    }

    /// Publish applied watermarks: producers can now observe that their
    /// drained operations are applied (visible in a committed version).
    fn publish(&self, per_producer: &[(usize, u64)]) {
        for &(i, n) in per_producer {
            self.buffers[i].applied.fetch_add(n, Ordering::Release);
        }
    }

    /// Publish durable watermarks: the commit's durability ack landed.
    fn publish_durable(&self, per_producer: &[(usize, u64)]) {
        for &(i, n) in per_producer {
            self.buffers[i].durable.fetch_add(n, Ordering::Release);
        }
    }

    /// Drain all buffers and commit the batch as a single write
    /// transaction on the combiner's `session`. Returns the number of
    /// operations applied (0 = nothing pending).
    ///
    /// Intended to be called in a loop by one combiner thread; with a
    /// single combiner the transaction commits on the first attempt
    /// (single-writer, O(P) delay).
    pub fn combine<M: VersionMaintenance>(&self, session: &mut Session<'_, P, M>) -> usize {
        // Pin the combiner to the session's arena shard for the whole
        // batch: every node the parallel bulk build allocates, and every
        // tuple the displaced version's collection frees, goes through a
        // single freelist instead of contending with the producers'
        // shards.
        let forest = session.database().forest();
        let _shard_pin = forest.arena().pin(session.alloc_ctx());
        let Some(batch) = self.drain_resolve() else {
            return 0;
        };

        // Apply phase: one atomic version containing the whole batch,
        // built with the parallel bulk algorithms. The sorted insert tree
        // is built once, outside the retry loop; each attempt retains one
        // reference for `union` to consume, so an abort costs O(1) extra
        // instead of an O(batch) rebuild.
        let ins_tree = forest.build_sorted(&batch.inserts);
        session.write_raw(|f, base| {
            f.retain(ins_tree);
            let t = f.union(base, ins_tree);
            let t = f.multi_remove_sorted(t, &batch.removes);
            (t, ())
        });
        forest.release(ins_tree);

        self.publish(&batch.per_producer);
        self.publish_durable(&batch.per_producer); // no WAL: applied = durable
        batch.total
    }

    /// [`BatchWriter::combine`] through a durable session: the whole
    /// resolved batch commits as **one WAL record** (and one version).
    /// Applied watermarks publish as soon as the commit is visible and
    /// logged; durable watermarks publish once its [`crate::CommitAck`]
    /// lands — under [`crate::GroupCommit`] coalescing, that is the
    /// group's shared fsync, so flat-combined producers polling
    /// [`BatchWriter::is_durable`] block only until their group's fsync.
    /// Returns the number of operations applied.
    ///
    /// On a WAL publish error nothing is applied and the drained
    /// operations are dropped (the tickets never turn applied). If the
    /// commit lands but its *group flush* fails, applied watermarks stay
    /// published, durable ones do not, and the flush error is returned.
    pub fn combine_durable<M: VersionMaintenance>(
        &self,
        session: &mut DurableSession<'_, P, M>,
    ) -> Result<usize, DurableError>
    where
        P::K: WalCodec,
        P::V: WalCodec,
    {
        let Some(batch) = self.drain_resolve() else {
            return Ok(0);
        };
        // The resolved values are final (last-writer-wins overwrite), so
        // the delta log records exactly `inserts` + `removes`.
        let (_, ack) = session.write_acked(|txn| {
            txn.multi_insert(batch.inserts.clone(), |_old, new| new.clone());
            txn.multi_remove(batch.removes.clone());
        })?;
        self.publish(&batch.per_producer);
        ack.wait()?;
        self.publish_durable(&batch.per_producer);
        Ok(batch.total)
    }
}

/// The outcome of [`BatchWriter::drain_resolve`]: the per-key-resolved
/// batch plus the per-producer counts to publish after the commit.
struct DrainedBatch<P: TreeParams> {
    per_producer: Vec<(usize, u64)>,
    inserts: Vec<(P::K, P::V)>,
    removes: Vec<P::K>,
    total: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;
    use mvcc_ftree::U64Map;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn combine_applies_batch_atomically() {
        let db: Database<U64Map> = Database::new(1);
        let mut combiner = db.session().unwrap();
        let bw: BatchWriter<U64Map> = BatchWriter::new(2, 64);
        for k in 0..10u64 {
            bw.submit(0, MapOp::Insert(k, k)).unwrap();
        }
        for k in 5..15u64 {
            bw.submit(1, MapOp::Insert(k, k + 100)).unwrap();
        }
        let versions_before = combiner.stats().commits;
        let applied = bw.combine(&mut combiner);
        assert_eq!(applied, 20);
        assert_eq!(
            combiner.stats().commits,
            versions_before + 1,
            "one atomic commit"
        );
        // Producer 1 (drained later) wins the overlap.
        assert_eq!(combiner.get(&7), Some(107));
        assert_eq!(combiner.get(&2), Some(2));
        assert_eq!(combiner.len(), 15);
    }

    #[test]
    fn removes_and_inserts_resolve_last_writer_wins() {
        let db: Database<U64Map> = Database::new(1);
        let mut combiner = db.session().unwrap();
        let bw: BatchWriter<U64Map> = BatchWriter::new(1, 64);
        combiner.insert(1, 1);
        bw.submit(0, MapOp::Insert(2, 2)).unwrap();
        bw.submit(0, MapOp::Remove(2)).unwrap();
        bw.submit(0, MapOp::Remove(1)).unwrap();
        bw.submit(0, MapOp::Insert(1, 11)).unwrap();
        bw.combine(&mut combiner);
        assert_eq!(combiner.get(&2), None, "insert-then-remove nets to remove");
        assert_eq!(
            combiner.get(&1),
            Some(11),
            "remove-then-insert nets to insert"
        );
    }

    #[test]
    fn tickets_track_durability() {
        let db: Database<U64Map> = Database::new(1);
        let mut combiner = db.session().unwrap();
        let bw: BatchWriter<U64Map> = BatchWriter::new(1, 8);
        let t1 = bw.submit(0, MapOp::Insert(1, 1)).unwrap();
        assert!(!bw.is_applied(t1));
        bw.combine(&mut combiner);
        assert!(bw.is_applied(t1));
        let t2 = bw.submit(0, MapOp::Insert(2, 2)).unwrap();
        assert!(!bw.is_applied(t2));
        bw.combine(&mut combiner);
        assert!(bw.is_applied(t2));
        bw.wait_applied(t2);
    }

    #[test]
    fn full_buffer_rejects_then_accepts() {
        let db: Database<U64Map> = Database::new(1);
        let mut combiner = db.session().unwrap();
        let bw: BatchWriter<U64Map> = BatchWriter::new(1, 2);
        bw.submit(0, MapOp::Insert(1, 1)).unwrap();
        bw.submit(0, MapOp::Insert(2, 2)).unwrap();
        let err = bw.submit(0, MapOp::Insert(3, 3));
        assert_eq!(err, Err(SubmitError(MapOp::Insert(3, 3))));
        bw.combine(&mut combiner);
        bw.submit(0, MapOp::Insert(3, 3)).unwrap();
        bw.combine(&mut combiner);
        assert_eq!(combiner.len(), 3);
    }

    /// A VM wrapper whose `set` *pretends* to lose the race for the
    /// first `fail` calls (the inner VM never sees them — legal, since
    /// the per-process pattern is `acquire (set)? release`). This drives
    /// the transaction layer's abort path deterministically.
    struct FlakySet<M> {
        inner: M,
        fail: std::sync::atomic::AtomicU64,
    }

    impl<M: mvcc_vm::VersionMaintenance> mvcc_vm::VersionMaintenance for FlakySet<M> {
        fn processes(&self) -> usize {
            self.inner.processes()
        }
        fn acquire(&self, k: usize) -> u64 {
            self.inner.acquire(k)
        }
        fn set(&self, k: usize, data: u64) -> bool {
            if self
                .fail
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                return false; // simulated lost race; inner VM unchanged
            }
            self.inner.set(k, data)
        }
        fn release(&self, k: usize, out: &mut Vec<u64>) {
            self.inner.release(k, out)
        }
        fn current(&self) -> u64 {
            self.inner.current()
        }
        fn uncollected_versions(&self) -> u64 {
            self.inner.uncollected_versions()
        }
    }

    #[test]
    fn combine_reuses_prebuilt_batch_across_retries() {
        // Force `combine`'s commit closure through two aborts: the
        // prebuilt sorted insert tree must survive each attempt (one
        // retain consumed per `union`) and the abort path must collect
        // the speculative version without touching the shared batch.
        use mvcc_ftree::OptNodeId;
        let vm = FlakySet {
            inner: mvcc_vm::PswfVm::new(1, OptNodeId::NONE.raw() as u64),
            fail: std::sync::atomic::AtomicU64::new(2),
        };
        let db: Database<U64Map, _> = Database::with_vm(vm);
        let mut combiner = db.session().unwrap();
        let bw: BatchWriter<U64Map> = BatchWriter::new(1, 64);
        for k in 0..20u64 {
            bw.submit(0, MapOp::Insert(k, k * 10)).unwrap();
        }
        bw.submit(0, MapOp::Remove(0)).unwrap();
        let applied = bw.combine(&mut combiner);
        assert_eq!(applied, 21);
        assert_eq!(
            combiner.stats().aborts,
            2,
            "both simulated set failures retried"
        );
        assert_eq!(combiner.stats().commits, 1, "then exactly one commit");
        // Content correct after the retries...
        assert_eq!(combiner.get(&0), None, "remove applied");
        for k in 1..20u64 {
            assert_eq!(combiner.get(&k), Some(k * 10));
        }
        // ...and no refcount damage: exactly the 19 live entries remain
        // (a missing retain would free shared nodes mid-retry; an extra
        // one would leak them here).
        assert_eq!(db.live_versions(), 1);
        assert_eq!(db.forest().arena().live(), 19);
    }

    #[test]
    fn combine_durable_publishes_applied_then_durable() {
        use crate::{DurableConfig, DurableDatabase, GroupCommit};
        use mvcc_wal::FaultStorage;
        use std::sync::Arc;

        let storage = FaultStorage::unfaulted();
        {
            let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
                Arc::new(storage.clone()),
                2,
                DurableConfig::default().with_group_commit(GroupCommit::Leader),
            )
            .unwrap();
            let mut combiner = db.session().unwrap();
            let bw: BatchWriter<U64Map> = BatchWriter::new(2, 64);
            let t0 = bw.submit(0, MapOp::Insert(1, 10)).unwrap();
            let t1 = bw.submit(1, MapOp::Insert(2, 20)).unwrap();
            bw.submit(1, MapOp::Remove(1)).unwrap();
            assert!(!bw.is_applied(t0));
            assert!(!bw.is_durable(t0));
            let applied = bw.combine_durable(&mut combiner).unwrap();
            assert_eq!(applied, 3);
            // combine_durable waits out the ack before returning, so both
            // watermarks are published (a lone combiner leads its own
            // group flush).
            assert!(bw.is_applied(t0) && bw.is_durable(t0));
            assert!(bw.is_applied(t1) && bw.is_durable(t1));
            bw.wait_durable(t1);
            assert_eq!(combiner.get(&1), None, "producer 1's remove wins");
            assert_eq!(combiner.get(&2), Some(20));
        }
        // The flat-combined batch is one WAL record; it replays whole.
        let db: DurableDatabase<U64Map> = DurableDatabase::recover_storage(
            Arc::new(storage.clone()),
            2,
            DurableConfig::default(),
        )
        .unwrap();
        assert_eq!(db.recovery().replayed, 1, "one record for the batch");
        let mut s = db.session().unwrap();
        assert_eq!(s.get(&1), None);
        assert_eq!(s.get(&2), Some(20));
    }

    #[test]
    fn concurrent_producers_with_combiner_thread() {
        let db: std::sync::Arc<Database<U64Map>> = std::sync::Arc::new(Database::new(2));
        let bw: std::sync::Arc<BatchWriter<U64Map>> = std::sync::Arc::new(BatchWriter::new(3, 256));
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let per_producer = 2_000u64;

        std::thread::scope(|s| {
            for p in 0..3usize {
                let bw = bw.clone();
                s.spawn(move || {
                    for i in 0..per_producer {
                        let key = (p as u64) * per_producer + i;
                        bw.submit_blocking(p, MapOp::Insert(key, key));
                    }
                });
            }
            let combiner_db = db.clone();
            let combiner_bw = bw.clone();
            let combiner_stop = stop.clone();
            s.spawn(move || {
                let mut combiner = combiner_db.session().unwrap();
                let mut applied = 0u64;
                while applied < 3 * per_producer {
                    applied += combiner_bw.combine(&mut combiner) as u64;
                    if combiner_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        });
        stop.store(true, Ordering::Relaxed);
        let mut reader = db.session().unwrap();
        assert_eq!(reader.len(), 3 * per_producer as usize);
        // Every version except the current one was collected.
        assert_eq!(db.live_versions(), 1);
    }
}
