//! Session handles: leased process ids, pinned allocation contexts, and
//! transaction views.
//!
//! The VM problem's contract — each process id used by at most one thread
//! at a time — used to be a doc comment on every `pid: usize` parameter.
//! A [`Session`] makes it a lease: [`Database::session`] pops a free pid
//! from a lock-free registry ([`mvcc_vm::PidPool`]) and returns a handle
//! that is the *only* way to run transactions on that pid until it drops.
//! The handle is `Send` (a logical writer may migrate between threads)
//! but deliberately `!Sync`, and every transaction method takes
//! `&mut self`, so the "at most one thread / one transaction at a time"
//! contract is enforced by the borrow checker instead of by prayer.
//!
//! Owning the pid lets the session own everything else a transaction
//! repeatedly needs:
//!
//! * a pinned [`AllocCtx`] (one arena shard per pid), so user code's path
//!   copies, commit bookkeeping and precise collection all route through
//!   one freelist without threading `write_in`/`alloc_ctx` by hand — the
//!   pin covers the session's own thread; bulk operations that fork onto
//!   the work-stealing pool (`union`, `multi_insert`, `filter`, …) re-pin
//!   each stolen subtask to its executing thread's shard, so big batches
//!   parallelize across the sharded arena instead of funnelling through
//!   the session's freelist;
//! * a reusable release buffer, so the `release -> collect` cleanup phase
//!   performs no per-transaction allocation;
//! * local transaction counters, flushed into the database's global
//!   [`TxnStats`] once on drop instead of three contended `fetch_add`s
//!   per transaction.

use std::cell::Cell;
use std::marker::PhantomData;

use mvcc_ftree::{AllocCtx, Forest, Root, TreeParams};
use mvcc_vm::{PswfVm, VersionMaintenance};

use crate::{decode, Aborted, Database, Snapshot, TxnStats};

/// An exclusive lease on one process id of a [`Database`], carrying the
/// transaction API (Figure 1) for that pid.
///
/// Obtain with [`Database::session`] (any free pid) or
/// [`Database::session_for`] (a specific pid). The pid returns to the
/// pool when the session drops.
///
/// `Session` is `Send` but **not** `Sync` — hand it between threads,
/// never share it:
///
/// ```compile_fail
/// fn assert_sync<T: Sync>() {}
/// assert_sync::<mvcc_core::Session<'static, mvcc_core::ftree::U64Map>>();
/// ```
pub struct Session<'db, P: TreeParams, M: VersionMaintenance = PswfVm> {
    db: &'db Database<P, M>,
    pid: usize,
    ctx: AllocCtx,
    /// Reused across transactions: `release` appends, `collect` drains.
    /// `pub(crate)`: the durable commit path ([`crate::durable`]) runs its
    /// own transaction skeleton on the session's buffer and counters.
    pub(crate) released: Vec<u64>,
    pub(crate) commits: u64,
    pub(crate) aborts: u64,
    reads: u64,
    /// Set when a lease reaper already returned this session's pid to the
    /// pool ([`crate::pool::LeaseGuard`]): the drop must not release it a
    /// second time — the pid may already be leased to someone else.
    pub(crate) revoked: bool,
    /// `Cell` poisons `Sync` without costing anything: a session moves
    /// between threads, it is never shared.
    _not_sync: PhantomData<Cell<()>>,
}

#[allow(dead_code)]
fn _session_is_send(s: Session<'static, mvcc_ftree::U64Map>) -> impl Send {
    s
}

impl<'db, P: TreeParams, M: VersionMaintenance> Session<'db, P, M> {
    pub(crate) fn new(db: &'db Database<P, M>, pid: usize) -> Self {
        Session {
            db,
            pid,
            ctx: db.forest.ctx_for(pid),
            released: Vec::new(),
            commits: 0,
            aborts: 0,
            reads: 0,
            revoked: false,
            _not_sync: PhantomData,
        }
    }

    /// The leased process id.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The database this session leases from.
    pub fn database(&self) -> &'db Database<P, M> {
        self.db
    }

    /// The arena shard this session's transactions allocate and collect
    /// through (stable for the lease's lifetime).
    pub fn alloc_ctx(&self) -> AllocCtx {
        self.ctx
    }

    /// This session's transaction counters. Local and unflushed: they
    /// merge into [`Database::stats`] when the session drops.
    pub fn stats(&self) -> TxnStats {
        TxnStats {
            commits: self.commits,
            aborts: self.aborts,
            reads: self.reads,
        }
    }

    /// Run a **read-only transaction** (Figure 1, left). `f` sees an
    /// immutable [`Snapshot`]; the release/collect cleanup after `f`
    /// returns adds no delay to the result and performs no allocation.
    pub fn read<R>(&mut self, f: impl FnOnce(&Snapshot<'_, P>) -> R) -> R {
        let db = self.db;
        let _pin = db.forest.arena().pin(self.ctx);
        let root = decode(db.vmo.acquire(self.pid));
        let result = f(&Snapshot {
            forest: &db.forest,
            root,
        });
        // ---- response delivered; cleanup phase ----
        db.finish_txn(self.pid, &mut self.released);
        self.reads += 1;
        result
    }

    /// Begin a read transaction as an RAII guard (release + collect on
    /// drop). The guard borrows the session exclusively, so no other
    /// transaction can run on this pid until it drops — the per-process
    /// `acquire (set)? release` pattern holds by construction.
    pub fn begin_read(&mut self) -> SessionReadGuard<'_, 'db, P, M> {
        let root = decode(self.db.vmo.acquire(self.pid));
        SessionReadGuard {
            session: self,
            root,
        }
    }

    /// Run a **write transaction** (Figure 1, right) through a
    /// [`WriteTxn`] view that tracks the working root internally,
    /// retrying on abort (lock-free: each retry implies another writer's
    /// commit).
    ///
    /// `f` may run multiple times; it must have no side effects beyond
    /// building the new version.
    ///
    /// ```
    /// use mvcc_core::Database;
    /// use mvcc_core::ftree::U64Map;
    ///
    /// let db: Database<U64Map> = Database::new(1);
    /// let mut s = db.session().unwrap();
    /// let removed = s.write(|txn| {
    ///     txn.insert(1, 10);
    ///     txn.insert(2, 20);
    ///     txn.remove(&1)
    /// });
    /// assert_eq!(removed, Some(10));
    /// assert_eq!(s.get(&2), Some(20));
    /// ```
    pub fn write<R>(&mut self, mut f: impl FnMut(&mut WriteTxn<'_, P>) -> R) -> R {
        self.write_raw(move |forest, base| {
            let mut txn = WriteTxn { forest, root: base };
            let r = f(&mut txn);
            (txn.root, r)
        })
    }

    /// [`Session::write`] without retrying: `Err(Aborted)` if a
    /// concurrent writer's `set` intervened (the speculative version has
    /// been collected).
    pub fn try_write<R>(
        &mut self,
        mut f: impl FnMut(&mut WriteTxn<'_, P>) -> R,
    ) -> Result<R, Aborted> {
        self.try_write_raw(move |forest, base| {
            let mut txn = WriteTxn { forest, root: base };
            let r = f(&mut txn);
            (txn.root, r)
        })
    }

    /// The raw closure form of [`Session::write`] for bulk operations:
    /// `f` receives the forest and an *owned* snapshot root and returns
    /// the new version's owned root (via consuming tree operations such
    /// as `multi_insert` / `union`).
    pub fn write_raw<R>(&mut self, mut f: impl FnMut(&Forest<P>, Root) -> (Root, R)) -> R {
        loop {
            match self.attempt(&mut f) {
                Some(r) => return r,
                None => continue,
            }
        }
    }

    /// One attempt of [`Session::write_raw`]; `Err(Aborted)` on a
    /// concurrent commit.
    pub fn try_write_raw<R>(
        &mut self,
        mut f: impl FnMut(&Forest<P>, Root) -> (Root, R),
    ) -> Result<R, Aborted> {
        self.attempt(&mut f).ok_or(Aborted)
    }

    fn attempt<R>(&mut self, f: &mut impl FnMut(&Forest<P>, Root) -> (Root, R)) -> Option<R> {
        let db = self.db;
        // Everything the attempt allocates (user path copies) or frees
        // (displaced/speculative versions) routes through this session's
        // shard, even if a thread pool migrated the session since the
        // last transaction.
        let _pin = db.forest.arena().pin(self.ctx);
        let result = db.try_write_core(self.pid, &mut self.released, f);
        match result {
            Some(_) => self.commits += 1,
            None => self.aborts += 1,
        }
        result
    }

    // ---- convenience single-op transactions ----

    /// Transactionally insert one entry.
    pub fn insert(&mut self, key: P::K, value: P::V) {
        self.write_raw(move |f, base| (f.insert(base, key.clone(), value.clone()), ()))
    }

    /// Transactionally remove one key; returns the removed value.
    pub fn remove(&mut self, key: &P::K) -> Option<P::V> {
        self.write_raw(|f, base| f.remove(base, key))
    }

    /// Transactionally remove every key in `[lo, hi]` (one atomic commit,
    /// O(log n) plus the collected garbage).
    pub fn remove_range(&mut self, lo: &P::K, hi: &P::K) {
        self.write_raw(|f, base| (f.remove_range(base, lo, hi), ()))
    }

    /// Point lookup as a read transaction (clones the value out).
    pub fn get(&mut self, key: &P::K) -> Option<P::V> {
        self.read(|s| s.get(key).cloned())
    }

    /// Entry count of the current version.
    pub fn len(&mut self) -> usize {
        self.read(|s| s.len())
    }

    /// Is the current version empty?
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
}

impl<P: TreeParams, M: VersionMaintenance> Drop for Session<'_, P, M> {
    fn drop(&mut self) {
        self.db.flush_stats(TxnStats {
            commits: self.commits,
            aborts: self.aborts,
            reads: self.reads,
        });
        if !self.revoked {
            self.db.pids.release(self.pid);
        }
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for Session<'_, P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("pid", &self.pid)
            .field("shard", &self.ctx.shard_index())
            .finish_non_exhaustive()
    }
}

/// RAII read transaction on a [`Session`]: the snapshot stays valid until
/// the guard drops, at which point the version is released and (if this
/// was the last holder) precisely collected through the session's
/// reusable buffer.
#[must_use = "dropping the guard immediately ends the read transaction"]
pub struct SessionReadGuard<'s, 'db, P: TreeParams, M: VersionMaintenance> {
    session: &'s mut Session<'db, P, M>,
    root: Root,
}

impl<P: TreeParams, M: VersionMaintenance> SessionReadGuard<'_, '_, P, M> {
    /// The snapshot this guard pins.
    pub fn snapshot(&self) -> Snapshot<'_, P> {
        Snapshot {
            forest: &self.session.db.forest,
            root: self.root,
        }
    }
}

impl<P: TreeParams, M: VersionMaintenance> Drop for SessionReadGuard<'_, '_, P, M> {
    fn drop(&mut self) {
        let db = self.session.db;
        let _pin = db.forest.arena().pin(self.session.ctx);
        db.finish_txn(self.session.pid, &mut self.session.released);
        self.session.reads += 1;
    }
}

/// The mutable view a [`Session::write`] closure receives: it owns the
/// transaction's working root, so user code mutates in place
/// (`txn.insert(k, v)`) instead of hand-threading `(Root, R)` tuples.
/// Every read method queries the working root, i.e. the transaction sees
/// its own earlier writes.
pub struct WriteTxn<'t, P: TreeParams> {
    forest: &'t Forest<P>,
    root: Root,
}

impl<'t, P: TreeParams> WriteTxn<'t, P> {
    /// Wrap an owned working root (the durable commit path builds its
    /// transaction view by hand).
    pub(crate) fn new(forest: &'t Forest<P>, root: Root) -> Self {
        WriteTxn { forest, root }
    }

    /// Insert or overwrite one entry.
    pub fn insert(&mut self, key: P::K, value: P::V) {
        self.root = self.forest.insert(self.root, key, value);
    }

    /// Remove one key; returns the removed value.
    pub fn remove(&mut self, key: &P::K) -> Option<P::V> {
        let (root, removed) = self.forest.remove(self.root, key);
        self.root = root;
        removed
    }

    /// Remove every key in the inclusive range `[lo, hi]`.
    pub fn remove_range(&mut self, lo: &P::K, hi: &P::K) {
        self.root = self.forest.remove_range(self.root, lo, hi);
    }

    /// Apply a whole batch of insertions (parallel `multi_insert`);
    /// duplicates merge with `combine(old, new)`.
    pub fn multi_insert(
        &mut self,
        batch: Vec<(P::K, P::V)>,
        combine: impl Fn(&P::V, &P::V) -> P::V + Sync,
    ) {
        self.root = self.forest.multi_insert(self.root, batch, combine);
    }

    /// Remove a whole batch of keys (parallel `multi_remove`).
    pub fn multi_remove(&mut self, keys: Vec<P::K>) {
        self.root = self.forest.multi_remove(self.root, keys);
    }

    /// Remove a borrowed, strictly-sorted batch of keys.
    pub fn multi_remove_sorted(&mut self, keys: &[P::K]) {
        self.root = self.forest.multi_remove_sorted(self.root, keys);
    }

    // ---- queries on the working root (see own writes) ----

    /// Look up a key in the working version.
    pub fn get(&self, key: &P::K) -> Option<&P::V> {
        self.forest.get(self.root, key)
    }

    /// Does the working version contain `key`?
    pub fn contains(&self, key: &P::K) -> bool {
        self.forest.contains(self.root, key)
    }

    /// Entry count of the working version.
    pub fn len(&self) -> usize {
        self.forest.size(self.root)
    }

    /// Is the working version empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monoid fold over the inclusive key range (O(log n)).
    pub fn aug_range(&self, lo: &P::K, hi: &P::K) -> P::Aug {
        self.forest.aug_range(self.root, lo, hi)
    }

    /// Fold over the whole working version.
    pub fn aug_total(&self) -> P::Aug {
        self.forest.aug_total(self.root)
    }

    /// Smallest entry of the working version.
    pub fn min(&self) -> Option<(&P::K, &P::V)> {
        self.forest.min(self.root)
    }

    /// Largest entry of the working version.
    pub fn max(&self) -> Option<(&P::K, &P::V)> {
        self.forest.max(self.root)
    }

    // ---- escape hatches for advanced tree surgery ----

    /// The forest the transaction builds in (for operations this view
    /// does not wrap). Any root manipulation must keep the ownership
    /// discipline: pair with [`WriteTxn::root`] / [`WriteTxn::set_root`].
    pub fn forest(&self) -> &'t Forest<P> {
        self.forest
    }

    /// The current working root (owned by the transaction).
    pub fn root(&self) -> Root {
        self.root
    }

    /// Replace the working root with `new_root`, taking ownership of it
    /// and returning the previous root (which the caller now owns — it
    /// is typically consumed by the tree operation that produced
    /// `new_root`).
    pub fn set_root(&mut self, new_root: Root) -> Root {
        std::mem::replace(&mut self.root, new_root)
    }
}
