//! Session pools and the sharded database router: more logical sessions
//! than `P`.
//!
//! The paper fixes the process count `P` at construction; PR 2's
//! [`Database::session`] made the `P` process ids leasable but still
//! fails hard (`Err(Exhausted)`) once all are out. This module decouples
//! *logical* sessions from *physical* process ids in two layers:
//!
//! * [`SessionPool`] — admission control over one database's pid pool.
//!   [`SessionPool::acquire`] parks the caller on a FIFO ticket queue
//!   until a pid frees (a dropping [`Session`] wakes exactly the front
//!   waiter through [`mvcc_vm::PidPool`]'s release hook — one `unpark`
//!   per release, no stampede), so any number of client threads can
//!   share `P` pids; [`SessionPool::acquire_timeout`] bounds the wait
//!   and [`SessionPool::try_acquire`] keeps the non-blocking behavior.
//! * [`Router`] — a fixed-fanout shard router owning `N` independent
//!   [`Database`] instances. Tenant/key-space identifiers map to shards
//!   by seeded hash ([`Router::shard_for`] is stable for the router's
//!   lifetime), so aggregate capacity becomes `N×P` concurrent sessions
//!   — each shard's pool waiting independently — instead of `P` total.
//!
//! The same decouple-logical-from-physical move appears wherever a
//! resource bound is baked into an algorithm (cf. the bounded process
//! naming in the paper's VM problem): the bound stays, a queue and a
//! hash in front of it hide it from callers.
//!
//! # Async admission
//!
//! [`SessionPool::acquire`] parks an OS thread per waiter, which caps
//! concurrent logical sessions at thread-count scale. The async face of
//! the same queue — [`SessionPool::acquire_async`] returning an
//! [`AcquireFuture`], with [`SessionPool::poll_acquire`] as the
//! poll-level form — parks a [`std::task::Waker`] instead, so thousands
//! of pending admissions cost a queue entry each, not a stack. The
//! contract, point by point:
//!
//! * **One queue, one order.** Sync and async waiters draw tickets from
//!   the same monotone dispenser and are served strictly
//!   first-come-first-served; mixing the two modes cannot reorder
//!   admission.
//! * **One wake per release.** A dropping [`Session`] wakes exactly the
//!   front waiter (unpark for a thread, `Waker::wake` for a task) — no
//!   thundering herd in either mode.
//! * **Cancellation hands off.** Dropping a pending [`AcquireFuture`]
//!   surrenders its ticket; if the dropped waiter was the front (so a
//!   release's single wake may have been spent on it), the wake is
//!   forwarded to the next waiter. A cancelled admission can never
//!   strand the queue or leak a pid.
//! * **Re-poll replaces the waker.** A future migrating between tasks
//!   keeps exactly one registered waker — the most recent poll's.
//!
//! No executor ships with the pool (and none is required): [`block_on`]
//! drives one future from sync code. The production consumer is the
//! `mvcc-net` crate's `executor` module — a dedup `ReadySet` handing
//! each connection a `Waker` whose wake re-queues exactly that
//! connection — which lets `mvcc_net::Server`'s single poll loop
//! multiplex thousands of connection-bound admissions onto one thread
//! (each parked request is a queue entry here, not a blocked thread).
//!
//! # Fairness
//!
//! Waiters in [`SessionPool::acquire`] are served strictly
//! first-come-first-served: a storm of late arrivals cannot starve an
//! early waiter. Non-waiting paths ([`SessionPool::try_acquire`],
//! [`Database::session`]) deliberately barge past the queue — they never
//! park, so they take a free pid even while waiters exist. Mixing the
//! two on one database trades strict fairness for the fast path's
//! lock-freedom; use `acquire` everywhere if FIFO order matters.
//!
//! ```
//! use mvcc_core::{Database, Router};
//! use mvcc_core::ftree::U64Map;
//!
//! // One database, two pids, many client threads: acquire() waits
//! // instead of erroring.
//! let db: Database<U64Map> = Database::new(2);
//! std::thread::scope(|s| {
//!     for t in 0..8u64 {
//!         let pool = db.pool();
//!         s.spawn(move || {
//!             let mut session = pool.acquire(); // parks if both pids are out
//!             session.insert(t, t);
//!         });
//!     }
//! });
//! assert_eq!(db.sessions_leased(), 0);
//!
//! // Four databases behind a router: same key, same shard, N×P capacity.
//! let router: Router<U64Map> = Router::new(4, 2);
//! let mut s = router.session(&"tenant-42");
//! s.insert(1, 10);
//! assert_eq!(router.shard_for(&"tenant-42"), router.shard_for(&"tenant-42"));
//! assert_eq!(router.capacity(), 8);
//! ```

use std::collections::VecDeque;
use std::future::Future;
use std::hash::{Hash, Hasher};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};
use std::thread::Thread;
use std::time::{Duration, Instant};

use mvcc_ftree::TreeParams;
use mvcc_vm::{PswfVm, VersionMaintenance, VmKind};

use crate::{Database, Session, SessionError, TxnStats};

/// Error returned by [`SessionPool::acquire_timeout`] when no pid freed
/// within the allowed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireTimeout {
    /// How long the caller waited before giving up.
    pub waited: Duration,
}

impl std::fmt::Display for AcquireTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no process id freed within {:?} (pool still exhausted)",
            self.waited
        )
    }
}

impl std::error::Error for AcquireTimeout {}

/// The parking-based FIFO wait queue behind [`SessionPool::acquire`].
/// One per [`Database`]; every `SessionPool` handle on that database
/// shares it, so fairness is global across handles.
///
/// Each queue entry carries its waiter's [`Thread`] handle, and every
/// wake targets exactly the queue's front via `unpark` — a freed pid
/// costs one wake-up regardless of how many waiters are parked (a
/// condvar `notify_all` here would stampede all `W` waiters per release,
/// O(W²) wake-ups to drain the queue in exactly the oversubscribed
/// regime the pool exists for). `unpark`'s saved-permit semantics close
/// the wake/park race: an unpark landing between a waiter's failed lease
/// attempt and its `park()` makes that park return immediately.
pub(crate) struct WaitQueue {
    inner: Mutex<QueueInner>,
}

/// How a queued waiter is told "you are front; re-check for a pid".
///
/// The sync path ([`SessionPool::acquire`]) parks an OS thread and is
/// woken by `unpark`; the async path ([`SessionPool::poll_acquire`])
/// registers the polling task's [`Waker`]. Both share one queue, one
/// ticket dispenser and therefore one strict FIFO order — a release
/// wakes whichever kind is at the front, exactly once.
enum WakeHandle {
    /// A parked client thread (`unpark`'s saved-permit semantics close
    /// the wake/park race for this arm).
    Thread(Thread),
    /// An async task; `Waker::wake_by_ref` schedules its next poll. A
    /// woken-but-not-yet-polled future that is dropped forwards the
    /// stolen wake from its `Drop` (see [`AcquireState`]).
    Task(Waker),
}

impl WakeHandle {
    fn wake(&self) {
        match self {
            WakeHandle::Thread(t) => t.unpark(),
            WakeHandle::Task(w) => w.wake_by_ref(),
        }
    }
}

struct Waiter {
    /// Ticket from the monotone dispenser; FIFO position key.
    ticket: u64,
    /// Woken when this waiter reaches the front (or was front already)
    /// and should re-check for a pid.
    wake: WakeHandle,
}

struct QueueInner {
    /// Monotone ticket dispenser.
    next_ticket: u64,
    /// Parked (or about-to-park) waiters, front = next to be served.
    queue: VecDeque<Waiter>,
}

impl QueueInner {
    /// Wake the waiter currently at the front, if any.
    fn wake_front(&self) {
        if let Some(w) = self.queue.front() {
            w.wake.wake();
        }
    }
}

impl WaitQueue {
    pub(crate) fn new() -> Self {
        WaitQueue {
            inner: Mutex::new(QueueInner {
                next_ticket: 0,
                queue: VecDeque::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        // No panics occur while the queue lock is held; recover the
        // guard anyway so one poisoned waiter cannot wedge the pool.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A pid freed: wake the front waiter to claim it. Taking the queue
    /// lock is load-bearing even though `unpark`/`wake` itself never
    /// loses a wake: it orders this notify against waiters mid-enqueue,
    /// so the front we see is the front that exists.
    pub(crate) fn notify(&self) {
        self.lock().wake_front();
    }

    /// Parked/arriving waiters (racy snapshot, diagnostics and tests).
    fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Surrender `ticket`'s place in the queue (timeout expiry or an
    /// [`AcquireFuture`] dropped while pending). If the abandoned slot
    /// was the front, a release may already have targeted it — forward
    /// that possibly-stolen wake to the new front so the queue cannot
    /// stall.
    fn cancel(&self, ticket: u64) {
        let mut inner = self.lock();
        let was_front = inner.queue.front().map(|w| w.ticket) == Some(ticket);
        inner.queue.retain(|w| w.ticket != ticket);
        if was_front {
            inner.wake_front();
        }
    }
}

/// A waiting-mode front end over a [`Database`]'s pid pool: logical
/// sessions beyond `P` queue up instead of erroring.
///
/// Obtain with [`Database::pool`]. The pool is a borrowed handle
/// (`Copy`); all handles on one database share one FIFO wait queue, and
/// a dropping [`Session`] wakes it via the pid pool's release hook —
/// there is no polling.
pub struct SessionPool<'db, P: TreeParams, M: VersionMaintenance = PswfVm> {
    db: &'db Database<P, M>,
}

impl<P: TreeParams, M: VersionMaintenance> Clone for SessionPool<'_, P, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<P: TreeParams, M: VersionMaintenance> Copy for SessionPool<'_, P, M> {}

impl<'db, P: TreeParams, M: VersionMaintenance> SessionPool<'db, P, M> {
    pub(crate) fn new(db: &'db Database<P, M>) -> Self {
        SessionPool { db }
    }

    /// The database this pool admits sessions to.
    pub fn database(&self) -> &'db Database<P, M> {
        self.db
    }

    /// Number of pids (the pool's concurrency limit, the paper's `P`).
    pub fn capacity(&self) -> usize {
        self.db.processes()
    }

    /// Waiters currently queued in [`SessionPool::acquire`] /
    /// [`SessionPool::acquire_timeout`] (racy snapshot, diagnostics).
    pub fn waiters(&self) -> usize {
        self.db.waiters.len()
    }

    /// Lease a session, parking FIFO until a pid frees.
    ///
    /// Returns as soon as this caller reaches the queue's front *and* a
    /// pid is free; the returned [`Session`] re-wakes the queue when it
    /// drops. See the module docs for the fairness contract.
    pub fn acquire(&self) -> Session<'db, P, M> {
        match self.acquire_inner(None) {
            Ok(session) => session,
            Err(_) => unreachable!("untimed acquire cannot time out"),
        }
    }

    /// [`SessionPool::acquire`] with a bounded wait: `Err(AcquireTimeout)`
    /// if no pid freed (or the queue ahead did not drain) in `timeout`.
    pub fn acquire_timeout(&self, timeout: Duration) -> Result<Session<'db, P, M>, AcquireTimeout> {
        self.acquire_inner(Some(timeout))
    }

    /// Non-blocking lease — exactly [`Database::session`]: takes a free
    /// pid immediately (barging past any waiters) or returns
    /// `Err(Exhausted)`.
    pub fn try_acquire(&self) -> Result<Session<'db, P, M>, SessionError> {
        self.db.session()
    }

    fn acquire_inner(
        &self,
        timeout: Option<Duration>,
    ) -> Result<Session<'db, P, M>, AcquireTimeout> {
        let db = self.db;
        // A zero-pid database cannot be constructed (the VM constructors
        // require at least one process), so the wait below always has a
        // pid that can eventually free.
        debug_assert!(db.processes() > 0);
        let wq = &db.waiters;
        let start = Instant::now();
        let deadline = timeout.map(|t| start + t);
        let mut inner = wq.lock();
        let me = inner.next_ticket;
        inner.next_ticket += 1;
        inner.queue.push_back(Waiter {
            ticket: me,
            wake: WakeHandle::Thread(std::thread::current()),
        });
        loop {
            // Only the queue's front may take a pid: FIFO by construction.
            if inner.queue.front().map(|w| w.ticket) == Some(me) {
                if let Ok(pid) = db.pids.lease() {
                    inner.queue.pop_front();
                    // Several pids may have freed while we were parked
                    // (their wakes all targeted us, coalescing into one
                    // permit); hand the new front its chance immediately.
                    inner.wake_front();
                    drop(inner);
                    return Ok(Session::new(db, pid));
                }
            }
            drop(inner);
            match deadline {
                None => std::thread::park(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Surrender the slot; if it was blocking the
                        // queue's progress the new front gets re-checked.
                        wq.cancel(me);
                        return Err(AcquireTimeout {
                            waited: start.elapsed(),
                        });
                    }
                    std::thread::park_timeout(d - now);
                }
            }
            inner = wq.lock();
        }
    }

    /// Begin an **async** lease: a [`Future`] resolving to a [`Session`]
    /// once this waiter reaches the front of the same FIFO ticket queue
    /// [`SessionPool::acquire`] parks on — sync and async waiters are
    /// served in one strict arrival order.
    ///
    /// The future is executor-agnostic (no runtime dependency): it
    /// parks a [`Waker`], and a dropping [`Session`] wakes exactly the
    /// front waiter through the pid pool's release hook — one wake per
    /// release, whether the front is a parked thread or a task.
    /// Dropping the future while it is still queued surrenders its
    /// ticket and forwards any wake that already targeted it to the
    /// next waiter, so cancellation can never strand the queue.
    ///
    /// ```
    /// use mvcc_core::Database;
    /// use mvcc_core::ftree::U64Map;
    ///
    /// let db: Database<U64Map> = Database::new(1);
    /// let pool = db.pool();
    /// // A trivial single-future executor is enough to drive it:
    /// let mut session = mvcc_core::pool::block_on(pool.acquire_async());
    /// session.insert(1, 1);
    /// ```
    pub fn acquire_async(&self) -> AcquireFuture<'db, P, M> {
        AcquireFuture {
            pool: *self,
            state: AcquireState::default(),
        }
    }

    /// Poll-level async acquire: the manual, state-explicit form of
    /// [`SessionPool::acquire_async`] (which is a thin wrapper holding
    /// the [`AcquireState`] for you).
    ///
    /// The first poll enqueues a ticket into the FIFO wait queue and
    /// records it in `state`; subsequent polls refresh the stored
    /// [`Waker`] (re-polling from a different task is fine — the newest
    /// waker wins). Returns `Ready(session)` only when this ticket is
    /// the queue's front **and** a pid leases, preserving strict
    /// arrival order against every other waiter, sync or async.
    ///
    /// `state` must be dropped (or re-polled to `Ready`) for the ticket
    /// to leave the queue; see [`AcquireState`] for the cancellation
    /// contract.
    ///
    /// # Panics
    /// If `state` is already registered with a different database's
    /// pool.
    pub fn poll_acquire(
        &self,
        cx: &mut Context<'_>,
        state: &mut AcquireState,
    ) -> Poll<Session<'db, P, M>> {
        let db = self.db;
        let wq = &db.waiters;
        let mut inner = wq.lock();
        let me = match (&state.queue, state.ticket) {
            (Some(queue), Some(ticket)) => {
                assert!(
                    Arc::ptr_eq(queue, wq),
                    "AcquireState is registered with a different pool"
                );
                // Waker replacement: a future may migrate between tasks
                // (e.g. `select!`-style composition); the wake must go
                // to whoever polled last.
                let w = inner
                    .queue
                    .iter_mut()
                    .find(|w| w.ticket == ticket)
                    .expect("registered ticket is always in the queue");
                match &w.wake {
                    WakeHandle::Task(old) if old.will_wake(cx.waker()) => {}
                    _ => w.wake = WakeHandle::Task(cx.waker().clone()),
                }
                ticket
            }
            _ => {
                let ticket = inner.next_ticket;
                inner.next_ticket += 1;
                inner.queue.push_back(Waiter {
                    ticket,
                    wake: WakeHandle::Task(cx.waker().clone()),
                });
                state.queue = Some(Arc::clone(wq));
                state.ticket = Some(ticket);
                ticket
            }
        };
        // Only the queue's front may take a pid: FIFO by construction
        // (same discipline as the sync path — the two share the queue).
        if inner.queue.front().map(|w| w.ticket) == Some(me) {
            if let Ok(pid) = db.pids.lease() {
                inner.queue.pop_front();
                // The ticket outlives resolution (admission-order
                // audits); only the queue handle is cleared.
                state.queue = None;
                // Coalesced permits: several pids may have freed while
                // we were pending; hand the new front its chance.
                inner.wake_front();
                drop(inner);
                return Poll::Ready(Session::new(db, pid));
            }
        }
        Poll::Pending
    }

    /// [`SessionPool::poll_acquire`] with an admission deadline: once
    /// `state`'s deadline has passed, the ticket is surrendered through
    /// the same wait-queue cancellation path a dropped future uses
    /// (wake-forwarding included — an expiring front waiter cannot
    /// stall the queue) and the poll resolves `Err(AcquireTimeout)`.
    ///
    /// Expiry is *observed at poll time*: no timer fires, so a pending
    /// admission past its deadline stays queued until the driving loop
    /// polls it again. Callers with latency SLOs re-poll on a coarse
    /// tick (see `mvcc_net::Server`), paying one queue scan per tick
    /// instead of a timer per waiter.
    ///
    /// A `state` without a deadline ([`AcquireState::default`]) never
    /// expires; the call is then exactly [`SessionPool::poll_acquire`].
    pub fn poll_acquire_deadline(
        &self,
        cx: &mut Context<'_>,
        state: &mut AcquireState,
    ) -> Poll<Result<Session<'db, P, M>, AcquireTimeout>> {
        let started = *state.started.get_or_insert_with(Instant::now);
        if let Some(d) = state.deadline {
            if Instant::now() >= d {
                // Surrender the slot exactly as Drop would; `ticket`
                // survives for admission-order audits.
                if let (Some(wq), Some(ticket)) = (state.queue.take(), state.ticket) {
                    wq.cancel(ticket);
                }
                return Poll::Ready(Err(AcquireTimeout {
                    waited: started.elapsed(),
                }));
            }
        }
        self.poll_acquire(cx, state).map(Ok)
    }

    /// Async [`SessionPool::acquire_timeout`]: a future resolving to
    /// `Ok(session)` in FIFO order, or `Err(AcquireTimeout)` once
    /// `timeout` elapses without a pid.
    ///
    /// The deadline is checked at each poll (see
    /// [`SessionPool::poll_acquire_deadline`] for the no-timer
    /// contract): an executor that only wakes the future on pool
    /// releases will not notice the expiry until something polls it,
    /// so pair the future with a periodic tick when expiry must be
    /// prompt.
    pub fn acquire_async_timeout(&self, timeout: Duration) -> AcquireTimeoutFuture<'db, P, M> {
        AcquireTimeoutFuture {
            pool: *self,
            state: AcquireState::with_deadline(Instant::now() + timeout),
        }
    }

    /// Point-in-time admission gauges (each field a racy snapshot):
    /// the shed-above-depth policy in `mvcc-net` reads
    /// [`PoolStats::waiters`] against its threshold before enqueuing.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            capacity: self.capacity(),
            leased: self.db.sessions_leased(),
            waiters: self.waiters(),
        }
    }

    /// Lease a session under a **lease timeout**: if the holder lets
    /// `lease` elapse without completing a transaction through the
    /// returned [`LeaseGuard`], a subsequent [`SessionPool::reap_expired`]
    /// sweep reclaims the pid for other waiters, and the stalled
    /// holder's next access observes [`LeaseRevoked`] instead of
    /// silently aliasing the pid. The deadline renews on every
    /// completed [`LeaseGuard::with`], so `lease` bounds *idle gaps
    /// between transactions*, not total session lifetime.
    ///
    /// Parks FIFO like [`SessionPool::acquire`] while all pids are out.
    pub fn acquire_leased(&self, lease: Duration) -> LeaseGuard<'db, P, M> {
        self.install_lease(self.acquire(), lease)
    }

    /// [`SessionPool::acquire_leased`] with a bounded admission wait.
    pub fn acquire_leased_timeout(
        &self,
        timeout: Duration,
        lease: Duration,
    ) -> Result<LeaseGuard<'db, P, M>, AcquireTimeout> {
        Ok(self.install_lease(self.acquire_timeout(timeout)?, lease))
    }

    fn install_lease(&self, session: Session<'db, P, M>, lease: Duration) -> LeaseGuard<'db, P, M> {
        let db = self.db;
        let pid = session.pid();
        let cell = Arc::new(LeaseCell {
            state: AtomicU64::new(LEASE_IDLE),
            deadline_ns: AtomicU64::new(db.leases.now_ns().saturating_add(as_ns(lease))),
        });
        db.leases.install(pid, Arc::clone(&cell));
        LeaseGuard {
            session: Some(session),
            cell,
            pool: *self,
            pid,
            lease,
        }
    }

    /// Sweep the lease registry and reclaim every pid whose
    /// [`LeaseGuard`] deadline has passed *between* transactions
    /// (a lease mid-transaction is never revoked — the holder owns an
    /// acquired version the reaper must not free from under it).
    /// Each reclaimed pid is released to the pool immediately, waking
    /// the front waiter; the stalled guard learns of the revocation on
    /// its next use. Returns how many pids were reclaimed.
    ///
    /// Nothing calls this automatically — drive it from a maintenance
    /// tick (the `mvcc-net` server's scan loop does).
    pub fn reap_expired(&self) -> usize {
        let db = self.db;
        let now = db.leases.now_ns();
        let mut slots = db.leases.lock_slots();
        let mut reaped = 0;
        for (pid, slot) in slots.iter_mut().enumerate() {
            let Some(cell) = slot else { continue };
            if cell.deadline_ns.load(Ordering::Acquire) > now {
                continue;
            }
            // Only an *idle* lease is revocable; the CAS loses cleanly
            // to a holder racing into a transaction (it renews) or a
            // guard dropping (it releases the pid itself).
            if cell
                .state
                .compare_exchange(
                    LEASE_IDLE,
                    LEASE_REVOKED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                *slot = None;
                // Idle ⇒ the holder has no acquired version, so the pid
                // is safe to hand out; release wakes the wait queue.
                db.pids.release(pid);
                reaped += 1;
            }
        }
        reaped
    }
}

/// Point-in-time gauges over one pool's admission state
/// ([`SessionPool::stats`]); every field is a racy snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// The concurrency limit (the paper's `P`).
    pub capacity: usize,
    /// Pids currently leased out.
    pub leased: usize,
    /// Waiters queued for admission — the queue depth load-shedding
    /// policies compare against their threshold.
    pub waiters: usize,
}

const LEASE_IDLE: u64 = 0;
const LEASE_IN_TXN: u64 = 1;
const LEASE_REVOKED: u64 = 2;
const LEASE_DEAD: u64 = 3;

fn as_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One lease's shared state: the guard and the registry each hold an
/// `Arc`, so a reaper revoking an idle lease and the guard observing
/// the revocation later need no further rendezvous.
pub(crate) struct LeaseCell {
    /// `LEASE_IDLE` / `LEASE_IN_TXN` / `LEASE_REVOKED` / `LEASE_DEAD`.
    /// All ownership transfers go through CAS on this word: the reaper
    /// may only take IDLE→REVOKED, the guard takes IDLE→IN_TXN around
    /// each transaction and IDLE/IN_TXN→DEAD on drop.
    state: AtomicU64,
    /// Lease expiry in nanoseconds since the registry epoch; renewed
    /// (before state returns to IDLE) on every completed transaction.
    deadline_ns: AtomicU64,
}

/// Per-database lease table, indexed by pid ([`Database`] owns one).
/// A slot is occupied exactly while a [`LeaseGuard`] holds that pid and
/// has not been revoked.
pub(crate) struct LeaseRegistry {
    /// Epoch for `deadline_ns` (monotonic, per registry).
    epoch: Instant,
    slots: Mutex<Vec<Option<Arc<LeaseCell>>>>,
}

impl LeaseRegistry {
    pub(crate) fn new(processes: usize) -> Self {
        LeaseRegistry {
            epoch: Instant::now(),
            slots: Mutex::new(vec![None; processes]),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn lock_slots(&self) -> MutexGuard<'_, Vec<Option<Arc<LeaseCell>>>> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn install(&self, pid: usize, cell: Arc<LeaseCell>) {
        let mut slots = self.lock_slots();
        debug_assert!(slots[pid].is_none(), "pid leased twice");
        slots[pid] = Some(cell);
    }

    fn clear(&self, pid: usize) {
        self.lock_slots()[pid] = None;
    }
}

/// Error returned by [`LeaseGuard::with`] after
/// [`SessionPool::reap_expired`] reclaimed the guard's pid: the lease
/// deadline passed while the holder sat between transactions, and the
/// pid may already belong to someone else. The guard is spent — drop
/// it and acquire again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseRevoked {
    /// The pid that was reclaimed.
    pub pid: usize,
}

impl std::fmt::Display for LeaseRevoked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "session lease on pid {} was revoked (lease deadline passed between transactions)",
            self.pid
        )
    }
}

impl std::error::Error for LeaseRevoked {}

/// A [`Session`] held under a lease deadline
/// ([`SessionPool::acquire_leased`]): every transaction goes through
/// [`LeaseGuard::with`], which renews the deadline on completion. Let
/// the deadline lapse between transactions and a
/// [`SessionPool::reap_expired`] sweep hands the pid to the next
/// waiter; the guard's next `with` then returns [`LeaseRevoked`]
/// instead of running on a pid it no longer owns.
///
/// Revocation is strictly *between* transactions: a closure running
/// inside `with` marks the lease in-transaction, which the reaper
/// never touches, so an acquired version is never freed mid-read.
pub struct LeaseGuard<'db, P: TreeParams, M: VersionMaintenance = PswfVm> {
    /// `None` only after revocation has been observed (the revoked
    /// session is dropped with its pid release suppressed).
    session: Option<Session<'db, P, M>>,
    cell: Arc<LeaseCell>,
    pool: SessionPool<'db, P, M>,
    pid: usize,
    lease: Duration,
}

impl<'db, P: TreeParams, M: VersionMaintenance> LeaseGuard<'db, P, M> {
    /// The leased pid (stable for the guard's lifetime, though after
    /// revocation it may be serving another holder).
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Has this guard observed its revocation? (`true` ⇒ every further
    /// [`LeaseGuard::with`] fails; racy only in the benign direction —
    /// `false` may become `true` at the next `with`.)
    pub fn is_revoked(&self) -> bool {
        self.session.is_none() || self.cell.state.load(Ordering::Acquire) == LEASE_REVOKED
    }

    /// Run one transaction (or several — anything on the session) under
    /// the lease, renewing the deadline on completion. Returns
    /// [`LeaseRevoked`] without running `f` if the reaper reclaimed the
    /// pid first.
    pub fn with<R>(
        &mut self,
        f: impl FnOnce(&mut Session<'db, P, M>) -> R,
    ) -> Result<R, LeaseRevoked> {
        match self.cell.state.compare_exchange(
            LEASE_IDLE,
            LEASE_IN_TXN,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {}
            Err(_) => {
                // REVOKED (or the session already surrendered): the pid
                // belongs to someone else now.
                self.surrender();
                return Err(LeaseRevoked { pid: self.pid });
            }
        }
        let session = self
            .session
            .as_mut()
            .expect("session present while the lease is live");
        let r = f(session);
        // Renew *before* going idle so the reaper can never see an
        // idle lease with a stale pre-transaction deadline.
        let db = self.pool.db;
        self.cell.deadline_ns.store(
            db.leases.now_ns().saturating_add(as_ns(self.lease)),
            Ordering::Release,
        );
        self.cell.state.store(LEASE_IDLE, Ordering::Release);
        Ok(r)
    }

    /// Drop the session with its pid release suppressed: the reaper
    /// already released (and possibly re-leased) the pid.
    fn surrender(&mut self) {
        if let Some(mut s) = self.session.take() {
            s.revoked = true;
        }
    }
}

impl<P: TreeParams, M: VersionMaintenance> Drop for LeaseGuard<'_, P, M> {
    fn drop(&mut self) {
        // IDLE→DEAD (normal) or IN_TXN→DEAD (a panicking `with`
        // closure unwound before restoring IDLE; the reaper never
        // touched IN_TXN, so the pid is still ours to release): clear
        // the registry slot, then let the session release the pid.
        for live in [LEASE_IDLE, LEASE_IN_TXN] {
            if self
                .cell
                .state
                .compare_exchange(live, LEASE_DEAD, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.pool.db.leases.clear(self.pid);
                return; // `session` drops normally, releasing the pid
            }
        }
        // REVOKED: the reaper owns the slot and released the pid.
        self.surrender();
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for LeaseGuard<'_, P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaseGuard")
            .field("pid", &self.pid)
            .field("lease", &self.lease)
            .field("revoked", &self.is_revoked())
            .finish()
    }
}

/// Queue-registration state for [`SessionPool::poll_acquire`]: which
/// ticket (if any) this waiter holds in the FIFO wait queue.
///
/// `Default::default()` is unregistered; the first `poll_acquire` with
/// it enqueues a ticket. Dropping a registered state **surrenders the
/// ticket**: the slot leaves the queue, and if it was the front — a
/// release may already have spent its one wake on it — the wake is
/// forwarded to the new front. That is the pool-checkout handoff
/// contract that makes cancellation (dropping an [`AcquireFuture`]
/// mid-wait) safe: no pid is leaked and no wake is lost.
#[derive(Default)]
pub struct AcquireState {
    /// The wait queue this state is registered with, while queued.
    /// Holding it by `Arc` keeps cancel-on-drop sound even if the state
    /// outlives the pool handle; `None` before the first poll and after
    /// resolution.
    queue: Option<Arc<WaitQueue>>,
    /// The FIFO ticket drawn by the first poll. Deliberately *not*
    /// cleared on resolution: tickets are handed out in arrival order,
    /// so a granted ticket is the admission-order audit trail (the
    /// `mvcc-net` server asserts per-shard monotonicity with it).
    ticket: Option<u64>,
    /// Admission deadline checked by [`SessionPool::poll_acquire_deadline`]
    /// (`None` = wait forever, the [`SessionPool::poll_acquire`] contract).
    deadline: Option<Instant>,
    /// When the first poll enqueued the ticket; the expiry error reports
    /// `waited` from here.
    started: Option<Instant>,
}

impl AcquireState {
    /// An unregistered state whose admission expires at `deadline`: once
    /// [`SessionPool::poll_acquire_deadline`] observes the deadline has
    /// passed, it surrenders the ticket (same cancellation path as
    /// dropping the state) and resolves `Err(AcquireTimeout)`.
    ///
    /// No timer fires at the deadline — expiry is observed at the *next
    /// poll*, so the driving loop must re-poll on its own tick (the
    /// `mvcc-net` server's scan-loop tick does exactly this).
    pub fn with_deadline(deadline: Instant) -> Self {
        AcquireState {
            queue: None,
            ticket: None,
            deadline: Some(deadline),
            started: None,
        }
    }

    /// The FIFO ticket drawn by the first poll (`None` only before it).
    /// Tickets are handed out in arrival order and survive resolution,
    /// so admission order can be audited against them.
    pub fn ticket(&self) -> Option<u64> {
        self.ticket
    }

    /// The admission deadline, if one was set ([`AcquireState::with_deadline`]).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

impl Drop for AcquireState {
    fn drop(&mut self) {
        if let (Some(wq), Some(ticket)) = (self.queue.take(), self.ticket) {
            wq.cancel(ticket);
        }
    }
}

impl std::fmt::Debug for AcquireState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcquireState")
            .field("ticket", &self.ticket())
            .finish()
    }
}

/// The future returned by [`SessionPool::acquire_async`]: resolves to a
/// [`Session`] in strict FIFO order with every other waiter on the same
/// database. See [`SessionPool::poll_acquire`] for the polling contract
/// and [`AcquireState`] for what dropping a pending future does.
pub struct AcquireFuture<'db, P: TreeParams, M: VersionMaintenance = PswfVm> {
    pool: SessionPool<'db, P, M>,
    state: AcquireState,
}

impl<'db, P: TreeParams, M: VersionMaintenance> AcquireFuture<'db, P, M> {
    /// The FIFO ticket drawn by this future's first poll (`None` only
    /// before it; the ticket survives resolution for admission-order
    /// audits).
    pub fn ticket(&self) -> Option<u64> {
        self.state.ticket()
    }
}

impl<'db, P: TreeParams, M: VersionMaintenance> Future for AcquireFuture<'db, P, M> {
    type Output = Session<'db, P, M>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // No self-references: the future is plain data (pool handle +
        // ticket state), hence `Unpin` and safe to project by value.
        let this = self.get_mut();
        this.pool.poll_acquire(cx, &mut this.state)
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for AcquireFuture<'_, P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcquireFuture")
            .field("ticket", &self.ticket())
            .field("pool", &self.pool)
            .finish()
    }
}

/// The future returned by [`SessionPool::acquire_async_timeout`]:
/// FIFO admission like [`AcquireFuture`], but resolves
/// `Err(AcquireTimeout)` once its deadline is observed past at a poll.
/// Dropping it pending surrenders its ticket like any other waiter.
pub struct AcquireTimeoutFuture<'db, P: TreeParams, M: VersionMaintenance = PswfVm> {
    pool: SessionPool<'db, P, M>,
    state: AcquireState,
}

impl<'db, P: TreeParams, M: VersionMaintenance> AcquireTimeoutFuture<'db, P, M> {
    /// The FIFO ticket drawn by this future's first poll (`None` only
    /// before it).
    pub fn ticket(&self) -> Option<u64> {
        self.state.ticket()
    }

    /// The admission deadline this future expires at.
    pub fn deadline(&self) -> Instant {
        self.state
            .deadline()
            .expect("acquire_async_timeout always sets a deadline")
    }
}

impl<'db, P: TreeParams, M: VersionMaintenance> Future for AcquireTimeoutFuture<'db, P, M> {
    type Output = Result<Session<'db, P, M>, AcquireTimeout>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        this.pool.poll_acquire_deadline(cx, &mut this.state)
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for AcquireTimeoutFuture<'_, P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcquireTimeoutFuture")
            .field("ticket", &self.ticket())
            .field("deadline", &self.deadline())
            .finish()
    }
}

/// Drive one future to completion on the current thread, parking
/// between polls — the minimal executor. Enough to use
/// [`SessionPool::acquire_async`] from synchronous code and tests; the
/// `mvcc-net` server brings its own readiness loop instead.
///
/// It re-polls only when woken, so a *poll-observed* deadline —
/// [`SessionPool::acquire_async_timeout`] on a pool nothing releases —
/// never fires under it: there is no timer to produce the wake. From
/// synchronous code use [`SessionPool::acquire_timeout`] (its parked
/// thread times out on its own); reserve the deadline future for
/// executors with a periodic tick.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    /// Waker that unparks the blocked thread.
    struct ThreadWaker(Thread);
    impl std::task::Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for SessionPool<'_, P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("capacity", &self.capacity())
            .field("leased", &self.db.sessions_leased())
            .field("waiters", &self.waiters())
            .finish()
    }
}

/// Default hash seed for [`Router::new`]; an arbitrary odd 64-bit
/// constant (splitmix64's increment) so shard placement is stable across
/// runs unless a seed is chosen explicitly.
const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fixed-fanout shard router: `N` independent [`Database`] instances
/// behind one seeded-hash key map, for `N×P` aggregate session capacity.
///
/// Shards are fully independent databases — separate forests, version
/// maintenance objects and pid pools — so cross-shard transactions do not
/// exist; a key's transactions all land on [`Router::shard_for`]`(key)`.
/// That is the scaling contract: pick the routing key (tenant id, user
/// id, key-space prefix) so that work that must be atomic together hashes
/// together.
///
/// [`Router::session`] leases through the shard's [`SessionPool`] —
/// parking, not erroring, when the shard's pids are all out. Cross-shard
/// sweeps (stats, GC checks) go through [`Router::iter`].
pub struct Router<P: TreeParams, M: VersionMaintenance = PswfVm> {
    shards: Box<[Database<P, M>]>,
    seed: u64,
}

impl<P: TreeParams> Router<P, PswfVm> {
    /// `shards` empty PSWF databases with `processes_per_shard` pids
    /// each, keyed with the default seed.
    ///
    /// # Panics
    /// If `shards == 0` or `processes_per_shard == 0`.
    pub fn new(shards: usize, processes_per_shard: usize) -> Self {
        Self::with_seed(shards, processes_per_shard, DEFAULT_SEED)
    }

    /// [`Router::new`] with an explicit hash seed (e.g. to de-correlate
    /// two routers over the same key population).
    pub fn with_seed(shards: usize, processes_per_shard: usize, seed: u64) -> Self {
        assert!(processes_per_shard > 0, "shards need at least one pid");
        Self::from_databases(
            (0..shards)
                .map(|_| Database::new(processes_per_shard))
                .collect(),
            seed,
        )
    }
}

impl<P: TreeParams> Router<P, Box<dyn VersionMaintenance>> {
    /// A router whose shards run the given VM algorithm family.
    ///
    /// # Panics
    /// If `shards == 0` or `processes_per_shard == 0`.
    pub fn with_kind(kind: VmKind, shards: usize, processes_per_shard: usize) -> Self {
        assert!(processes_per_shard > 0, "shards need at least one pid");
        Self::from_databases(
            (0..shards)
                .map(|_| Database::with_kind(kind, processes_per_shard))
                .collect(),
            DEFAULT_SEED,
        )
    }
}

impl<P: TreeParams, M: VersionMaintenance> Router<P, M> {
    /// Assemble a router from pre-built shard databases (heterogeneous
    /// sizing, pre-seeded contents, custom VM instances).
    ///
    /// # Panics
    /// If `databases` is empty.
    pub fn from_databases(databases: Vec<Database<P, M>>, seed: u64) -> Self {
        assert!(!databases.is_empty(), "router needs at least one shard");
        Router {
            shards: databases.into_boxed_slice(),
            seed,
        }
    }

    /// Number of shards (`N`).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Aggregate session capacity: the sum of every shard's `P`.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|db| db.processes()).sum()
    }

    /// The shard index `key` routes to. Stable for the router's
    /// lifetime: the same key always lands on the same shard.
    pub fn shard_for<K: Hash + ?Sized>(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        hasher.write_u64(self.seed);
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// The shard database at `index` — the escape hatch for callers that
    /// computed (or pinned) a placement themselves.
    ///
    /// # Panics
    /// If `index >= shards()`; [`Router::try_with_shard`] is the
    /// non-panicking form.
    pub fn with_shard(&self, index: usize) -> &Database<P, M> {
        &self.shards[index]
    }

    /// [`Router::with_shard`] without the panic: `None` when `index` is
    /// not a shard (e.g. an index computed against a differently-sized
    /// router).
    pub fn try_with_shard(&self, index: usize) -> Option<&Database<P, M>> {
        self.shards.get(index)
    }

    /// The shard database `key` routes to.
    pub fn database_for<K: Hash + ?Sized>(&self, key: &K) -> &Database<P, M> {
        self.with_shard(self.shard_for(key))
    }

    /// Lease a session on `key`'s shard, parking FIFO (per shard) until
    /// one of that shard's pids frees.
    pub fn session<K: Hash + ?Sized>(&self, key: &K) -> Session<'_, P, M> {
        self.database_for(key).pool().acquire()
    }

    /// [`Router::session`] with a bounded wait.
    pub fn session_timeout<K: Hash + ?Sized>(
        &self,
        key: &K,
        timeout: Duration,
    ) -> Result<Session<'_, P, M>, AcquireTimeout> {
        self.database_for(key).pool().acquire_timeout(timeout)
    }

    /// Non-blocking lease on `key`'s shard (`Err(Exhausted)` when that
    /// shard's pids are all out, even if other shards have capacity —
    /// keys do not spill across shards).
    pub fn try_session<K: Hash + ?Sized>(
        &self,
        key: &K,
    ) -> Result<Session<'_, P, M>, SessionError> {
        self.database_for(key).session()
    }

    /// Iterate the shards in index order — the cross-shard sweep for
    /// stats aggregation, GC/quiescence checks and maintenance.
    pub fn iter(&self) -> std::slice::Iter<'_, Database<P, M>> {
        self.shards.iter()
    }

    /// Transaction counters summed across shards (same staleness caveat
    /// as [`Database::stats`]: live sessions flush on drop).
    pub fn stats(&self) -> TxnStats {
        self.iter().fold(TxnStats::default(), |acc, db| {
            let s = db.stats();
            TxnStats {
                commits: acc.commits + s.commits,
                aborts: acc.aborts + s.aborts,
                reads: acc.reads + s.reads,
            }
        })
    }

    /// Uncollected versions summed across shards (quiescent routers
    /// report exactly `shards()`).
    pub fn live_versions(&self) -> u64 {
        self.iter().map(|db| db.live_versions()).sum()
    }

    /// Currently leased sessions summed across shards (racy snapshot).
    pub fn sessions_leased(&self) -> usize {
        self.iter().map(|db| db.sessions_leased()).sum()
    }

    /// Admission gauges summed across shards ([`SessionPool::stats`]
    /// per shard via [`Router::with_shard`] for the breakdown).
    pub fn pool_stats(&self) -> PoolStats {
        self.iter().fold(PoolStats::default(), |acc, db| {
            let s = db.pool().stats();
            PoolStats {
                capacity: acc.capacity + s.capacity,
                leased: acc.leased + s.leased,
                waiters: acc.waiters + s.waiters,
            }
        })
    }

    /// Run [`SessionPool::reap_expired`] on every shard; returns the
    /// total pids reclaimed.
    pub fn reap_leases(&self) -> usize {
        self.iter().map(|db| db.pool().reap_expired()).sum()
    }
}

impl<'r, P: TreeParams, M: VersionMaintenance> IntoIterator for &'r Router<P, M> {
    type Item = &'r Database<P, M>;
    type IntoIter = std::slice::Iter<'r, Database<P, M>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for Router<P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.shards())
            .field("capacity", &self.capacity())
            .field("leased", &self.sessions_leased())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_ftree::U64Map;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn acquire_takes_free_pid_without_waiting() {
        let db: Database<U64Map> = Database::new(2);
        let pool = db.pool();
        let mut a = pool.acquire();
        let mut b = pool.acquire();
        a.insert(1, 1);
        b.insert(2, 2);
        assert_eq!(pool.waiters(), 0);
        assert_eq!(db.sessions_leased(), 2);
    }

    #[test]
    fn acquire_parks_until_release() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let first = pool.acquire();
        let entered = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                entered.store(1, Ordering::SeqCst);
                let mut session = pool.acquire(); // must park: sole pid is out
                session.insert(7, 7);
                session.pid()
            });
            // Wait until the waiter is actually queued, then free the pid.
            while pool.waiters() == 0 {
                std::thread::yield_now();
            }
            assert_eq!(entered.load(Ordering::SeqCst), 1);
            let freed = first.pid();
            drop(first);
            assert_eq!(handle.join().unwrap(), freed, "waiter got the freed pid");
        });
        assert_eq!(db.sessions_leased(), 0);
    }

    #[test]
    fn acquire_timeout_expires_and_leaves_queue_clean() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let held = pool.acquire();
        let err = pool
            .acquire_timeout(Duration::from_millis(20))
            .expect_err("sole pid is held");
        assert!(err.waited >= Duration::from_millis(20));
        assert_eq!(pool.waiters(), 0, "expired waiter removed itself");
        drop(held);
        // And a timed acquire that can succeed, does.
        let s = pool.acquire_timeout(Duration::from_secs(5)).unwrap();
        drop(s);
    }

    #[test]
    fn try_acquire_matches_session_behavior() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let held = pool.try_acquire().unwrap();
        assert!(matches!(
            pool.try_acquire(),
            Err(SessionError::Exhausted { processes: 1 })
        ));
        drop(held);
        assert!(pool.try_acquire().is_ok());
    }

    #[test]
    fn acquire_async_resolves_immediately_on_a_free_pid() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let mut session = block_on(pool.acquire_async());
        session.insert(1, 10);
        drop(session);
        assert_eq!(db.sessions_leased(), 0);
        assert_eq!(pool.waiters(), 0);
    }

    #[test]
    fn acquire_async_waits_for_release_and_is_woken_once() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let held = pool.acquire();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let mut session = block_on(pool.acquire_async());
                session.insert(2, 20);
                session.pid()
            });
            while pool.waiters() == 0 {
                std::thread::yield_now();
            }
            let freed = held.pid();
            drop(held);
            assert_eq!(waiter.join().unwrap(), freed, "waiter got the freed pid");
        });
        assert_eq!(db.sessions_leased(), 0);
    }

    #[test]
    fn acquire_state_ticket_reports_queue_position() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let held = pool.acquire();
        let mut fut = pool.acquire_async();
        assert_eq!(fut.ticket(), None, "not queued before the first poll");
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        assert!(fut.ticket().is_some(), "first poll queues a ticket");
        assert_eq!(pool.waiters(), 1);
        drop(fut);
        assert_eq!(pool.waiters(), 0, "dropped future surrendered its slot");
        drop(held);
    }

    #[test]
    fn poll_acquire_deadline_expires_only_when_observed() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let held = pool.acquire();
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let mut state = AcquireState::with_deadline(Instant::now() + Duration::from_millis(5));
        assert!(pool.poll_acquire_deadline(&mut cx, &mut state).is_pending());
        assert_eq!(pool.waiters(), 1);
        std::thread::sleep(Duration::from_millis(10));
        // Deadline long past, but nothing fired: expiry happens *here*.
        match pool.poll_acquire_deadline(&mut cx, &mut state) {
            Poll::Ready(Err(err)) => assert!(err.waited >= Duration::from_millis(5)),
            other => panic!("expected expiry, got {other:?}", other = other.is_ready()),
        }
        assert_eq!(pool.waiters(), 0, "expired waiter left the queue");
        drop(held);
        // A fresh deadline admission on a free pid resolves immediately.
        let mut ok = AcquireState::with_deadline(Instant::now() + Duration::from_secs(5));
        assert!(pool.poll_acquire_deadline(&mut cx, &mut ok).is_ready());
    }

    #[test]
    fn acquire_async_timeout_resolves_on_free_pid() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let mut s = block_on(pool.acquire_async_timeout(Duration::from_secs(5))).unwrap();
        s.insert(1, 1);
        drop(s);
        assert_eq!(db.sessions_leased(), 0);
    }

    #[test]
    fn lease_guard_normal_drop_releases_pid() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let mut g = pool.acquire_leased(Duration::from_secs(60));
        g.with(|s| s.insert(1, 10)).unwrap();
        assert!(!g.is_revoked());
        assert_eq!(db.sessions_leased(), 1);
        drop(g);
        assert_eq!(db.sessions_leased(), 0, "guard drop released the pid");
        assert_eq!(pool.reap_expired(), 0, "registry slot cleared on drop");
        assert_eq!(pool.acquire().get(&1), Some(10));
    }

    #[test]
    fn expired_idle_lease_is_reaped_and_guard_sees_revocation() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let mut g = pool.acquire_leased(Duration::from_millis(1));
        g.with(|s| s.insert(1, 10)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(pool.reap_expired(), 1, "idle lease past deadline reaped");
        assert_eq!(db.sessions_leased(), 0, "pid back in the pool");
        // The next waiter gets the pid while the stalled guard lives.
        let mut fresh = pool.acquire();
        assert_eq!(fresh.get(&1), Some(10));
        assert!(g.is_revoked());
        assert_eq!(
            g.with(|s| s.insert(2, 20)).unwrap_err(),
            LeaseRevoked { pid: fresh.pid() }
        );
        drop(g);
        drop(fresh);
        assert_eq!(db.sessions_leased(), 0, "no double release, no leak");
    }

    #[test]
    fn lease_mid_transaction_is_never_revoked() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let mut g = pool.acquire_leased(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        g.with(|s| {
            // In-transaction: a sweep right now must skip us even
            // though the deadline is long past.
            std::thread::sleep(Duration::from_millis(5));
            assert_eq!(pool.reap_expired(), 0, "IN_TXN lease untouchable");
            s.insert(1, 1);
        })
        .expect("completed transaction renewed the lease");
        assert!(!g.is_revoked());
        drop(g);
        assert_eq!(db.sessions_leased(), 0);
    }

    #[test]
    fn pool_stats_gauges_track_admission_state() {
        let db: Database<U64Map> = Database::new(2);
        let pool = db.pool();
        assert_eq!(
            pool.stats(),
            PoolStats {
                capacity: 2,
                leased: 0,
                waiters: 0
            }
        );
        let a = pool.acquire();
        let b = pool.acquire();
        let s = pool.stats();
        assert_eq!((s.leased, s.waiters), (2, 0));
        std::thread::scope(|scope| {
            scope.spawn(|| drop(pool.acquire()));
            while pool.stats().waiters == 0 {
                std::thread::yield_now();
            }
            drop(a);
        });
        drop(b);
        assert_eq!(pool.stats().leased, 0);
    }

    #[test]
    fn router_routes_same_key_to_same_shard() {
        let router: Router<U64Map> = Router::new(4, 1);
        for key in 0u64..64 {
            let first = router.shard_for(&key);
            assert!(first < 4);
            for _ in 0..3 {
                assert_eq!(router.shard_for(&key), first, "unstable placement");
            }
        }
    }

    #[test]
    fn router_shards_are_independent() {
        let router: Router<U64Map> = Router::new(4, 2);
        // Find two keys on different shards.
        let (a, b) = {
            let a = 0u64;
            let b = (1u64..)
                .find(|k| router.shard_for(k) != router.shard_for(&a))
                .unwrap();
            (a, b)
        };
        router.session(&a).insert(1, 100);
        // Shard(b) never saw the write.
        assert_eq!(router.session(&b).get(&1), None);
        assert_eq!(router.session(&a).get(&1), Some(100));
        // Aggregates roll up across shards.
        assert_eq!(router.stats().commits, 1);
        assert_eq!(router.live_versions(), 4, "one live version per shard");
        assert_eq!(router.sessions_leased(), 0);
        assert_eq!(router.capacity(), 8);
    }

    #[test]
    fn router_seed_changes_placement_space() {
        // Different seeds must not produce identical placement for every
        // key (2^-64-ish chance per key of colliding by accident).
        let a: Router<U64Map> = Router::with_seed(8, 1, 1);
        let b: Router<U64Map> = Router::with_seed(8, 1, 2);
        let moved = (0u64..256)
            .filter(|k| a.shard_for(k) != b.shard_for(k))
            .count();
        assert!(moved > 0, "seed has no effect on placement");
    }

    #[test]
    fn router_escape_hatch_pins_explicit_shards() {
        let router: Router<U64Map> = Router::new(3, 1);
        let shard = router.shard_for(&"tenant");
        // `with_shard` + the database API reaches the same data as the
        // keyed path.
        router.session(&"tenant").insert(9, 90);
        let mut direct = router.with_shard(shard).pool().acquire();
        assert_eq!(direct.get(&9), Some(90));
        // IntoIterator sweeps all shards.
        assert_eq!((&router).into_iter().count(), 3);
    }
}
