//! Session pools and the sharded database router: more logical sessions
//! than `P`.
//!
//! The paper fixes the process count `P` at construction; PR 2's
//! [`Database::session`] made the `P` process ids leasable but still
//! fails hard (`Err(Exhausted)`) once all are out. This module decouples
//! *logical* sessions from *physical* process ids in two layers:
//!
//! * [`SessionPool`] — admission control over one database's pid pool.
//!   [`SessionPool::acquire`] parks the caller on a FIFO ticket queue
//!   until a pid frees (a dropping [`Session`] wakes exactly the front
//!   waiter through [`mvcc_vm::PidPool`]'s release hook — one `unpark`
//!   per release, no stampede), so any number of client threads can
//!   share `P` pids; [`SessionPool::acquire_timeout`] bounds the wait
//!   and [`SessionPool::try_acquire`] keeps the non-blocking behavior.
//! * [`Router`] — a fixed-fanout shard router owning `N` independent
//!   [`Database`] instances. Tenant/key-space identifiers map to shards
//!   by seeded hash ([`Router::shard_for`] is stable for the router's
//!   lifetime), so aggregate capacity becomes `N×P` concurrent sessions
//!   — each shard's pool waiting independently — instead of `P` total.
//!
//! The same decouple-logical-from-physical move appears wherever a
//! resource bound is baked into an algorithm (cf. the bounded process
//! naming in the paper's VM problem): the bound stays, a queue and a
//! hash in front of it hide it from callers.
//!
//! # Async admission
//!
//! [`SessionPool::acquire`] parks an OS thread per waiter, which caps
//! concurrent logical sessions at thread-count scale. The async face of
//! the same queue — [`SessionPool::acquire_async`] returning an
//! [`AcquireFuture`], with [`SessionPool::poll_acquire`] as the
//! poll-level form — parks a [`std::task::Waker`] instead, so thousands
//! of pending admissions cost a queue entry each, not a stack. The
//! contract, point by point:
//!
//! * **One queue, one order.** Sync and async waiters draw tickets from
//!   the same monotone dispenser and are served strictly
//!   first-come-first-served; mixing the two modes cannot reorder
//!   admission.
//! * **One wake per release.** A dropping [`Session`] wakes exactly the
//!   front waiter (unpark for a thread, `Waker::wake` for a task) — no
//!   thundering herd in either mode.
//! * **Cancellation hands off.** Dropping a pending [`AcquireFuture`]
//!   surrenders its ticket; if the dropped waiter was the front (so a
//!   release's single wake may have been spent on it), the wake is
//!   forwarded to the next waiter. A cancelled admission can never
//!   strand the queue or leak a pid.
//! * **Re-poll replaces the waker.** A future migrating between tasks
//!   keeps exactly one registered waker — the most recent poll's.
//!
//! No executor ships with the pool (and none is required): [`block_on`]
//! drives one future from sync code. The production consumer is the
//! `mvcc-net` crate's `executor` module — a dedup `ReadySet` handing
//! each connection a `Waker` whose wake re-queues exactly that
//! connection — which lets `mvcc_net::Server`'s single poll loop
//! multiplex thousands of connection-bound admissions onto one thread
//! (each parked request is a queue entry here, not a blocked thread).
//!
//! # Fairness
//!
//! Waiters in [`SessionPool::acquire`] are served strictly
//! first-come-first-served: a storm of late arrivals cannot starve an
//! early waiter. Non-waiting paths ([`SessionPool::try_acquire`],
//! [`Database::session`]) deliberately barge past the queue — they never
//! park, so they take a free pid even while waiters exist. Mixing the
//! two on one database trades strict fairness for the fast path's
//! lock-freedom; use `acquire` everywhere if FIFO order matters.
//!
//! ```
//! use mvcc_core::{Database, Router};
//! use mvcc_core::ftree::U64Map;
//!
//! // One database, two pids, many client threads: acquire() waits
//! // instead of erroring.
//! let db: Database<U64Map> = Database::new(2);
//! std::thread::scope(|s| {
//!     for t in 0..8u64 {
//!         let pool = db.pool();
//!         s.spawn(move || {
//!             let mut session = pool.acquire(); // parks if both pids are out
//!             session.insert(t, t);
//!         });
//!     }
//! });
//! assert_eq!(db.sessions_leased(), 0);
//!
//! // Four databases behind a router: same key, same shard, N×P capacity.
//! let router: Router<U64Map> = Router::new(4, 2);
//! let mut s = router.session(&"tenant-42");
//! s.insert(1, 10);
//! assert_eq!(router.shard_for(&"tenant-42"), router.shard_for(&"tenant-42"));
//! assert_eq!(router.capacity(), 8);
//! ```

use std::collections::VecDeque;
use std::future::Future;
use std::hash::{Hash, Hasher};
use std::pin::Pin;
use std::sync::{Arc, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};
use std::thread::Thread;
use std::time::{Duration, Instant};

use mvcc_ftree::TreeParams;
use mvcc_vm::{PswfVm, VersionMaintenance, VmKind};

use crate::{Database, Session, SessionError, TxnStats};

/// Error returned by [`SessionPool::acquire_timeout`] when no pid freed
/// within the allowed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireTimeout {
    /// How long the caller waited before giving up.
    pub waited: Duration,
}

impl std::fmt::Display for AcquireTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no process id freed within {:?} (pool still exhausted)",
            self.waited
        )
    }
}

impl std::error::Error for AcquireTimeout {}

/// The parking-based FIFO wait queue behind [`SessionPool::acquire`].
/// One per [`Database`]; every `SessionPool` handle on that database
/// shares it, so fairness is global across handles.
///
/// Each queue entry carries its waiter's [`Thread`] handle, and every
/// wake targets exactly the queue's front via `unpark` — a freed pid
/// costs one wake-up regardless of how many waiters are parked (a
/// condvar `notify_all` here would stampede all `W` waiters per release,
/// O(W²) wake-ups to drain the queue in exactly the oversubscribed
/// regime the pool exists for). `unpark`'s saved-permit semantics close
/// the wake/park race: an unpark landing between a waiter's failed lease
/// attempt and its `park()` makes that park return immediately.
pub(crate) struct WaitQueue {
    inner: Mutex<QueueInner>,
}

/// How a queued waiter is told "you are front; re-check for a pid".
///
/// The sync path ([`SessionPool::acquire`]) parks an OS thread and is
/// woken by `unpark`; the async path ([`SessionPool::poll_acquire`])
/// registers the polling task's [`Waker`]. Both share one queue, one
/// ticket dispenser and therefore one strict FIFO order — a release
/// wakes whichever kind is at the front, exactly once.
enum WakeHandle {
    /// A parked client thread (`unpark`'s saved-permit semantics close
    /// the wake/park race for this arm).
    Thread(Thread),
    /// An async task; `Waker::wake_by_ref` schedules its next poll. A
    /// woken-but-not-yet-polled future that is dropped forwards the
    /// stolen wake from its `Drop` (see [`AcquireState`]).
    Task(Waker),
}

impl WakeHandle {
    fn wake(&self) {
        match self {
            WakeHandle::Thread(t) => t.unpark(),
            WakeHandle::Task(w) => w.wake_by_ref(),
        }
    }
}

struct Waiter {
    /// Ticket from the monotone dispenser; FIFO position key.
    ticket: u64,
    /// Woken when this waiter reaches the front (or was front already)
    /// and should re-check for a pid.
    wake: WakeHandle,
}

struct QueueInner {
    /// Monotone ticket dispenser.
    next_ticket: u64,
    /// Parked (or about-to-park) waiters, front = next to be served.
    queue: VecDeque<Waiter>,
}

impl QueueInner {
    /// Wake the waiter currently at the front, if any.
    fn wake_front(&self) {
        if let Some(w) = self.queue.front() {
            w.wake.wake();
        }
    }
}

impl WaitQueue {
    pub(crate) fn new() -> Self {
        WaitQueue {
            inner: Mutex::new(QueueInner {
                next_ticket: 0,
                queue: VecDeque::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        // No panics occur while the queue lock is held; recover the
        // guard anyway so one poisoned waiter cannot wedge the pool.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A pid freed: wake the front waiter to claim it. Taking the queue
    /// lock is load-bearing even though `unpark`/`wake` itself never
    /// loses a wake: it orders this notify against waiters mid-enqueue,
    /// so the front we see is the front that exists.
    pub(crate) fn notify(&self) {
        self.lock().wake_front();
    }

    /// Parked/arriving waiters (racy snapshot, diagnostics and tests).
    fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Surrender `ticket`'s place in the queue (timeout expiry or an
    /// [`AcquireFuture`] dropped while pending). If the abandoned slot
    /// was the front, a release may already have targeted it — forward
    /// that possibly-stolen wake to the new front so the queue cannot
    /// stall.
    fn cancel(&self, ticket: u64) {
        let mut inner = self.lock();
        let was_front = inner.queue.front().map(|w| w.ticket) == Some(ticket);
        inner.queue.retain(|w| w.ticket != ticket);
        if was_front {
            inner.wake_front();
        }
    }
}

/// A waiting-mode front end over a [`Database`]'s pid pool: logical
/// sessions beyond `P` queue up instead of erroring.
///
/// Obtain with [`Database::pool`]. The pool is a borrowed handle
/// (`Copy`); all handles on one database share one FIFO wait queue, and
/// a dropping [`Session`] wakes it via the pid pool's release hook —
/// there is no polling.
pub struct SessionPool<'db, P: TreeParams, M: VersionMaintenance = PswfVm> {
    db: &'db Database<P, M>,
}

impl<P: TreeParams, M: VersionMaintenance> Clone for SessionPool<'_, P, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<P: TreeParams, M: VersionMaintenance> Copy for SessionPool<'_, P, M> {}

impl<'db, P: TreeParams, M: VersionMaintenance> SessionPool<'db, P, M> {
    pub(crate) fn new(db: &'db Database<P, M>) -> Self {
        SessionPool { db }
    }

    /// The database this pool admits sessions to.
    pub fn database(&self) -> &'db Database<P, M> {
        self.db
    }

    /// Number of pids (the pool's concurrency limit, the paper's `P`).
    pub fn capacity(&self) -> usize {
        self.db.processes()
    }

    /// Waiters currently queued in [`SessionPool::acquire`] /
    /// [`SessionPool::acquire_timeout`] (racy snapshot, diagnostics).
    pub fn waiters(&self) -> usize {
        self.db.waiters.len()
    }

    /// Lease a session, parking FIFO until a pid frees.
    ///
    /// Returns as soon as this caller reaches the queue's front *and* a
    /// pid is free; the returned [`Session`] re-wakes the queue when it
    /// drops. See the module docs for the fairness contract.
    pub fn acquire(&self) -> Session<'db, P, M> {
        match self.acquire_inner(None) {
            Ok(session) => session,
            Err(_) => unreachable!("untimed acquire cannot time out"),
        }
    }

    /// [`SessionPool::acquire`] with a bounded wait: `Err(AcquireTimeout)`
    /// if no pid freed (or the queue ahead did not drain) in `timeout`.
    pub fn acquire_timeout(&self, timeout: Duration) -> Result<Session<'db, P, M>, AcquireTimeout> {
        self.acquire_inner(Some(timeout))
    }

    /// Non-blocking lease — exactly [`Database::session`]: takes a free
    /// pid immediately (barging past any waiters) or returns
    /// `Err(Exhausted)`.
    pub fn try_acquire(&self) -> Result<Session<'db, P, M>, SessionError> {
        self.db.session()
    }

    fn acquire_inner(
        &self,
        timeout: Option<Duration>,
    ) -> Result<Session<'db, P, M>, AcquireTimeout> {
        let db = self.db;
        // A zero-pid database cannot be constructed (the VM constructors
        // require at least one process), so the wait below always has a
        // pid that can eventually free.
        debug_assert!(db.processes() > 0);
        let wq = &db.waiters;
        let start = Instant::now();
        let deadline = timeout.map(|t| start + t);
        let mut inner = wq.lock();
        let me = inner.next_ticket;
        inner.next_ticket += 1;
        inner.queue.push_back(Waiter {
            ticket: me,
            wake: WakeHandle::Thread(std::thread::current()),
        });
        loop {
            // Only the queue's front may take a pid: FIFO by construction.
            if inner.queue.front().map(|w| w.ticket) == Some(me) {
                if let Ok(pid) = db.pids.lease() {
                    inner.queue.pop_front();
                    // Several pids may have freed while we were parked
                    // (their wakes all targeted us, coalescing into one
                    // permit); hand the new front its chance immediately.
                    inner.wake_front();
                    drop(inner);
                    return Ok(Session::new(db, pid));
                }
            }
            drop(inner);
            match deadline {
                None => std::thread::park(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Surrender the slot; if it was blocking the
                        // queue's progress the new front gets re-checked.
                        wq.cancel(me);
                        return Err(AcquireTimeout {
                            waited: start.elapsed(),
                        });
                    }
                    std::thread::park_timeout(d - now);
                }
            }
            inner = wq.lock();
        }
    }

    /// Begin an **async** lease: a [`Future`] resolving to a [`Session`]
    /// once this waiter reaches the front of the same FIFO ticket queue
    /// [`SessionPool::acquire`] parks on — sync and async waiters are
    /// served in one strict arrival order.
    ///
    /// The future is executor-agnostic (no runtime dependency): it
    /// parks a [`Waker`], and a dropping [`Session`] wakes exactly the
    /// front waiter through the pid pool's release hook — one wake per
    /// release, whether the front is a parked thread or a task.
    /// Dropping the future while it is still queued surrenders its
    /// ticket and forwards any wake that already targeted it to the
    /// next waiter, so cancellation can never strand the queue.
    ///
    /// ```
    /// use mvcc_core::Database;
    /// use mvcc_core::ftree::U64Map;
    ///
    /// let db: Database<U64Map> = Database::new(1);
    /// let pool = db.pool();
    /// // A trivial single-future executor is enough to drive it:
    /// let mut session = mvcc_core::pool::block_on(pool.acquire_async());
    /// session.insert(1, 1);
    /// ```
    pub fn acquire_async(&self) -> AcquireFuture<'db, P, M> {
        AcquireFuture {
            pool: *self,
            state: AcquireState::default(),
        }
    }

    /// Poll-level async acquire: the manual, state-explicit form of
    /// [`SessionPool::acquire_async`] (which is a thin wrapper holding
    /// the [`AcquireState`] for you).
    ///
    /// The first poll enqueues a ticket into the FIFO wait queue and
    /// records it in `state`; subsequent polls refresh the stored
    /// [`Waker`] (re-polling from a different task is fine — the newest
    /// waker wins). Returns `Ready(session)` only when this ticket is
    /// the queue's front **and** a pid leases, preserving strict
    /// arrival order against every other waiter, sync or async.
    ///
    /// `state` must be dropped (or re-polled to `Ready`) for the ticket
    /// to leave the queue; see [`AcquireState`] for the cancellation
    /// contract.
    ///
    /// # Panics
    /// If `state` is already registered with a different database's
    /// pool.
    pub fn poll_acquire(
        &self,
        cx: &mut Context<'_>,
        state: &mut AcquireState,
    ) -> Poll<Session<'db, P, M>> {
        let db = self.db;
        let wq = &db.waiters;
        let mut inner = wq.lock();
        let me = match (&state.queue, state.ticket) {
            (Some(queue), Some(ticket)) => {
                assert!(
                    Arc::ptr_eq(queue, wq),
                    "AcquireState is registered with a different pool"
                );
                // Waker replacement: a future may migrate between tasks
                // (e.g. `select!`-style composition); the wake must go
                // to whoever polled last.
                let w = inner
                    .queue
                    .iter_mut()
                    .find(|w| w.ticket == ticket)
                    .expect("registered ticket is always in the queue");
                match &w.wake {
                    WakeHandle::Task(old) if old.will_wake(cx.waker()) => {}
                    _ => w.wake = WakeHandle::Task(cx.waker().clone()),
                }
                ticket
            }
            _ => {
                let ticket = inner.next_ticket;
                inner.next_ticket += 1;
                inner.queue.push_back(Waiter {
                    ticket,
                    wake: WakeHandle::Task(cx.waker().clone()),
                });
                state.queue = Some(Arc::clone(wq));
                state.ticket = Some(ticket);
                ticket
            }
        };
        // Only the queue's front may take a pid: FIFO by construction
        // (same discipline as the sync path — the two share the queue).
        if inner.queue.front().map(|w| w.ticket) == Some(me) {
            if let Ok(pid) = db.pids.lease() {
                inner.queue.pop_front();
                // The ticket outlives resolution (admission-order
                // audits); only the queue handle is cleared.
                state.queue = None;
                // Coalesced permits: several pids may have freed while
                // we were pending; hand the new front its chance.
                inner.wake_front();
                drop(inner);
                return Poll::Ready(Session::new(db, pid));
            }
        }
        Poll::Pending
    }
}

/// Queue-registration state for [`SessionPool::poll_acquire`]: which
/// ticket (if any) this waiter holds in the FIFO wait queue.
///
/// `Default::default()` is unregistered; the first `poll_acquire` with
/// it enqueues a ticket. Dropping a registered state **surrenders the
/// ticket**: the slot leaves the queue, and if it was the front — a
/// release may already have spent its one wake on it — the wake is
/// forwarded to the new front. That is the pool-checkout handoff
/// contract that makes cancellation (dropping an [`AcquireFuture`]
/// mid-wait) safe: no pid is leaked and no wake is lost.
#[derive(Default)]
pub struct AcquireState {
    /// The wait queue this state is registered with, while queued.
    /// Holding it by `Arc` keeps cancel-on-drop sound even if the state
    /// outlives the pool handle; `None` before the first poll and after
    /// resolution.
    queue: Option<Arc<WaitQueue>>,
    /// The FIFO ticket drawn by the first poll. Deliberately *not*
    /// cleared on resolution: tickets are handed out in arrival order,
    /// so a granted ticket is the admission-order audit trail (the
    /// `mvcc-net` server asserts per-shard monotonicity with it).
    ticket: Option<u64>,
}

impl AcquireState {
    /// The FIFO ticket drawn by the first poll (`None` only before it).
    /// Tickets are handed out in arrival order and survive resolution,
    /// so admission order can be audited against them.
    pub fn ticket(&self) -> Option<u64> {
        self.ticket
    }
}

impl Drop for AcquireState {
    fn drop(&mut self) {
        if let (Some(wq), Some(ticket)) = (self.queue.take(), self.ticket) {
            wq.cancel(ticket);
        }
    }
}

impl std::fmt::Debug for AcquireState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcquireState")
            .field("ticket", &self.ticket())
            .finish()
    }
}

/// The future returned by [`SessionPool::acquire_async`]: resolves to a
/// [`Session`] in strict FIFO order with every other waiter on the same
/// database. See [`SessionPool::poll_acquire`] for the polling contract
/// and [`AcquireState`] for what dropping a pending future does.
pub struct AcquireFuture<'db, P: TreeParams, M: VersionMaintenance = PswfVm> {
    pool: SessionPool<'db, P, M>,
    state: AcquireState,
}

impl<'db, P: TreeParams, M: VersionMaintenance> AcquireFuture<'db, P, M> {
    /// The FIFO ticket drawn by this future's first poll (`None` only
    /// before it; the ticket survives resolution for admission-order
    /// audits).
    pub fn ticket(&self) -> Option<u64> {
        self.state.ticket()
    }
}

impl<'db, P: TreeParams, M: VersionMaintenance> Future for AcquireFuture<'db, P, M> {
    type Output = Session<'db, P, M>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // No self-references: the future is plain data (pool handle +
        // ticket state), hence `Unpin` and safe to project by value.
        let this = self.get_mut();
        this.pool.poll_acquire(cx, &mut this.state)
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for AcquireFuture<'_, P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcquireFuture")
            .field("ticket", &self.ticket())
            .field("pool", &self.pool)
            .finish()
    }
}

/// Drive one future to completion on the current thread, parking
/// between polls — the minimal executor. Enough to use
/// [`SessionPool::acquire_async`] from synchronous code and tests; the
/// `mvcc-net` server brings its own readiness loop instead.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    /// Waker that unparks the blocked thread.
    struct ThreadWaker(Thread);
    impl std::task::Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for SessionPool<'_, P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("capacity", &self.capacity())
            .field("leased", &self.db.sessions_leased())
            .field("waiters", &self.waiters())
            .finish()
    }
}

/// Default hash seed for [`Router::new`]; an arbitrary odd 64-bit
/// constant (splitmix64's increment) so shard placement is stable across
/// runs unless a seed is chosen explicitly.
const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fixed-fanout shard router: `N` independent [`Database`] instances
/// behind one seeded-hash key map, for `N×P` aggregate session capacity.
///
/// Shards are fully independent databases — separate forests, version
/// maintenance objects and pid pools — so cross-shard transactions do not
/// exist; a key's transactions all land on [`Router::shard_for`]`(key)`.
/// That is the scaling contract: pick the routing key (tenant id, user
/// id, key-space prefix) so that work that must be atomic together hashes
/// together.
///
/// [`Router::session`] leases through the shard's [`SessionPool`] —
/// parking, not erroring, when the shard's pids are all out. Cross-shard
/// sweeps (stats, GC checks) go through [`Router::iter`].
pub struct Router<P: TreeParams, M: VersionMaintenance = PswfVm> {
    shards: Box<[Database<P, M>]>,
    seed: u64,
}

impl<P: TreeParams> Router<P, PswfVm> {
    /// `shards` empty PSWF databases with `processes_per_shard` pids
    /// each, keyed with the default seed.
    ///
    /// # Panics
    /// If `shards == 0` or `processes_per_shard == 0`.
    pub fn new(shards: usize, processes_per_shard: usize) -> Self {
        Self::with_seed(shards, processes_per_shard, DEFAULT_SEED)
    }

    /// [`Router::new`] with an explicit hash seed (e.g. to de-correlate
    /// two routers over the same key population).
    pub fn with_seed(shards: usize, processes_per_shard: usize, seed: u64) -> Self {
        assert!(processes_per_shard > 0, "shards need at least one pid");
        Self::from_databases(
            (0..shards)
                .map(|_| Database::new(processes_per_shard))
                .collect(),
            seed,
        )
    }
}

impl<P: TreeParams> Router<P, Box<dyn VersionMaintenance>> {
    /// A router whose shards run the given VM algorithm family.
    ///
    /// # Panics
    /// If `shards == 0` or `processes_per_shard == 0`.
    pub fn with_kind(kind: VmKind, shards: usize, processes_per_shard: usize) -> Self {
        assert!(processes_per_shard > 0, "shards need at least one pid");
        Self::from_databases(
            (0..shards)
                .map(|_| Database::with_kind(kind, processes_per_shard))
                .collect(),
            DEFAULT_SEED,
        )
    }
}

impl<P: TreeParams, M: VersionMaintenance> Router<P, M> {
    /// Assemble a router from pre-built shard databases (heterogeneous
    /// sizing, pre-seeded contents, custom VM instances).
    ///
    /// # Panics
    /// If `databases` is empty.
    pub fn from_databases(databases: Vec<Database<P, M>>, seed: u64) -> Self {
        assert!(!databases.is_empty(), "router needs at least one shard");
        Router {
            shards: databases.into_boxed_slice(),
            seed,
        }
    }

    /// Number of shards (`N`).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Aggregate session capacity: the sum of every shard's `P`.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|db| db.processes()).sum()
    }

    /// The shard index `key` routes to. Stable for the router's
    /// lifetime: the same key always lands on the same shard.
    pub fn shard_for<K: Hash + ?Sized>(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        hasher.write_u64(self.seed);
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// The shard database at `index` — the escape hatch for callers that
    /// computed (or pinned) a placement themselves.
    ///
    /// # Panics
    /// If `index >= shards()`; [`Router::try_with_shard`] is the
    /// non-panicking form.
    pub fn with_shard(&self, index: usize) -> &Database<P, M> {
        &self.shards[index]
    }

    /// [`Router::with_shard`] without the panic: `None` when `index` is
    /// not a shard (e.g. an index computed against a differently-sized
    /// router).
    pub fn try_with_shard(&self, index: usize) -> Option<&Database<P, M>> {
        self.shards.get(index)
    }

    /// The shard database `key` routes to.
    pub fn database_for<K: Hash + ?Sized>(&self, key: &K) -> &Database<P, M> {
        self.with_shard(self.shard_for(key))
    }

    /// Lease a session on `key`'s shard, parking FIFO (per shard) until
    /// one of that shard's pids frees.
    pub fn session<K: Hash + ?Sized>(&self, key: &K) -> Session<'_, P, M> {
        self.database_for(key).pool().acquire()
    }

    /// [`Router::session`] with a bounded wait.
    pub fn session_timeout<K: Hash + ?Sized>(
        &self,
        key: &K,
        timeout: Duration,
    ) -> Result<Session<'_, P, M>, AcquireTimeout> {
        self.database_for(key).pool().acquire_timeout(timeout)
    }

    /// Non-blocking lease on `key`'s shard (`Err(Exhausted)` when that
    /// shard's pids are all out, even if other shards have capacity —
    /// keys do not spill across shards).
    pub fn try_session<K: Hash + ?Sized>(
        &self,
        key: &K,
    ) -> Result<Session<'_, P, M>, SessionError> {
        self.database_for(key).session()
    }

    /// Iterate the shards in index order — the cross-shard sweep for
    /// stats aggregation, GC/quiescence checks and maintenance.
    pub fn iter(&self) -> std::slice::Iter<'_, Database<P, M>> {
        self.shards.iter()
    }

    /// Transaction counters summed across shards (same staleness caveat
    /// as [`Database::stats`]: live sessions flush on drop).
    pub fn stats(&self) -> TxnStats {
        self.iter().fold(TxnStats::default(), |acc, db| {
            let s = db.stats();
            TxnStats {
                commits: acc.commits + s.commits,
                aborts: acc.aborts + s.aborts,
                reads: acc.reads + s.reads,
            }
        })
    }

    /// Uncollected versions summed across shards (quiescent routers
    /// report exactly `shards()`).
    pub fn live_versions(&self) -> u64 {
        self.iter().map(|db| db.live_versions()).sum()
    }

    /// Currently leased sessions summed across shards (racy snapshot).
    pub fn sessions_leased(&self) -> usize {
        self.iter().map(|db| db.sessions_leased()).sum()
    }
}

impl<'r, P: TreeParams, M: VersionMaintenance> IntoIterator for &'r Router<P, M> {
    type Item = &'r Database<P, M>;
    type IntoIter = std::slice::Iter<'r, Database<P, M>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<P: TreeParams, M: VersionMaintenance> std::fmt::Debug for Router<P, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.shards())
            .field("capacity", &self.capacity())
            .field("leased", &self.sessions_leased())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_ftree::U64Map;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn acquire_takes_free_pid_without_waiting() {
        let db: Database<U64Map> = Database::new(2);
        let pool = db.pool();
        let mut a = pool.acquire();
        let mut b = pool.acquire();
        a.insert(1, 1);
        b.insert(2, 2);
        assert_eq!(pool.waiters(), 0);
        assert_eq!(db.sessions_leased(), 2);
    }

    #[test]
    fn acquire_parks_until_release() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let first = pool.acquire();
        let entered = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                entered.store(1, Ordering::SeqCst);
                let mut session = pool.acquire(); // must park: sole pid is out
                session.insert(7, 7);
                session.pid()
            });
            // Wait until the waiter is actually queued, then free the pid.
            while pool.waiters() == 0 {
                std::thread::yield_now();
            }
            assert_eq!(entered.load(Ordering::SeqCst), 1);
            let freed = first.pid();
            drop(first);
            assert_eq!(handle.join().unwrap(), freed, "waiter got the freed pid");
        });
        assert_eq!(db.sessions_leased(), 0);
    }

    #[test]
    fn acquire_timeout_expires_and_leaves_queue_clean() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let held = pool.acquire();
        let err = pool
            .acquire_timeout(Duration::from_millis(20))
            .expect_err("sole pid is held");
        assert!(err.waited >= Duration::from_millis(20));
        assert_eq!(pool.waiters(), 0, "expired waiter removed itself");
        drop(held);
        // And a timed acquire that can succeed, does.
        let s = pool.acquire_timeout(Duration::from_secs(5)).unwrap();
        drop(s);
    }

    #[test]
    fn try_acquire_matches_session_behavior() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let held = pool.try_acquire().unwrap();
        assert!(matches!(
            pool.try_acquire(),
            Err(SessionError::Exhausted { processes: 1 })
        ));
        drop(held);
        assert!(pool.try_acquire().is_ok());
    }

    #[test]
    fn acquire_async_resolves_immediately_on_a_free_pid() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let mut session = block_on(pool.acquire_async());
        session.insert(1, 10);
        drop(session);
        assert_eq!(db.sessions_leased(), 0);
        assert_eq!(pool.waiters(), 0);
    }

    #[test]
    fn acquire_async_waits_for_release_and_is_woken_once() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let held = pool.acquire();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let mut session = block_on(pool.acquire_async());
                session.insert(2, 20);
                session.pid()
            });
            while pool.waiters() == 0 {
                std::thread::yield_now();
            }
            let freed = held.pid();
            drop(held);
            assert_eq!(waiter.join().unwrap(), freed, "waiter got the freed pid");
        });
        assert_eq!(db.sessions_leased(), 0);
    }

    #[test]
    fn acquire_state_ticket_reports_queue_position() {
        let db: Database<U64Map> = Database::new(1);
        let pool = db.pool();
        let held = pool.acquire();
        let mut fut = pool.acquire_async();
        assert_eq!(fut.ticket(), None, "not queued before the first poll");
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        assert!(fut.ticket().is_some(), "first poll queues a ticket");
        assert_eq!(pool.waiters(), 1);
        drop(fut);
        assert_eq!(pool.waiters(), 0, "dropped future surrendered its slot");
        drop(held);
    }

    #[test]
    fn router_routes_same_key_to_same_shard() {
        let router: Router<U64Map> = Router::new(4, 1);
        for key in 0u64..64 {
            let first = router.shard_for(&key);
            assert!(first < 4);
            for _ in 0..3 {
                assert_eq!(router.shard_for(&key), first, "unstable placement");
            }
        }
    }

    #[test]
    fn router_shards_are_independent() {
        let router: Router<U64Map> = Router::new(4, 2);
        // Find two keys on different shards.
        let (a, b) = {
            let a = 0u64;
            let b = (1u64..)
                .find(|k| router.shard_for(k) != router.shard_for(&a))
                .unwrap();
            (a, b)
        };
        router.session(&a).insert(1, 100);
        // Shard(b) never saw the write.
        assert_eq!(router.session(&b).get(&1), None);
        assert_eq!(router.session(&a).get(&1), Some(100));
        // Aggregates roll up across shards.
        assert_eq!(router.stats().commits, 1);
        assert_eq!(router.live_versions(), 4, "one live version per shard");
        assert_eq!(router.sessions_leased(), 0);
        assert_eq!(router.capacity(), 8);
    }

    #[test]
    fn router_seed_changes_placement_space() {
        // Different seeds must not produce identical placement for every
        // key (2^-64-ish chance per key of colliding by accident).
        let a: Router<U64Map> = Router::with_seed(8, 1, 1);
        let b: Router<U64Map> = Router::with_seed(8, 1, 2);
        let moved = (0u64..256)
            .filter(|k| a.shard_for(k) != b.shard_for(k))
            .count();
        assert!(moved > 0, "seed has no effect on placement");
    }

    #[test]
    fn router_escape_hatch_pins_explicit_shards() {
        let router: Router<U64Map> = Router::new(3, 1);
        let shard = router.shard_for(&"tenant");
        // `with_shard` + the database API reaches the same data as the
        // keyed path.
        router.session(&"tenant").insert(9, 90);
        let mut direct = router.with_shard(shard).pool().acquire();
        assert_eq!(direct.get(&9), Some(90));
        // IntoIterator sweeps all shards.
        assert_eq!((&router).into_iter().count(), 3);
    }
}
