//! Interval-based Version Maintenance — the §6 "extensions" direction.
//!
//! §6 notes that "researchers have proposed numerous extensions to the
//! original HP and EP techniques [3, 22, 63, 20]" and that "some of these
//! directly translate to new ways of solving the VM problem". This module
//! is one such translation: **interval-based reclamation** (IBR, Wen et
//! al., PPoPP 2018 — reference [63]) adapted from per-object memory
//! reclamation to whole-version maintenance.
//!
//! Every successful `set` advances a global *era*; each version carries a
//! *birth era* (the era when it was installed) and, once replaced, a
//! *retire era*. A process in a transaction reserves the era interval it
//! may be reading from; a retired version is returned for collection only
//! when its `[birth, retire]` lifetime interval overlaps no process's
//! reservation. Compared to the two neighbours it interpolates between:
//!
//! * vs **HP**: a reservation is an era range, not a version identity, so
//!   validation needs only one era re-read and never retries against a
//!   racing writer that restores the same token;
//! * vs **EP**: a slow reader pins only versions whose lifetime overlaps
//!   its reservation interval — versions born *after* the reader reserved
//!   and dying before anyone else looks are still reclaimed, so one
//!   straggler no longer blocks all reclamation (the Figure 6 blow-up).
//!
//! **Imprecise**: like HP, up to `2P` dead versions may sit in retired
//! lists between scans, and a pinned interval can hold versions past
//! their death. The paper's precision experiments treat this as a third
//! imprecise point between HP and EP.
//!
//! ## Memory orderings
//!
//! The hazard-pointer fence idiom over eras (`crate::ordering`, pattern
//! 1): `acquire` publishes its reservation with [`ANNOUNCE_PUBLISH`] and
//! crosses [`announce_validate_fence`] before the version read and era
//! validation; the `release` scan crosses [`scan_fence`] before its
//! [`SCAN_LOAD`]s of the reservation array. A reservation the scan
//! misses belongs to a reader whose era validation observes the
//! retirement bump and retries. The birth-era word is a pure hint
//! ([`BIRTH_HINT`]): stale reads only widen intervals.

use crossbeam::utils::CachePadded;
use std::sync::atomic::AtomicU64;

use crate::counter::VersionCounter;
use crate::ordering::{
    announce_validate_fence, scan_fence, ANNOUNCE_CLEAR, ANNOUNCE_PUBLISH, BIRTH_HINT, CAS_FAILURE,
    CLOCK_BUMP, CLOCK_LOAD, SCAN_LOAD, VERSION_CAS, VERSION_LOAD,
};
use crate::util::PerProc;
use crate::VersionMaintenance;

/// Reservation value meaning "not in a transaction".
const IDLE: u64 = u64::MAX;

/// A retired version with its lifetime interval.
struct Retired {
    data: u64,
    birth: u64,
    retire: u64,
}

/// Per-process mutable state (owner-only, per the VM contract).
struct Proc {
    /// Token returned by this process's last `acquire`.
    acquired: u64,
    /// Versions this process retired and has not yet handed back.
    retired: Vec<Retired>,
}

/// Interval-based (IBR-style) solution to the Version Maintenance problem.
pub struct IntervalVm {
    processes: usize,
    /// Global era clock: bumped by every successful `set`.
    era: CachePadded<AtomicU64>,
    /// Current version's data token.
    v: CachePadded<AtomicU64>,
    /// Birth era of the current version. Written by the successful setter
    /// right after its CAS on `v`; a racing reader may observe the
    /// *previous* version's (smaller) birth, which only widens the retired
    /// interval — conservative, never unsafe.
    v_birth: CachePadded<AtomicU64>,
    /// Per-process reserved era (`IDLE` when quiescent). A single era
    /// suffices because each transaction acquires exactly one version, so
    /// the reserved interval is degenerate.
    resv: Box<[CachePadded<AtomicU64>]>,
    proc: PerProc<Proc>,
    counter: VersionCounter,
}

impl IntervalVm {
    /// Create an instance for `processes` processes with `initial` as the
    /// first version's data token.
    pub fn new(processes: usize, initial: u64) -> Self {
        assert!(processes >= 1);
        IntervalVm {
            processes,
            era: CachePadded::new(AtomicU64::new(1)),
            v: CachePadded::new(AtomicU64::new(initial)),
            v_birth: CachePadded::new(AtomicU64::new(1)),
            resv: (0..processes)
                .map(|_| CachePadded::new(AtomicU64::new(IDLE)))
                .collect(),
            proc: PerProc::new(processes, |_| Proc {
                acquired: 0,
                retired: Vec::new(),
            }),
            counter: VersionCounter::with_initial(),
        }
    }

    /// Does `[birth, retire]` overlap any active reservation?
    /// Callers must cross [`scan_fence`] once before the scan loop that
    /// invokes this (pairs with `acquire`'s announce/validate fence).
    fn pinned(&self, birth: u64, retire: u64) -> bool {
        self.resv.iter().any(|r| {
            let e = r.load(SCAN_LOAD);
            e != IDLE && birth <= e && e <= retire
        })
    }
}

impl VersionMaintenance for IntervalVm {
    fn processes(&self) -> usize {
        self.processes
    }

    fn acquire(&self, k: usize) -> u64 {
        loop {
            let e = self.era.load(CLOCK_LOAD);
            self.resv[k].store(e, ANNOUNCE_PUBLISH);
            // ANNOUNCE_VALIDATE_FENCE: the reservation must be globally
            // visible before the era validation below (StoreLoad; pairs
            // with the release scan's `scan_fence`).
            announce_validate_fence();
            let d = self.v.load(VERSION_LOAD);
            // If no successful set advanced the era, `d` was the current
            // version at a point inside our reservation: its birth is
            // <= e and its retire era (if any) will be > e.
            if self.era.load(CLOCK_LOAD) == e {
                // Safety: only process k touches proc[k] (VM contract).
                unsafe { self.proc.with(k, |p| p.acquired = d) };
                return d;
            }
        }
    }

    fn set(&self, k: usize, data: u64) -> bool {
        let old = unsafe { self.proc.with(k, |p| p.acquired) };
        // Read the old version's birth before the CAS: if another set
        // succeeds in between, our CAS fails; a torn read can only be an
        // older (smaller) birth, widening the interval — safe.
        let old_birth = self.v_birth.load(BIRTH_HINT);
        if self
            .v
            .compare_exchange(old, data, VERSION_CAS, CAS_FAILURE)
            .is_ok()
        {
            let retire = self.era.fetch_add(1, CLOCK_BUMP) + 1;
            self.v_birth.store(retire, BIRTH_HINT);
            self.counter.created();
            unsafe {
                self.proc.with(k, |p| {
                    p.retired.push(Retired {
                        data: old,
                        birth: old_birth,
                        retire,
                    })
                })
            };
            true
        } else {
            false
        }
    }

    fn release(&self, k: usize, out: &mut Vec<u64>) {
        // ANNOUNCE_CLEAR: a scan observing IDLE acquires every use we
        // made of the reserved-era versions.
        self.resv[k].store(IDLE, ANNOUNCE_CLEAR);
        let threshold = 2 * self.processes;
        // Safety: only process k touches proc[k].
        unsafe {
            self.proc.with(k, |p| {
                if p.retired.len() < threshold {
                    return;
                }
                // SCAN_FENCE: once per scan, before the first `pinned`
                // reservation load (see `pinned`'s contract).
                scan_fence();
                let before = p.retired.len();
                p.retired.retain(|r| {
                    if self.pinned(r.birth, r.retire) {
                        true
                    } else {
                        out.push(r.data);
                        false
                    }
                });
                self.counter.collected((before - p.retired.len()) as u64);
            });
        }
    }

    fn current(&self) -> u64 {
        self.v.load(VERSION_LOAD)
    }

    fn uncollected_versions(&self) -> u64 {
        self.counter.uncollected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retired_versions_flush_at_threshold() {
        let p = 2; // threshold = 4
        let vm = IntervalVm::new(p, 0);
        let mut out = Vec::new();
        for i in 1..=10u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        assert!(out.len() >= 10 - 2 * p, "out: {out:?}");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), out.len(), "no double-collect");
        assert!(!out.contains(&10), "current version never collected");
    }

    #[test]
    fn reserved_interval_protects_held_version() {
        let vm = IntervalVm::new(2, 0);
        let mut out = Vec::new();
        assert_eq!(vm.acquire(1), 0); // reader reserves era 1
        for i in 1..=20u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        assert!(!out.contains(&0), "held version must survive scans");
        vm.release(1, &mut out);
        for i in 21..=40u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        assert!(out.contains(&0), "released version eventually reclaimed");
    }

    /// The IBR advantage over EP: versions born and retired entirely
    /// after a straggler's reservation are still reclaimed.
    #[test]
    fn straggler_does_not_pin_younger_versions() {
        let p = 2;
        let vm = IntervalVm::new(p, 0);
        let mut out = Vec::new();
        vm.acquire(1); // straggler reserves era 1, holding version 0
        for i in 1..=100u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        // Versions 1..99 were born after era 1 and retired before anyone
        // else reserved: all reclaimable despite the straggler. Only
        // version 0 (lifetime covers era 1) plus the current one and the
        // sub-threshold tail may remain.
        assert!(
            vm.uncollected_versions() <= 2 * p as u64 + 2,
            "straggler must not pin younger versions, uncollected={}",
            vm.uncollected_versions()
        );
        assert!(!out.contains(&0));
        vm.release(1, &mut out);
    }

    #[test]
    fn stale_set_aborts_after_competitor() {
        let vm = IntervalVm::new(2, 0);
        assert_eq!(vm.acquire(0), 0);
        assert_eq!(vm.acquire(1), 0);
        assert!(vm.set(0, 1));
        assert!(!vm.set(1, 2), "competitor succeeded: must abort");
        let mut out = Vec::new();
        vm.release(0, &mut out);
        vm.release(1, &mut out);
        assert_eq!(vm.current(), 1);
    }
}
