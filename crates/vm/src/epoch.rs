//! Epoch-based Version Maintenance (§6).
//!
//! Execution is divided into epochs. `acquire` announces the current epoch
//! and reads the current version; a successful `set` retires the replaced
//! version into the current epoch's limbo bag; a `release` that follows a
//! successful `set` (the paper's optimization — all other releases return
//! immediately) scans the announcement array, and if every process has
//! announced the current epoch (or is quiescent) it advances the epoch and
//! returns every version retired two epochs ago. Three limbo bags suffice.
//!
//! **Imprecise and unbounded**: a single slow reader pins its announced
//! epoch, after which *no* version can be collected, no matter how many
//! pile up — this is exactly the blow-up Figure 6 shows for small `nu`.
//!
//! ## Memory orderings
//!
//! The crossbeam-epoch `pin` idiom (`crate::ordering`, pattern 1):
//! `acquire` announces its epoch with [`ANNOUNCE_PUBLISH`] and crosses
//! [`announce_validate_fence`] before reading the version; the
//! epoch-advance scan crosses [`scan_fence`] before its [`SCAN_LOAD`]s,
//! so a reader whose announcement the scan missed is guaranteed to
//! observe a version newer than anything the advance frees. Limbo-bag
//! contents synchronize through the bag mutex.

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::AtomicU64;

use crate::counter::VersionCounter;
use crate::ordering::{
    announce_validate_fence, scan_fence, ANNOUNCE_CLEAR, ANNOUNCE_PUBLISH, CAS_FAILURE, CLOCK_LOAD,
    EPOCH_ADVANCE_CAS, SCAN_LOAD, VERSION_CAS, VERSION_LOAD,
};
use crate::util::PerProc;
use crate::VersionMaintenance;

/// Announcement value meaning "not in a transaction".
const QUIESCENT: u64 = u64::MAX;

struct Proc {
    /// Data token returned by this process's last `acquire`.
    acquired: u64,
    /// Did this process's last `set` succeed (⇒ its release must try to
    /// advance the epoch)?
    try_advance: bool,
}

/// Epoch-based solution to the Version Maintenance problem.
pub struct EpochVm {
    processes: usize,
    /// Global epoch counter (starts at 2 so `e - 2` never underflows).
    epoch: CachePadded<AtomicU64>,
    /// Current version's data token.
    v: CachePadded<AtomicU64>,
    /// Per-process announced epoch (`QUIESCENT` when idle).
    ann: Box<[CachePadded<AtomicU64>]>,
    /// Versions retired during epoch `e` live in `limbo[e % 3]`.
    limbo: [Mutex<Vec<u64>>; 3],
    proc: PerProc<Proc>,
    counter: VersionCounter,
}

impl EpochVm {
    /// Create an instance for `processes` processes with `initial` as the
    /// first version's data token.
    pub fn new(processes: usize, initial: u64) -> Self {
        assert!(processes >= 1);
        EpochVm {
            processes,
            epoch: CachePadded::new(AtomicU64::new(2)),
            v: CachePadded::new(AtomicU64::new(initial)),
            ann: (0..processes)
                .map(|_| CachePadded::new(AtomicU64::new(QUIESCENT)))
                .collect(),
            limbo: [const { Mutex::new(Vec::new()) }; 3],
            proc: PerProc::new(processes, |_| Proc {
                acquired: 0,
                try_advance: false,
            }),
            counter: VersionCounter::with_initial(),
        }
    }
}

impl VersionMaintenance for EpochVm {
    fn processes(&self) -> usize {
        self.processes
    }

    fn acquire(&self, k: usize) -> u64 {
        let e = self.epoch.load(CLOCK_LOAD);
        self.ann[k].store(e, ANNOUNCE_PUBLISH);
        // ANNOUNCE_VALIDATE_FENCE: the epoch announcement must be
        // globally visible before the version read — an advance scan
        // that misses it would otherwise free what we are about to read
        // (StoreLoad; pairs with release's `scan_fence`). There is no
        // validate retry here: the fence instead guarantees the version
        // we read is too young for any advance that missed us to free.
        announce_validate_fence();
        let d = self.v.load(VERSION_LOAD);
        // Safety: only process k touches proc[k] (VM contract).
        unsafe { self.proc.with(k, |p| p.acquired = d) };
        d
    }

    fn set(&self, k: usize, data: u64) -> bool {
        let old = unsafe { self.proc.with(k, |p| p.acquired) };
        if self
            .v
            .compare_exchange(old, data, VERSION_CAS, CAS_FAILURE)
            .is_ok()
        {
            self.counter.created();
            let e = self.epoch.load(CLOCK_LOAD);
            self.limbo[(e % 3) as usize].lock().push(old);
            unsafe { self.proc.with(k, |p| p.try_advance = true) };
            true
        } else {
            false
        }
    }

    fn release(&self, k: usize, out: &mut Vec<u64>) {
        // ANNOUNCE_CLEAR: an advance scan observing QUIESCENT acquires
        // every read we made under the announced epoch.
        self.ann[k].store(QUIESCENT, ANNOUNCE_CLEAR);
        // Paper optimization: only writer releases scan; this leaves at
        // most one extra uncollected version behind.
        let advance = unsafe {
            self.proc.with(k, |p| {
                let a = p.try_advance;
                p.try_advance = false;
                a
            })
        };
        if !advance {
            return;
        }
        let e = self.epoch.load(CLOCK_LOAD);
        // SCAN_FENCE: pairs with acquire's announce/validate fence (see
        // `ordering` pattern 1) — an announcement this scan misses
        // belongs to a reader whose version read is ordered after our
        // retirements, so nothing it holds is in the bag we may drain.
        scan_fence();
        for a in self.ann.iter() {
            let announced = a.load(SCAN_LOAD);
            if announced != QUIESCENT && announced != e {
                return; // a straggler pins an older epoch
            }
        }
        if self
            .epoch
            .compare_exchange(e, e + 1, EPOCH_ADVANCE_CAS, CAS_FAILURE)
            .is_ok()
        {
            // Epoch e+1 begins; versions retired in epoch e-2 (which lives
            // in the bag that epoch e+1 will reuse) are unreachable now:
            // every in-flight transaction announced epoch >= e-1... >= e.
            let mut bag = self.limbo[((e + 1) % 3) as usize].lock();
            self.counter.collected(bag.len() as u64);
            out.append(&mut *bag);
        }
    }

    fn current(&self) -> u64 {
        self.v.load(VERSION_LOAD)
    }

    fn uncollected_versions(&self) -> u64 {
        self.counter.uncollected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_reclaimed_after_epoch_advances() {
        let vm = EpochVm::new(2, 0);
        let mut out = Vec::new();
        for i in 1..=10u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        // Each writer release advances an epoch; retirements lag by ~2.
        assert!(out.len() >= 7, "out: {out:?}");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), out.len(), "no double-collect");
        assert!(!out.contains(&10), "current never collected");
    }

    #[test]
    fn slow_reader_pins_everything() {
        let vm = EpochVm::new(2, 0);
        let mut out = Vec::new();
        vm.acquire(1); // reader parks in an old epoch
        for i in 1..=50u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        // The reader announced epoch 2 and never left: at most the couple
        // of versions retired before it could block advancement escape.
        assert!(
            vm.uncollected_versions() >= 48,
            "EP must leak under a slow reader, uncollected={}",
            vm.uncollected_versions()
        );
        vm.release(1, &mut out);
        // Reader gone: the writer can advance epochs again and drain.
        for i in 51..=56u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        assert!(vm.uncollected_versions() < 50);
    }

    #[test]
    fn reader_in_current_epoch_does_not_block() {
        let vm = EpochVm::new(2, 0);
        let mut out = Vec::new();
        for i in 1..=30u64 {
            vm.acquire(1);
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
            vm.release(1, &mut out);
        }
        assert!(
            vm.uncollected_versions() <= 5,
            "prompt readers must not leak, uncollected={}",
            vm.uncollected_versions()
        );
    }
}
