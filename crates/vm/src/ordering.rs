//! The memory-ordering vocabulary of the VM state machines.
//!
//! The paper assumes a sequentially consistent shared memory, and the
//! seed reproduction honoured that by using `SeqCst` for every atomic
//! operation in this crate. On x86 every `SeqCst` *store* compiles to a
//! locked instruction (an `xchg` or a trailing `mfence`), so each
//! `acquire`/`set`/`release` — the per-transaction entry/exit cost §3's
//! Version Maintenance problem is designed to minimize — paid full-fence
//! tax on every announcement write. On ARM-class memory models the tax is
//! higher still (`dmb ish` pairs around every access).
//!
//! This module completes the relaxed-ordering audit the ROADMAP left
//! open. Instead of annotating ~110 sites one by one, every atomic site
//! in the crate now names a **role** from this vocabulary, and each role
//! carries its pairing argument here, once. Roles come in two classes:
//!
//! * **Tunable roles** are `Acquire`/`Release`/`Relaxed` by default and
//!   are mapped back to `SeqCst` when the crate is built with the
//!   `strict-sc` feature — the paper-fidelity safe harbor. Their
//!   correctness arguments below therefore only need to hold for the
//!   *default* build; the strict build is trivially a superset.
//! * **Pinned roles** are `SeqCst` (or an explicit `fence(SeqCst)`) in
//!   *both* builds, because the algorithm's proof genuinely needs a
//!   total order that acquire/release cannot express. Each pinned role
//!   documents its proof obligation.
//!
//! # The two store-load windows that cannot be weakened
//!
//! Two patterns in this crate fundamentally require sequential
//! consistency (a `StoreLoad` barrier), and reappear across the
//! algorithms:
//!
//! 1. **Announce → validate** (hazard pointers, epochs, intervals, RCU
//!    read-lock, and Algorithm 4's `acquire`): a reader publishes an
//!    announcement and then re-reads shared state to validate it. The
//!    announcement store must be globally visible *before* the validate
//!    load executes, otherwise a concurrent reclaimer can scan the
//!    announcement array, miss the announcement, and free the version
//!    the reader just validated. Acquire/release cannot order an earlier
//!    store against a later load; only `SeqCst` accesses or a `SeqCst`
//!    fence can.
//! 2. **Clear → scan** (Algorithm 4's `release`): a releaser clears its
//!    own announcement and then scans everyone else's to decide whether
//!    it is the unique last holder. Two racing releasers that each miss
//!    the other's clear would *both* bail out and leak the version —
//!    breaking precision (Theorem 3.3), not just performance. The SC
//!    total order guarantees the last releaser's scan sees every earlier
//!    clear.
//!
//! Pattern 1 is expressed with a tunable announcement store **plus the
//! unconditional [`announce_validate_fence`]**, mirroring the idiom of
//! production reclamation libraries (crossbeam-epoch's `pin`, folly's
//! hazptr): a relaxed announce followed by a `SeqCst` fence costs one
//! fence, where a `SeqCst` store followed by the same fence (the
//! `strict-sc` build) costs two. The reclaimer side pairs with it
//! through [`scan_fence`]. Pattern 2 has no fence decomposition that
//! beats plain `SeqCst` stores, so Algorithm 4's handshake words are
//! pinned wholesale (see [`HANDSHAKE_CAS`]).
//!
//! # Fence-pairing argument (pattern 1)
//!
//! Let the reader do `A.store(x, ANNOUNCE_PUBLISH); F1 =
//! announce_validate_fence(); V.load(VERSION_LOAD)` and the reclaimer do
//! `retire V (an RMW); F2 = scan_fence(); A.load(SCAN_LOAD)`. `SeqCst`
//! fences are totally ordered. If `F1 < F2`, the reclaimer's scan
//! observes the announcement (C++ [atomics.fences]: store before `F1`,
//! load after `F2`) and conservatively keeps the version. If `F2 < F1`,
//! the reader's validate load observes the retirement (same rule, other
//! direction) and the validation fails/retries, so the reader never
//! relies on the missed announcement. Either way: no use-after-free.
//! The same two-case argument covers the epoch announce vs.
//! epoch-advance scan, the interval reservation vs. interval scan, and
//! the RCU generation announce vs. grace-period scan; the per-site
//! comments cite this section rather than repeating it.

#![allow(unused)] // each role is used by a subset of the algorithms

use std::sync::atomic::{fence, Ordering};

/// `true` when the crate is built in paper-fidelity mode (`strict-sc`):
/// every tunable role below reads as `SeqCst`. Recorded by the bench
/// harnesses so `BENCH_vm.json` attributes measurements to the right
/// regime.
pub const STRICT_SC: bool = cfg!(feature = "strict-sc");

macro_rules! tunable {
    ($(#[$doc:meta])* $name:ident = $weak:ident) => {
        $(#[$doc])*
        ///
        /// *Tunable role: shown ordering by default, `SeqCst` under
        /// `strict-sc`.*
        pub const $name: Ordering = if STRICT_SC {
            Ordering::SeqCst
        } else {
            Ordering::$weak
        };
    };
}

// ---------------------------------------------------------------------
// Version word (the current-version pointer `V` of HP/EP/RCU/IBR).
// ---------------------------------------------------------------------

tunable! {
    /// **`Acquire`** — load of a current-version word whose value the
    /// caller will dereference (data tokens carry `mvcc-core` root node
    /// ids). Pairs with [`VERSION_CAS`]'s release on the publishing
    /// store: everything the successful setter wrote before its `set`
    /// (the new version's tree nodes) happens-before the reader's use.
    VERSION_LOAD = Acquire
}

tunable! {
    /// **`AcqRel`** — the CAS that installs a new current version.
    /// Release on success publishes the version's payload to
    /// [`VERSION_LOAD`]ers; acquire orders the setter after the previous
    /// publisher (the RMW also extends the predecessor's release
    /// sequence, so readers that load any later value still synchronize
    /// with every earlier setter).
    VERSION_CAS = AcqRel
}

tunable! {
    /// **`Acquire`** — the failure ordering of every tunable CAS in the
    /// crate. The loaded value either feeds a retry (which re-validates
    /// through the success ordering) or an abort decision that the VM
    /// contract already allows to be conservative.
    CAS_FAILURE = Acquire
}

// ---------------------------------------------------------------------
// Announcements (hazard slots, epoch/generation announcements, interval
// reservations) and the reclamation scans that read them.
// ---------------------------------------------------------------------

tunable! {
    /// **`Relaxed`** — a reader publishing its protection announcement
    /// (hazard slot, announced epoch, reserved era, RCU generation).
    /// **Must** be followed by [`announce_validate_fence`] before the
    /// validate load; the fence, not the store, provides the StoreLoad
    /// edge (see the module docs' pairing argument).
    ANNOUNCE_PUBLISH = Relaxed
}

tunable! {
    /// **`Release`** — a reader withdrawing its announcement on
    /// `release` (hazard slot → `IDLE`, epoch/generation → quiescent,
    /// reservation → idle). Release pairs with the reclaimer's
    /// [`SCAN_LOAD`] acquire: every use the reader made of the protected
    /// version happens-before a scan that observes the withdrawal, so
    /// the scan may free the version. A scan that instead sees the stale
    /// announcement merely keeps the version another round —
    /// conservative, and for the imprecise algorithms (HP/EP/IBR)
    /// bounded by their existing imprecision budget. (Algorithm 4's
    /// clear is *not* this role — precision makes its clear a pinned
    /// StoreLoad window, see [`HANDSHAKE_CAS`].)
    ANNOUNCE_CLEAR = Release
}

tunable! {
    /// **`Acquire`** — a reclamation scan reading the announcement /
    /// reservation / generation array. Pairs with [`ANNOUNCE_CLEAR`]
    /// (quit-protection edge) and, through [`scan_fence`] /
    /// [`announce_validate_fence`], with [`ANNOUNCE_PUBLISH`]. Every
    /// scan loop must execute [`scan_fence`] once before its first
    /// `SCAN_LOAD`.
    SCAN_LOAD = Acquire
}

// ---------------------------------------------------------------------
// Logical clocks (the epoch counter, the IBR era, the RCU generation).
// ---------------------------------------------------------------------

tunable! {
    /// **`Acquire`** — reading a logical clock (epoch / era /
    /// generation) to announce it or to stamp a retirement. Pairs with
    /// [`CLOCK_BUMP`] / [`EPOCH_ADVANCE_CAS`]'s release so clock values
    /// never run ahead of the state they summarize. A stale (smaller)
    /// clock read only widens the interval a version is considered live
    /// for — conservative in every use below.
    CLOCK_LOAD = Acquire
}

tunable! {
    /// **`AcqRel`** — bumping a logical clock with an RMW (the IBR era
    /// on every successful `set`, the RCU generation in `synchronize`).
    /// The RMW chain keeps all bumps totally ordered on the clock word
    /// and extends every predecessor's release sequence.
    CLOCK_BUMP = AcqRel
}

tunable! {
    /// **`AcqRel`** — the epoch-advance CAS. Release publishes "epoch
    /// `e` closed"; acquire orders the advancing thread after every
    /// retirement filed under the bag it is about to drain (the bag
    /// mutex adds its own edge for the contents).
    EPOCH_ADVANCE_CAS = AcqRel
}

// ---------------------------------------------------------------------
// Payload side-channels.
// ---------------------------------------------------------------------

tunable! {
    /// **`Relaxed`** — Algorithm 4's data array `D[i]`, both sides. `D`
    /// is never used to synchronize: a slot is written only while its
    /// owner holds the claim CAS on `S[i]` (exclusive), and every read
    /// path first traverses a carrying word (`V`, `A[k]` or `S[i]`,
    /// all pinned `SeqCst`, which includes acquire/release) whose
    /// synchronizes-with edge orders the `D` write before the `D` read.
    /// The `release`-path read is additionally protected by the frozen
    /// slot: a new claimant's `D` write happens-after the erase CAS,
    /// which is sequenced after this read, and a load cannot read from a
    /// write that happens-after it.
    DATA_SLOT = Relaxed
}

tunable! {
    /// **`Relaxed`** — re-reading a word this same process wrote last
    /// (e.g. a setter loading its own committed announcement).
    /// Same-location coherence already guarantees the own store is
    /// observed; no cross-thread edge is taken from the value.
    SELF_LOAD = Relaxed
}

tunable! {
    /// **`Relaxed`** — the IBR birth-era hint (`v_birth`). A racing
    /// reader can observe a stale (older) birth, which only *widens* the
    /// retired interval and delays reclamation — conservative by the
    /// module's own documented argument; never a safety edge.
    BIRTH_HINT = Relaxed
}

// ---------------------------------------------------------------------
// PidPool: the lease state machine and its Treiber freelist.
// ---------------------------------------------------------------------

tunable! {
    /// **`AcqRel`** — a lease-state transition CAS (`FREE → LEASED`,
    /// `FREE → RESERVED`, `RESERVED → LEASED`, `RESERVED → FREE`).
    /// Acquire on the claiming transitions makes everything the previous
    /// holder did before releasing happen-before the new holder (the
    /// edge `PerProc` relies on when a pid migrates across threads);
    /// release on the relinquishing transitions publishes it.
    LEASE_CAS = AcqRel
}

tunable! {
    /// **`Acquire`** — reading a pid's lease state to pick a transition
    /// (the `release` loop) or report diagnostics-adjacent decisions.
    LEASE_STATE_LOAD = Acquire
}

tunable! {
    /// **`Release`** — `release`'s `LEASED → FREE` store. Publishes the
    /// departing holder's writes to the next [`LEASE_CAS`] claimant.
    LEASE_RELEASE_STORE = Release
}

tunable! {
    /// **`Acquire`** — loading the freelist head before a pop/push
    /// attempt. Synchronizes with the [`FREELIST_CAS`] that installed
    /// the value (and, through the RMW release sequence, with every
    /// earlier pusher), making the popped slot's [`FREELIST_LINK`]
    /// visible.
    FREELIST_HEAD_LOAD = Acquire
}

tunable! {
    /// **`AcqRel`** — the head CAS of a freelist push or pop. Release on
    /// push publishes the node's link store; the RMW chain preserves
    /// every predecessor's release sequence for later
    /// [`FREELIST_HEAD_LOAD`]s. The tag field carries the ABA argument;
    /// ordering plays no part in it.
    FREELIST_CAS = AcqRel
}

tunable! {
    /// **`Relaxed`** — a freelist node's `next` link. Written only by
    /// the pusher that currently owns the node, published by the
    /// subsequent [`FREELIST_CAS`] release; read only after a
    /// [`FREELIST_HEAD_LOAD`] acquire that synchronized with it. A
    /// stale link read after losing a race is discarded by the tag CAS
    /// failing.
    FREELIST_LINK = Relaxed
}

tunable! {
    /// **`Release`** — publishing "at least one release hook exists"
    /// after appending the hook under the write lock.
    HOOK_FLAG_SET = Release
}

tunable! {
    /// **`Acquire`** — the release path's hook-presence check. Pairs
    /// with [`HOOK_FLAG_SET`]; the hook vector itself is read under the
    /// `RwLock`. Registration racing a release may or may not be seen —
    /// the documented (and pre-existing) contract.
    HOOK_FLAG_READ = Acquire
}

// ---------------------------------------------------------------------
// Pinned roles — `SeqCst` in both builds. Each carries the proof
// obligation that forbids weakening.
// ---------------------------------------------------------------------

/// **Pinned `SeqCst`** — every CAS on Algorithm 4's handshake words
/// (`V`, the status array `S`, the announcement array `A`).
///
/// Proof obligation: Appendix B's linearization argument (Lemmas B.1–
/// B.10) orders *all* of the algorithm's CASes in one global sequence —
/// e.g. Lemma B.2 counts how many helping CASes an acquire can thwart,
/// and Lemma B.10's abort-legality pigeonhole counts slot claims
/// concurrent with a set — and both StoreLoad windows of the module docs
/// appear here: `acquire` announces `A[k]` and validates against `V`
/// (window 1), and `release` clears `A[k]` then scans `A` under the
/// `usable → pending → frozen` protocol (window 2, where two racing
/// releasers that miss each other's clears would both bail and leak the
/// version, violating precision). `SeqCst` on all three words is the
/// proof's model; no per-site weakening is attempted.
pub const HANDSHAKE_CAS: Ordering = Ordering::SeqCst;

/// **Pinned `SeqCst`** — plain loads of Algorithm 4's handshake words.
/// Same obligation as [`HANDSHAKE_CAS`]: the validate loads of window 1
/// and the scan loads of window 2 must participate in the single total
/// order.
pub const HANDSHAKE_LOAD: Ordering = Ordering::SeqCst;

/// **Pinned `SeqCst`** — plain stores to Algorithm 4's handshake words
/// (the announce store, the announcement clear, the freeze store, the
/// abort-path slot clears). The clear → scan window (module docs,
/// pattern 2) is why even the *stores* stay `SeqCst`: a release-only
/// clear could be missed by every concurrent releaser's scan, and
/// precision (Theorem 3.3) forbids the resulting leak.
pub const HANDSHAKE_STORE: Ordering = Ordering::SeqCst;

/// **Pinned `SeqCst`** — the RCU grace-period RMW (`gen.fetch_add` in
/// `synchronize`). The writer must order its preceding version CAS
/// against its subsequent reader-generation scan (a StoreLoad edge); the
/// `SeqCst` RMW plus [`scan_fence`] provides it, and the generation
/// chain is what readers announce against.
pub const GRACE_PERIOD_RMW: Ordering = Ordering::SeqCst;

/// The StoreLoad fence between a reader's announcement store and its
/// validate load — **unconditional** in both builds (pattern 1 of the
/// module docs; pairs with [`scan_fence`]). The `strict-sc` build keeps
/// it too: `SeqCst` accesses alone would also pair, but keeping the
/// fence makes the strict build a strict superset of the default one
/// rather than a differently-shaped program.
#[inline]
pub fn announce_validate_fence() {
    fence(Ordering::SeqCst);
}

/// The reclaimer-side `SeqCst` fence, executed once per scan before the
/// first [`SCAN_LOAD`] — **unconditional** in both builds. Pairs with
/// [`announce_validate_fence`] per the module docs' two-case argument.
#[inline]
pub fn scan_fence() {
    fence(Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_sc_flag_matches_feature() {
        assert_eq!(STRICT_SC, cfg!(feature = "strict-sc"));
    }

    #[test]
    fn tunable_roles_collapse_to_seqcst_under_strict_sc() {
        let tunables = [
            VERSION_LOAD,
            VERSION_CAS,
            CAS_FAILURE,
            ANNOUNCE_PUBLISH,
            ANNOUNCE_CLEAR,
            SCAN_LOAD,
            CLOCK_LOAD,
            CLOCK_BUMP,
            EPOCH_ADVANCE_CAS,
            DATA_SLOT,
            SELF_LOAD,
            BIRTH_HINT,
            LEASE_CAS,
            LEASE_STATE_LOAD,
            LEASE_RELEASE_STORE,
            FREELIST_HEAD_LOAD,
            FREELIST_CAS,
            FREELIST_LINK,
            HOOK_FLAG_SET,
            HOOK_FLAG_READ,
        ];
        if STRICT_SC {
            assert!(tunables.iter().all(|&o| o == Ordering::SeqCst));
        } else {
            assert!(tunables.iter().any(|&o| o != Ordering::SeqCst));
        }
        // Pinned roles never move.
        for pinned in [
            HANDSHAKE_CAS,
            HANDSHAKE_LOAD,
            HANDSHAKE_STORE,
            GRACE_PERIOD_RMW,
        ] {
            assert_eq!(pinned, Ordering::SeqCst);
        }
    }
}
