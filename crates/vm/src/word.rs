//! Single-word packings for Algorithm 4.
//!
//! The paper's PSWF algorithm CASes three record types — `Version
//! {timestamp, index}`, `Announcement {version, help}` and `VersionStatus
//! {version, status}` — each of which must be a single atomic word for the
//! algorithm's CAS steps to be primitive. We pack all three into a `u64`:
//!
//! ```text
//! bits  0..16 : slot index           (P ≤ 21844, since |S| = 3P+1 < 2^16)
//! bits 16..61 : timestamp            (45 bits; 2^45 successful sets)
//! bits 61..63 : status               (usable / pending / frozen)
//! bit  63     : help flag            (announcements only)
//! ```
//!
//! A *version value* occupies the low 61 bits; announcements add the help
//! bit; status records add the 2-bit status. The distinguished `EMPTY`
//! version is `(timestamp = 0, index = 0xFFFF)` — unreachable for real
//! versions because timestamps start at 1 and indices are `< 3P+1 < 0xFFFF`.
//!
//! Uniqueness (why a 45-bit timestamp + index identifies a version): V's
//! timestamp strictly increases across successful sets (Lemma B.1 — no two
//! are concurrent, each adds exactly 1), and an aborted candidate's
//! timestamp `V.ts + 1` strictly exceeds every already-dead version's
//! timestamp, so candidate words never collide with collectable versions.

/// Number of bits for the slot index.
pub const IDX_BITS: u32 = 16;
/// Mask of the index field.
pub const IDX_MASK: u64 = (1 << IDX_BITS) - 1;
/// Shift of the timestamp field.
pub const TS_SHIFT: u32 = IDX_BITS;
/// Number of timestamp bits.
pub const TS_BITS: u32 = 45;
/// Mask of the (shifted) timestamp field.
pub const TS_MASK: u64 = ((1 << TS_BITS) - 1) << TS_SHIFT;
/// Mask of a full version value (timestamp + index).
pub const VER_MASK: u64 = TS_MASK | IDX_MASK;
/// Shift of the status field.
pub const STATUS_SHIFT: u32 = 61;
/// Mask of the status field.
pub const STATUS_MASK: u64 = 0b11 << STATUS_SHIFT;
/// Help flag (announcement words).
pub const HELP: u64 = 1 << 63;

/// `VStatus::usable` — no release in progress; the version may be in use.
pub const USABLE: u64 = 0 << STATUS_SHIFT;
/// `VStatus::pending` — one releaser is scanning/helping.
pub const PENDING: u64 = 1 << STATUS_SHIFT;
/// `VStatus::frozen` — no new process can ever commit this version.
pub const FROZEN: u64 = 2 << STATUS_SHIFT;

/// The ⟨⊥,⊥⟩ version.
pub const EMPTY_VER: u64 = IDX_MASK; // ts = 0, index = 0xFFFF

/// An unoccupied status slot: ⟨empty, usable⟩.
pub const EMPTY_USABLE: u64 = EMPTY_VER | USABLE;

/// An idle announcement: ⟨empty, help = false⟩.
pub const EMPTY_ANNOUNCE: u64 = EMPTY_VER;

/// Build a version value from a timestamp and slot index.
#[inline]
pub fn pack_ver(ts: u64, index: usize) -> u64 {
    debug_assert!(ts < (1 << TS_BITS), "timestamp overflow");
    debug_assert!((index as u64) < IDX_MASK, "index overflow");
    (ts << TS_SHIFT) | index as u64
}

/// Extract the version value (drop help/status bits).
#[inline]
pub fn ver_of(word: u64) -> u64 {
    word & VER_MASK
}

/// Extract the timestamp of a version value.
#[inline]
pub fn ts_of(word: u64) -> u64 {
    (word & TS_MASK) >> TS_SHIFT
}

/// Extract the slot index of a version value.
#[inline]
pub fn idx_of(word: u64) -> usize {
    (word & IDX_MASK) as usize
}

/// Extract the status bits of a status word.
#[inline]
pub fn status_of(word: u64) -> u64 {
    word & STATUS_MASK
}

/// Does an announcement word have the help flag raised?
#[inline]
pub fn has_help(word: u64) -> bool {
    word & HELP != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (ts, idx) in [(1u64, 0usize), (2, 13), ((1 << TS_BITS) - 1, 0xFFFE)] {
            let v = pack_ver(ts, idx);
            assert_eq!(ts_of(v), ts);
            assert_eq!(idx_of(v), idx);
            assert_eq!(ver_of(v), v);
        }
    }

    #[test]
    fn empty_is_distinct_from_real_versions() {
        // Real versions have ts >= 1 and idx < 0xFFFF.
        let real = pack_ver(1, 0);
        assert_ne!(real, EMPTY_VER);
        assert_eq!(ts_of(EMPTY_VER), 0);
        assert_eq!(idx_of(EMPTY_VER), 0xFFFF);
    }

    #[test]
    fn flags_do_not_clobber_version() {
        let v = pack_ver(77, 5);
        assert_eq!(ver_of(v | HELP), v);
        assert_eq!(ver_of(v | FROZEN), v);
        assert!(has_help(v | HELP));
        assert!(!has_help(v));
        assert_eq!(status_of(v | PENDING), PENDING);
        assert_eq!(status_of(v | FROZEN), FROZEN);
        assert_eq!(status_of(v), USABLE);
    }

    #[test]
    fn status_values_are_distinct() {
        let mut set = std::collections::HashSet::new();
        for s in [USABLE, PENDING, FROZEN] {
            assert!(set.insert(s));
        }
        // HELP bit does not alias status bits.
        assert_eq!(HELP & STATUS_MASK, 0);
    }
}
