//! # mvcc-vm — the Version Maintenance problem and its solutions
//!
//! The *Version Maintenance (VM) problem* (§3 of the paper) abstracts what a
//! multiversion transactional system needs in order to enter and exit
//! transactions: a linearizable object with three operations, each invoked
//! with the calling process id `k` (operations with the same `k` never run
//! concurrently, and each `acquire(k)` is followed by a `release(k)` with at
//! most one `set(k, ·)` in between):
//!
//! * `acquire(k) -> data`  — returns the current version's data pointer and
//!   guarantees it cannot be collected while held;
//! * `set(k, data) -> bool` — makes `data` the current version; may fail
//!   only if a successful `set` happened since this process's `acquire`;
//! * `release(k) -> [data]` — gives up the acquired version and returns the
//!   versions that thereby stop being *live* (current, or acquired and not
//!   released). In a **precise** solution the returned list is a singleton
//!   exactly when the releasing process was the last holder.
//!
//! Five implementations matching the paper's §3.1, §6 and §7.1 evaluation,
//! plus one extension ([`IntervalVm`]) from the §6 pointer to IBR \[63\]:
//!
//! | Type | Precise | Progress | acquire | set | release | relaxed-audit |
//! |------|---------|----------|---------|-----|---------|---------------|
//! | [`PswfVm`]   | yes | wait-free           | O(1) | O(P) | O(P) | handshake pinned `SeqCst`; data array relaxed |
//! | [`PslfVm`]   | yes | lock-free (no helping) | unbounded retries | O(P) | O(P) | handshake pinned `SeqCst`; data array relaxed |
//! | [`HazardVm`] | no (≤ 2P retired) | non-blocking readers | O(1) expected | O(1) | amortized O(1) | acq/rel + announce/scan fences |
//! | [`EpochVm`]  | no (unbounded)     | non-blocking | O(1) | O(1) | O(P) on epoch close | acq/rel + announce/scan fences |
//! | [`RcuVm`]    | yes (≤ 1 old) | **writers block on readers** | O(1) | O(1) | O(readers) blocking | acq/rel + fences; grace RMW pinned |
//! | [`IntervalVm`] | no (≤ 2P + pinned intervals) | non-blocking | O(1) expected | O(1) | amortized O(1) | acq/rel + announce/scan fences |
//!
//! (The last column summarizes each algorithm's position after the
//! relaxed-ordering audit; `strict-sc` collapses every tunable entry
//! back to `SeqCst`.)
//!
//! Data pointers are opaque `u64` tokens (`mvcc-core` stores version-root
//! node ids in them); [`NIL_DATA`] is the "no data" token of the initial
//! version when a system starts empty.
//!
//! ## Memory-ordering contract
//!
//! The paper's model is a sequentially consistent shared memory, and the
//! seed reproduction used `SeqCst` everywhere for fidelity. That audit
//! is now complete: every atomic site in this crate names a **role**
//! from the [`ordering`] vocabulary module, which documents one pairing
//! argument per role instead of ad-hoc per-site reasoning. Hot-path
//! announcement traffic runs on acquire/release (plus two explicit
//! `SeqCst` fences where a StoreLoad edge is irreducible), while the
//! sites whose proofs genuinely need a total store order — Algorithm 4's
//! handshake words, whose Appendix B linearization argument orders all
//! of its CASes globally, and the RCU grace-period RMW — stay pinned at
//! `SeqCst` in every build.
//!
//! Building with the **`strict-sc`** feature maps every tunable role
//! back to `SeqCst` (the explicit fences remain), restoring the paper's
//! memory model wholesale. Use it as the safe harbor when auditing the
//! algorithms against the proofs, or to measure what the relaxed
//! orderings buy: the `mvcc-bench` `vm_ops` harness records per-op
//! latency under both regimes into `BENCH_vm.json`.

//! ## Example
//!
//! ```
//! use mvcc_vm::{PswfVm, VersionMaintenance};
//!
//! let vm = PswfVm::new(2, 100); // 2 processes, initial data token 100
//!
//! // Reader (process 1) pins the current version.
//! assert_eq!(vm.acquire(1), 100);
//!
//! // Writer (process 0) installs a new version.
//! vm.acquire(0);
//! assert!(vm.set(0, 200));
//! let mut dead = Vec::new();
//! vm.release(0, &mut dead);
//! assert!(dead.is_empty(), "reader still holds version 100");
//!
//! // The reader's release is the last: precise collection hands back
//! // exactly the dead version.
//! vm.release(1, &mut dead);
//! assert_eq!(dead, vec![100]);
//! ```

mod counter;
mod epoch;
mod hazard;
mod interval;
mod lease;
pub mod ordering;
mod pswf;
mod rcu;
mod util;
mod word;

pub use counter::VersionCounter;
pub use epoch::EpochVm;
pub use hazard::HazardVm;
pub use interval::IntervalVm;
pub use lease::{LeaseError, PidPool};
pub use pswf::{PslfVm, PswfVm};
pub use rcu::RcuVm;

/// The "no data" token used for the initial version of an empty system.
/// (In `mvcc-core` this is the nil tree root.)
pub const NIL_DATA: u64 = u64::MAX - 1;

/// A solution to the Version Maintenance problem (§3).
///
/// # Contract
/// * `k < processes()`.
/// * Operations with the same `k` are never invoked concurrently, and per
///   process follow the pattern `acquire (set)? release` — exactly the
///   usage of Figure 1's transactions. Behaviour is unspecified otherwise
///   (the paper leaves it undefined; our implementations assert in debug
///   builds where cheap).
/// * `release` appends collectable data tokens to `out` instead of
///   allocating a fresh list; precise implementations append at most one.
pub trait VersionMaintenance: Send + Sync {
    /// Number of processes `P` this instance was constructed for.
    fn processes(&self) -> usize;

    /// Return the current version's data token, pinned against collection.
    fn acquire(&self, k: usize) -> u64;

    /// Try to install `data` as the current version. Returns `false` only
    /// if a successful `set` intervened since this process's `acquire`
    /// (1-abortability-style condition, §3).
    fn set(&self, k: usize, data: u64) -> bool;

    /// Release the acquired version; appends the data tokens of versions
    /// that are no longer live (and thus safe to collect) to `out`.
    fn release(&self, k: usize, out: &mut Vec<u64>);

    /// The current version's data token (diagnostic; not an acquire).
    fn current(&self) -> u64;

    /// Number of versions created and not yet handed back for collection
    /// (includes the current version). This is the "live versions" series
    /// of Table 2 / Figure 6.
    fn uncollected_versions(&self) -> u64;
}

impl<V: VersionMaintenance + ?Sized> VersionMaintenance for Box<V> {
    fn processes(&self) -> usize {
        (**self).processes()
    }
    fn acquire(&self, k: usize) -> u64 {
        (**self).acquire(k)
    }
    fn set(&self, k: usize, data: u64) -> bool {
        (**self).set(k, data)
    }
    fn release(&self, k: usize, out: &mut Vec<u64>) {
        (**self).release(k, out)
    }
    fn current(&self) -> u64 {
        (**self).current()
    }
    fn uncollected_versions(&self) -> u64 {
        (**self).uncollected_versions()
    }
}

impl<V: VersionMaintenance + ?Sized> VersionMaintenance for std::sync::Arc<V> {
    fn processes(&self) -> usize {
        (**self).processes()
    }
    fn acquire(&self, k: usize) -> u64 {
        (**self).acquire(k)
    }
    fn set(&self, k: usize, data: u64) -> bool {
        (**self).set(k, data)
    }
    fn release(&self, k: usize, out: &mut Vec<u64>) {
        (**self).release(k, out)
    }
    fn current(&self) -> u64 {
        (**self).current()
    }
    fn uncollected_versions(&self) -> u64 {
        (**self).uncollected_versions()
    }
}

/// Identifier for the algorithm families — used by the experiment
/// harnesses to sweep over algorithms (Table 2, Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmKind {
    /// Precise, safe, wait-free (Algorithm 4).
    Pswf,
    /// PSWF without helping: precise, lock-free.
    Pslf,
    /// Hazard-pointer based (imprecise).
    Hazard,
    /// Epoch based (imprecise).
    Epoch,
    /// Read-copy-update based (precise, blocking writer).
    Rcu,
    /// Interval-based reclamation (imprecise; §6 extension, IBR \[63\]).
    Interval,
}

impl VmKind {
    /// The paper's five algorithms, in the order its tables list them.
    pub const PAPER: [VmKind; 5] = [
        VmKind::Pswf,
        VmKind::Pslf,
        VmKind::Hazard,
        VmKind::Epoch,
        VmKind::Rcu,
    ];

    /// All algorithms including the IBR extension.
    pub const ALL: [VmKind; 6] = [
        VmKind::Pswf,
        VmKind::Pslf,
        VmKind::Hazard,
        VmKind::Epoch,
        VmKind::Rcu,
        VmKind::Interval,
    ];

    /// Table/figure label.
    pub fn name(self) -> &'static str {
        match self {
            VmKind::Pswf => "PSWF",
            VmKind::Pslf => "PSLF",
            VmKind::Hazard => "HP",
            VmKind::Epoch => "EP",
            VmKind::Rcu => "RCU",
            VmKind::Interval => "IBR",
        }
    }

    /// Whether the algorithm guarantees precise garbage collection.
    pub fn is_precise(self) -> bool {
        matches!(self, VmKind::Pswf | VmKind::Pslf | VmKind::Rcu)
    }

    /// Instantiate for `processes` processes with `initial` as the first
    /// current version's data token.
    pub fn build(self, processes: usize, initial: u64) -> Box<dyn VersionMaintenance> {
        match self {
            VmKind::Pswf => Box::new(PswfVm::new(processes, initial)),
            VmKind::Pslf => Box::new(PslfVm::new(processes, initial)),
            VmKind::Hazard => Box::new(HazardVm::new(processes, initial)),
            VmKind::Epoch => Box::new(EpochVm::new(processes, initial)),
            VmKind::Rcu => Box::new(RcuVm::new(processes, initial)),
            VmKind::Interval => Box::new(IntervalVm::new(processes, initial)),
        }
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn kind_metadata() {
        assert_eq!(VmKind::PAPER.len(), 5);
        assert_eq!(VmKind::ALL.len(), 6);
        assert!(VmKind::Pswf.is_precise());
        assert!(VmKind::Pslf.is_precise());
        assert!(VmKind::Rcu.is_precise());
        assert!(!VmKind::Hazard.is_precise());
        assert!(!VmKind::Epoch.is_precise());
        assert!(!VmKind::Interval.is_precise());
        assert_eq!(VmKind::Pswf.name(), "PSWF");
        assert_eq!(VmKind::Interval.name(), "IBR");
    }

    /// The sequential specification (§3 / Appendix A) holds for every
    /// algorithm when driven sequentially.
    #[test]
    fn sequential_specification_all_kinds() {
        for kind in VmKind::ALL {
            let vm = kind.build(4, 100);
            let mut out = Vec::new();

            // acquire returns current version.
            assert_eq!(vm.acquire(0), 100, "{kind:?}");
            // set makes the new version current.
            assert!(vm.set(0, 200), "{kind:?}");
            assert_eq!(vm.current(), 200, "{kind:?}");
            vm.release(0, &mut out);
            // Version 100 is dead: a precise algorithm returns it now.
            if kind.is_precise() {
                assert_eq!(out, vec![100], "{kind:?} must return dead version");
            }

            // A reader holding the old version delays collection.
            out.clear();
            assert_eq!(vm.acquire(1), 200, "{kind:?}");
            assert_eq!(vm.acquire(2), 200, "{kind:?}");
            assert!(vm.set(2, 300), "{kind:?}");
            if kind == VmKind::Rcu {
                // RCU's post-set release *blocks* until the reader exits
                // (the paper's critique of RCU) — drive it from another
                // thread and let the reader unblock it.
                std::thread::scope(|s| {
                    let writer = s.spawn(|| {
                        let mut o = Vec::new();
                        vm.release(2, &mut o);
                        o
                    });
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    let mut o1 = Vec::new();
                    vm.release(1, &mut o1);
                    assert!(o1.is_empty(), "RCU readers never return versions");
                    let o = writer.join().unwrap();
                    assert_eq!(o, vec![200], "RCU writer reclaims after grace period");
                });
            } else {
                vm.release(2, &mut out);
                if kind.is_precise() {
                    assert!(out.is_empty(), "{kind:?}: p1 still holds 200, got {out:?}");
                }
                vm.release(1, &mut out);
                if kind.is_precise() {
                    assert_eq!(out, vec![200], "{kind:?}: last holder returns 200");
                }
            }

            // Current version is never handed out for collection.
            assert!(!out.contains(&300), "{kind:?}");
        }
    }

    /// A set with a stale acquire must abort once another set succeeded.
    #[test]
    fn stale_set_aborts() {
        for kind in VmKind::ALL {
            let vm = kind.build(4, 0);
            let mut out = Vec::new();
            assert_eq!(vm.acquire(0), 0);
            assert_eq!(vm.acquire(1), 0);
            assert!(vm.set(0, 1), "{kind:?}");
            assert!(!vm.set(1, 2), "{kind:?}: concurrent-success must abort");
            // Release the reader first: RCU's post-set release blocks
            // until all read-side critical sections exit.
            vm.release(1, &mut out);
            vm.release(0, &mut out);
            assert_eq!(vm.current(), 1, "{kind:?}");
        }
    }

    /// Each dead version token is returned at most once across releases.
    #[test]
    fn no_double_collect_sequential() {
        for kind in VmKind::ALL {
            let vm = kind.build(3, 0);
            let mut all = Vec::new();
            for round in 1..=50u64 {
                let mut out = Vec::new();
                vm.acquire(0);
                assert!(vm.set(0, round));
                vm.release(0, &mut out);
                all.extend(out);
            }
            let mut sorted = all.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), all.len(), "{kind:?}: duplicate collection");
            assert!(!all.contains(&50), "{kind:?}: current version collected");
        }
    }

    /// Precise algorithms leave exactly one uncollected version (the
    /// current one) in quiescence; HP/EP are allowed to lag.
    #[test]
    fn quiescent_precision() {
        for kind in VmKind::ALL {
            let vm = kind.build(2, 0);
            let mut out = Vec::new();
            for round in 1..=20u64 {
                vm.acquire(0);
                assert!(vm.set(0, round));
                vm.release(0, &mut out);
            }
            if kind.is_precise() {
                assert_eq!(vm.uncollected_versions(), 1, "{kind:?}");
            } else {
                assert!(vm.uncollected_versions() >= 1, "{kind:?}");
            }
        }
    }
}
