//! Live-version accounting shared by all VM implementations.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counts versions created (successful `set`s plus the initial version) and
/// versions handed back for collection. `uncollected()` is the "number of
/// live versions" series that Table 2 and Figure 6 report (for imprecise
/// algorithms it additionally counts retired-but-not-yet-collected
/// versions, which is exactly the quantity the paper measures).
///
/// All accesses are `Relaxed` (the counters slice of the relaxed-ordering
/// audit): pure statistics, never read by any reclamation decision;
/// callers needing a settled figure (tests, quiescence checks) already
/// synchronize via thread joins.
#[derive(Debug, Default)]
pub struct VersionCounter {
    created: AtomicU64,
    collected: AtomicU64,
}

impl VersionCounter {
    /// Counter starting at one created version (the initial version).
    pub fn with_initial() -> Self {
        let c = VersionCounter::default();
        c.created.fetch_add(1, Ordering::Relaxed);
        c
    }

    /// Record a successful `set` (a new version exists).
    #[inline]
    pub fn created(&self) {
        self.created.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` versions returned for collection.
    #[inline]
    pub fn collected(&self, n: u64) {
        self.collected.fetch_add(n, Ordering::Relaxed);
    }

    /// Versions created and not yet returned (includes the current one).
    #[inline]
    pub fn uncollected(&self) -> u64 {
        self.created
            .load(Ordering::Relaxed)
            .saturating_sub(self.collected.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let c = VersionCounter::with_initial();
        assert_eq!(c.uncollected(), 1);
        c.created();
        c.created();
        assert_eq!(c.uncollected(), 3);
        c.collected(2);
        assert_eq!(c.uncollected(), 1);
    }
}
