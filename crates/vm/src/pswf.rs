//! The **PSWF** algorithm — Precise, Safe and Wait-Free Version Maintenance
//! (Algorithm 4 of the paper) — and its **PSLF** variant without helping.
//!
//! Data layout (Figure 3):
//!
//! * `v`  — the current version `V` (packed timestamp+index word);
//! * `s`  — the status array `S[3P+1]`: `⟨version, usable|pending|frozen⟩`
//!   or the distinguished `⟨empty, usable⟩`;
//! * `d`  — the data array `D[3P+1]`, indexed by `version.index`;
//! * `a`  — the announcement array `A[P]`: `⟨version, help⟩`.
//!
//! Cost bounds (Theorems 3.3–3.5): `acquire` is O(1), `set` and `release`
//! are O(P), the object is linearizable, and with a single writer every
//! operation has O(1)/O(P) amortized contention.
//!
//! ## Why 3P+1 slots
//!
//! At any moment at most `P` versions are acquired and at most `P`
//! candidate versions are being `set`, so at most `2P` slots are occupied;
//! with `3P+1` slots a setter that finds *no* empty slot must have been
//! concurrent with `P+1` slot claims, which pigeonholes into a process
//! running three sets concurrent with ours — one of which witnessed a
//! successful set overlapping ours, making the abort legal (Lemma B.10).
//!
//! ## Deviations from the paper's pseudocode
//!
//! 1. Algorithm 4's `set` returns `false` from inside the helping phase
//!    (line 37) *without* clearing the `S` slot it claimed, yet the proof
//!    of Lemma B.10 relies on "an unsuccessful set operation clears its
//!    own slot before terminating" — without the clear, slots leak until
//!    `set` permanently fails. We clear the claimed slot on **every**
//!    abort path.
//! 2. Our `release` returns *data tokens* rather than version handles, so
//!    it must read `D[v.index]` — and it must do so **before** the final
//!    erase CAS on `S[v.index]`: the instant the slot is erased a
//!    concurrent `set` may claim it and overwrite `D`, and a post-erase
//!    read would hand the newcomer's data out for collection (caught by
//!    the multi-writer double-collect oracle in `tests/vm_stress.rs`).
//!
//! ## Memory orderings
//!
//! Every operation on the handshake words `V` / `S` / `A` uses the
//! pinned roles [`HANDSHAKE_CAS`] / [`HANDSHAKE_LOAD`] /
//! [`HANDSHAKE_STORE`] (`SeqCst` in both builds): Appendix B's
//! linearization argument orders all of Algorithm 4's CASes globally,
//! and both of `crate::ordering`'s irreducible StoreLoad windows occur
//! here (announce->validate in `acquire`, clear->scan in `release`). Only
//! the data array `D` — a pure payload side-channel carried by those
//! words — runs on the tunable [`DATA_SLOT`] role.

use crossbeam::utils::CachePadded;
use std::sync::atomic::AtomicU64;

use crate::counter::VersionCounter;
use crate::ordering::{DATA_SLOT, HANDSHAKE_CAS, HANDSHAKE_LOAD, HANDSHAKE_STORE};
use crate::word::*;
use crate::VersionMaintenance;

/// Shared state of Algorithm 4, parameterised by whether `set` runs the
/// helping phase (PSWF) or not (PSLF).
struct Core {
    processes: usize,
    /// Global current version `V`.
    v: CachePadded<AtomicU64>,
    /// Status array `S[3P+1]`.
    s: Box<[CachePadded<AtomicU64>]>,
    /// Data array `D[3P+1]`.
    d: Box<[AtomicU64]>,
    /// Announcement array `A[P]`.
    a: Box<[CachePadded<AtomicU64>]>,
    counter: VersionCounter,
    /// CAS attempts that failed — each failure means another process's
    /// modifying operation responded on the same word during ours, i.e.
    /// one unit of contention in the §2 sense. Bumped only on failure
    /// (rare by Theorem 3.5), so the accounting is free on the hot path.
    /// `Relaxed` on both ends (stats only, never a decision): the
    /// counters slice of the relaxed-ordering audit — the state machine
    /// itself uses the pinned roles of [`crate::ordering`].
    cas_failures: AtomicU64,
}

impl Core {
    /// Record a CAS outcome for the contention accounting.
    #[inline]
    fn tally<T, E>(&self, r: Result<T, E>) -> Result<T, E> {
        if r.is_err() {
            self.cas_failures
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        r
    }
}

impl Core {
    fn new(processes: usize, initial: u64) -> Self {
        Self::with_slots(processes, 3 * processes + 1, initial)
    }

    fn with_slots(processes: usize, slots: usize, initial: u64) -> Self {
        assert!(processes >= 1, "need at least one process");
        assert!(
            slots > processes,
            "fewer slots than processes cannot even hold the acquired versions"
        );
        assert!(slots < IDX_MASK as usize, "too many slots");
        let core = Core {
            processes,
            v: CachePadded::new(AtomicU64::new(pack_ver(1, 0))),
            s: (0..slots)
                .map(|_| CachePadded::new(AtomicU64::new(EMPTY_USABLE)))
                .collect(),
            d: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            a: (0..processes)
                .map(|_| CachePadded::new(AtomicU64::new(EMPTY_ANNOUNCE)))
                .collect(),
            counter: VersionCounter::with_initial(),
            cas_failures: AtomicU64::new(0),
        };
        // Install the initial version ⟨ts=1, index=0⟩.
        core.s[0].store(pack_ver(1, 0) | USABLE, HANDSHAKE_STORE);
        core.d[0].store(initial, DATA_SLOT);
        core
    }

    #[inline]
    fn data_of(&self, ver: u64) -> u64 {
        // DATA_SLOT: the carrying word (V / A[k] / S[i], all pinned)
        // provides the synchronizes-with edge; see `ordering::DATA_SLOT`.
        self.d[idx_of(ver)].load(DATA_SLOT)
    }

    /// Algorithm 4 `acquire` (wait-free, O(1)): announce with the help flag
    /// raised, re-validate against `V`, commit by clearing the flag; retry
    /// at most twice, after which a helper must have committed for us.
    fn acquire_bounded(&self, k: usize) -> u64 {
        // HANDSHAKE_*: the announce->validate window below (store A[k],
        // then re-load V) is `ordering`'s StoreLoad pattern 1, and the
        // helping CASes are counted by Lemma B.2 in the global CAS
        // order — every access to V/A here is pinned.
        let mut u = self.v.load(HANDSHAKE_LOAD);
        self.a[k].store(u | HELP, HANDSHAKE_STORE);
        if u == self.v.load(HANDSHAKE_LOAD) {
            let _ =
                self.tally(self.a[k].compare_exchange(u | HELP, u, HANDSHAKE_CAS, HANDSHAKE_LOAD));
            return self.data_of(ver_of(self.a[k].load(HANDSHAKE_LOAD)));
        }
        for _ in 0..2 {
            let v = self.v.load(HANDSHAKE_LOAD);
            if self
                .tally(self.a[k].compare_exchange(
                    u | HELP,
                    v | HELP,
                    HANDSHAKE_CAS,
                    HANDSHAKE_LOAD,
                ))
                .is_err()
            {
                // Someone helped: use the committed version.
                return self.data_of(ver_of(self.a[k].load(HANDSHAKE_LOAD)));
            }
            if v == self.v.load(HANDSHAKE_LOAD) {
                let _ = self.tally(self.a[k].compare_exchange(
                    v | HELP,
                    v,
                    HANDSHAKE_CAS,
                    HANDSHAKE_LOAD,
                ));
                return self.data_of(ver_of(self.a[k].load(HANDSHAKE_LOAD)));
            }
            u = v;
        }
        // Two version changes occurred during this acquire; Lemma B.2
        // guarantees a helping CAS has committed A[k] by now.
        self.data_of(ver_of(self.a[k].load(HANDSHAKE_LOAD)))
    }

    /// PSLF `acquire` (lock-free): same announce/validate/commit protocol
    /// but retries unboundedly — without the setters' helping phase there
    /// is no bound on how often `V` can slip away. Release-side helping
    /// (the pending phase) may still commit for us mid-retry, in which case
    /// we must use the committed version to keep collection precise.
    fn acquire_unbounded(&self, k: usize) -> u64 {
        // HANDSHAKE_*: same announce->validate window as the bounded
        // variant; all V/A accesses pinned.
        let mut u = self.v.load(HANDSHAKE_LOAD);
        self.a[k].store(u | HELP, HANDSHAKE_STORE);
        loop {
            if u == self.v.load(HANDSHAKE_LOAD) {
                let _ = self.tally(self.a[k].compare_exchange(
                    u | HELP,
                    u,
                    HANDSHAKE_CAS,
                    HANDSHAKE_LOAD,
                ));
                return self.data_of(ver_of(self.a[k].load(HANDSHAKE_LOAD)));
            }
            let v = self.v.load(HANDSHAKE_LOAD);
            if self
                .tally(self.a[k].compare_exchange(
                    u | HELP,
                    v | HELP,
                    HANDSHAKE_CAS,
                    HANDSHAKE_LOAD,
                ))
                .is_err()
            {
                return self.data_of(ver_of(self.a[k].load(HANDSHAKE_LOAD)));
            }
            u = v;
        }
    }

    /// Algorithm 4 `set`: claim a status slot for the candidate version,
    /// optionally help pending acquires, then CAS the global version.
    fn set(&self, k: usize, data: u64, helping: bool) -> bool {
        let announced = self.a[k].load(HANDSHAKE_LOAD);
        debug_assert!(
            !has_help(announced) && ver_of(announced) != EMPTY_VER,
            "set({k}) without a committed acquire"
        );
        let old_ver = ver_of(announced);

        // Find an empty slot for the candidate version.
        let slots = self.s.len();
        let mut claimed = usize::MAX;
        let mut new_ver = 0u64;
        for i in 0..slots {
            if self.s[i].load(HANDSHAKE_LOAD) == EMPTY_USABLE {
                let ts = ts_of(self.v.load(HANDSHAKE_LOAD)) + 1;
                let cand = pack_ver(ts, i);
                if self
                    .tally(self.s[i].compare_exchange(
                        EMPTY_USABLE,
                        cand | USABLE,
                        HANDSHAKE_CAS,
                        HANDSHAKE_LOAD,
                    ))
                    .is_ok()
                {
                    // DATA_SLOT: exclusive while we hold the claim CAS;
                    // published to readers by the V CAS below.
                    self.d[i].store(data, DATA_SLOT);
                    claimed = i;
                    new_ver = cand;
                    break;
                }
            }
        }
        if claimed == usize::MAX {
            // All 3P+1 slots occupied: legal abort (see module docs).
            return false;
        }

        if helping {
            // Help every process with a raised help flag, up to 3 times —
            // an acquire can thwart at most two helping CASes, so the
            // third is guaranteed to commit (proof of Lemma B.2).
            for i in 0..self.processes {
                for _ in 0..3 {
                    let a = self.a[i].load(HANDSHAKE_LOAD);
                    if has_help(a) {
                        if old_ver != self.v.load(HANDSHAKE_LOAD) {
                            // Our own set can no longer succeed; clear the
                            // claimed slot (paper fix, see module docs).
                            self.s[claimed].store(EMPTY_USABLE, HANDSHAKE_STORE);
                            return false;
                        }
                        let _ = self.tally(self.a[i].compare_exchange(
                            a,
                            old_ver,
                            HANDSHAKE_CAS,
                            HANDSHAKE_LOAD,
                        ));
                    }
                }
            }
        }

        if self
            .tally(
                self.v
                    .compare_exchange(old_ver, new_ver, HANDSHAKE_CAS, HANDSHAKE_LOAD),
            )
            .is_ok()
        {
            self.counter.created();
            true
        } else {
            self.s[claimed].store(EMPTY_USABLE, HANDSHAKE_STORE);
            false
        }
    }

    /// Algorithm 4 `release`: clear the announcement; if the released
    /// version is dead, race through the usable→pending→frozen status
    /// protocol to decide the unique last releaser.
    fn release(&self, k: usize, out: &mut Vec<u64>) {
        let v = ver_of(self.a[k].load(HANDSHAKE_LOAD));
        // HANDSHAKE_STORE: this clear opens `ordering`'s StoreLoad
        // window 2 (clear -> scan): two racing releasers that each missed
        // the other's clear would both bail out and leak `v`, so the
        // clear must take part in the SC total order.
        self.a[k].store(EMPTY_ANNOUNCE, HANDSHAKE_STORE);
        if v == EMPTY_VER {
            return; // release without acquire (tolerated defensively)
        }
        if v == self.v.load(HANDSHAKE_LOAD) {
            return; // still the current version: live
        }
        let idx = idx_of(v);
        let mut s = self.s[idx].load(HANDSHAKE_LOAD);
        if ver_of(s) != v {
            return; // slot already recycled: another release returned v
        }
        if status_of(s) == USABLE {
            if self
                .tally(self.s[idx].compare_exchange(s, v | PENDING, HANDSHAKE_CAS, HANDSHAKE_LOAD))
                .is_err()
            {
                return; // another releaser owns the pending phase
            }
            // Pending phase: commit anyone who announced v with help up —
            // after this, no process can ever commit v again.
            for i in 0..self.processes {
                let a = self.a[i].load(HANDSHAKE_LOAD);
                if a == (v | HELP) {
                    let _ =
                        self.tally(self.a[i].compare_exchange(a, v, HANDSHAKE_CAS, HANDSHAKE_LOAD));
                }
            }
            s = v | FROZEN;
            self.s[idx].store(s, HANDSHAKE_STORE);
        }
        if status_of(s) == FROZEN {
            for i in 0..self.processes {
                if self.a[i].load(HANDSHAKE_LOAD) == v {
                    return; // committed holder still using v
                }
            }
            // Read v's data token BEFORE erasing the slot: the moment the
            // erase CAS lands, a concurrent set may claim slot `idx` and
            // overwrite D[idx] with its candidate's data — reading after
            // the erase can hand the *candidate's* token out for
            // collection (a double collect once that version dies). While
            // S[idx] still holds ⟨v, frozen⟩ the slot cannot be reused,
            // so this read is v's data for certain.
            // DATA_SLOT: cannot read a post-erase claimant's write — that
            // write happens-after the erase CAS below, which is sequenced
            // after this load (see `ordering::DATA_SLOT`).
            let data = self.d[idx].load(DATA_SLOT);
            if self
                .tally(self.s[idx].compare_exchange(s, EMPTY_USABLE, HANDSHAKE_CAS, HANDSHAKE_LOAD))
                .is_ok()
            {
                // We won the erase race: unique last releaser of v.
                self.counter.collected(1);
                out.push(data);
            }
        }
        // status == pending: another releaser is mid-scan; return nothing.
    }
}

/// The paper's wait-free algorithm (Algorithm 4): precise, safe, O(1)
/// `acquire`, O(P) `set`/`release`, O(1) amortized contention for readers
/// in the single-writer setting.
pub struct PswfVm {
    core: Core,
}

impl PswfVm {
    /// Create an instance for `processes` processes whose initial current
    /// version carries `initial` as its data token.
    pub fn new(processes: usize, initial: u64) -> Self {
        PswfVm {
            core: Core::new(processes, initial),
        }
    }

    /// Contention accounting: CAS failures summed over all operations so
    /// far. Each failed CAS means another process's modifying operation
    /// responded on the same word during ours — one unit of contention in
    /// the §2 sense. The `ablation_contention` bench divides this by
    /// operation counts to validate Theorem 3.5's O(1) amortized
    /// contention in the single-writer setting.
    pub fn cas_failures(&self) -> u64 {
        self.core
            .cas_failures
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// **Ablation constructor**: override the status-array size (the paper
    /// fixes it at `3P+1`; see the module docs for why). With fewer slots
    /// a `set` may abort spuriously — the slot-exhaustion abort is no
    /// longer guaranteed to coincide with a concurrent successful set —
    /// so this is exposed only to let the `ablation_slots` bench measure
    /// how abort rates respond. `slots` must exceed `processes`.
    pub fn with_slots(processes: usize, slots: usize, initial: u64) -> Self {
        PswfVm {
            core: Core::with_slots(processes, slots, initial),
        }
    }
}

impl VersionMaintenance for PswfVm {
    fn processes(&self) -> usize {
        self.core.processes
    }
    fn acquire(&self, k: usize) -> u64 {
        self.core.acquire_bounded(k)
    }
    fn set(&self, k: usize, data: u64) -> bool {
        self.core.set(k, data, true)
    }
    fn release(&self, k: usize, out: &mut Vec<u64>) {
        self.core.release(k, out)
    }
    fn current(&self) -> u64 {
        self.core.data_of(ver_of(self.core.v.load(HANDSHAKE_LOAD)))
    }
    fn uncollected_versions(&self) -> u64 {
        self.core.counter.uncollected()
    }
}

/// PSWF without the setters' helping phase (§7.1's "PSLF"): still precise
/// and safe — the release-side pending phase keeps committing stragglers —
/// but `acquire` degrades from wait-free to lock-free (unbounded retries
/// under a storm of successful sets).
pub struct PslfVm {
    core: Core,
}

impl PslfVm {
    /// Create an instance for `processes` processes whose initial current
    /// version carries `initial` as its data token.
    pub fn new(processes: usize, initial: u64) -> Self {
        PslfVm {
            core: Core::new(processes, initial),
        }
    }

    /// Contention accounting — see [`PswfVm::cas_failures`].
    pub fn cas_failures(&self) -> u64 {
        self.core
            .cas_failures
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl VersionMaintenance for PslfVm {
    fn processes(&self) -> usize {
        self.core.processes
    }
    fn acquire(&self, k: usize) -> u64 {
        self.core.acquire_unbounded(k)
    }
    fn set(&self, k: usize, data: u64) -> bool {
        self.core.set(k, data, false)
    }
    fn release(&self, k: usize, out: &mut Vec<u64>) {
        self.core.release(k, out)
    }
    fn current(&self) -> u64 {
        self.core.data_of(ver_of(self.core.v.load(HANDSHAKE_LOAD)))
    }
    fn uncollected_versions(&self) -> u64 {
        self.core.counter.uncollected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<V: VersionMaintenance>(vm: &V) {
        let mut out = Vec::new();
        // Interleave two acquirers and a writer, sequentially.
        assert_eq!(vm.acquire(0), 7);
        assert_eq!(vm.acquire(1), 7);
        assert!(vm.set(0, 8));
        vm.release(0, &mut out);
        assert!(out.is_empty(), "reader 1 still holds version 7");
        vm.release(1, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn pswf_basic() {
        drive(&PswfVm::new(3, 7));
    }

    #[test]
    fn pslf_basic() {
        drive(&PslfVm::new(3, 7));
    }

    #[test]
    fn release_without_set_returns_nothing_while_current() {
        let vm = PswfVm::new(2, 1);
        let mut out = Vec::new();
        assert_eq!(vm.acquire(0), 1);
        vm.release(0, &mut out);
        assert!(out.is_empty(), "current version must stay uncollected");
        assert_eq!(vm.uncollected_versions(), 1);
    }

    #[test]
    fn repeated_acquire_release_reuses_announcement() {
        let vm = PswfVm::new(1, 0);
        let mut out = Vec::new();
        for i in 1..=100u64 {
            assert_eq!(vm.acquire(0), i - 1);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        assert_eq!(out.len(), 100);
        assert_eq!(vm.current(), 100);
        assert_eq!(vm.uncollected_versions(), 1);
    }

    #[test]
    fn status_slots_recycle_under_long_run() {
        // 3P+1 = 4 slots; 1000 rounds must recycle them constantly.
        let vm = PswfVm::new(1, 0);
        let mut out = Vec::new();
        for i in 1..=1000u64 {
            vm.acquire(0);
            assert!(vm.set(0, i), "set must keep finding empty slots");
            vm.release(0, &mut out);
        }
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn failed_set_clears_slot_and_can_retry() {
        let vm = PswfVm::new(2, 0);
        let mut out = Vec::new();
        // Both acquire the same version; p0 wins, p1 aborts, then p1
        // retries with a fresh acquire and succeeds.
        vm.acquire(0);
        vm.acquire(1);
        assert!(vm.set(0, 1));
        assert!(!vm.set(1, 2));
        vm.release(1, &mut out);
        vm.release(0, &mut out);
        assert_eq!(out, vec![0]);
        // Retry: many rounds to prove the aborted set leaked no slot.
        for i in 0..50u64 {
            vm.acquire(1);
            assert!(vm.set(1, 10 + i));
            vm.release(1, &mut out);
        }
        assert_eq!(vm.current(), 59);
    }

    #[test]
    fn distinct_tokens_never_collected_twice_two_writers() {
        // Alternating writers; every dead token returned exactly once.
        let vm = PswfVm::new(2, 0);
        let mut collected = Vec::new();
        for round in 0..200u64 {
            let k = (round % 2) as usize;
            let token = round + 1;
            vm.acquire(k);
            assert!(vm.set(k, token));
            vm.release(k, &mut collected);
        }
        let mut sorted = collected.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), collected.len());
        assert_eq!(collected.len(), 200); // all but the current version
    }

    #[test]
    fn uncollected_matches_holders() {
        let vm = PswfVm::new(4, 0);
        let mut out = Vec::new();
        // Three readers pin three distinct versions.
        vm.acquire(1);
        vm.acquire(0);
        assert!(vm.set(0, 1));
        vm.release(0, &mut out);
        vm.acquire(2);
        vm.acquire(0);
        assert!(vm.set(0, 2));
        vm.release(0, &mut out);
        assert!(out.is_empty(), "versions 0 and 1 still held");
        assert_eq!(vm.uncollected_versions(), 3); // v0, v1, current v2
        vm.release(1, &mut out);
        assert_eq!(out, vec![0]);
        vm.release(2, &mut out);
        assert_eq!(out, vec![0, 1]);
        assert_eq!(vm.uncollected_versions(), 1);
    }
}
