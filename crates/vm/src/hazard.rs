//! Hazard-pointer based Version Maintenance (§6).
//!
//! Each process announces the version (data token) it is about to use and
//! re-validates that it is still current — the classic Michael hazard
//! pointer protocol with a single hazard slot per process. A successful
//! `set` retires the replaced version into the setter's local retired list;
//! `release` only scans the announcement array once the list reaches `2P`
//! entries, at which point at least `P` versions are unannounced and
//! returnable, giving O(1) amortized release cost.
//!
//! **Imprecise**: up to `2P` dead versions can sit in retired lists
//! indefinitely (the paper measures exactly `2P = 282` live versions for
//! HP in Table 2).
//!
//! ## Memory orderings
//!
//! The classic hazard-pointer fence idiom (`crate::ordering`, pattern
//! 1): `acquire` publishes the hazard slot with [`ANNOUNCE_PUBLISH`] and
//! crosses [`announce_validate_fence`] before validating; the `release`
//! scan crosses [`scan_fence`] before its [`SCAN_LOAD`] snapshot. All
//! other traffic is plain acquire/release ([`VERSION_CAS`] /
//! [`VERSION_LOAD`] / [`ANNOUNCE_CLEAR`]).

use crossbeam::utils::CachePadded;
use std::sync::atomic::AtomicU64;

use crate::counter::VersionCounter;
use crate::ordering::{
    announce_validate_fence, scan_fence, ANNOUNCE_CLEAR, ANNOUNCE_PUBLISH, CAS_FAILURE, SCAN_LOAD,
    SELF_LOAD, VERSION_CAS, VERSION_LOAD,
};
use crate::util::PerProc;
use crate::VersionMaintenance;

/// Announcement value meaning "no version announced".
const IDLE: u64 = u64::MAX;

/// Per-process mutable state (only touched by its owner, per the VM
/// problem's same-`k`-never-concurrent contract).
#[derive(Default)]
struct Proc {
    /// Versions this process retired and has not yet handed back.
    retired: Vec<u64>,
}

/// Hazard-pointer solution to the Version Maintenance problem.
pub struct HazardVm {
    processes: usize,
    /// Current version's data token.
    v: CachePadded<AtomicU64>,
    /// One hazard slot per process (`IDLE` when not reading).
    ann: Box<[CachePadded<AtomicU64>]>,
    proc: PerProc<Proc>,
    counter: VersionCounter,
}

impl HazardVm {
    /// Create an instance for `processes` processes; `initial` must not be
    /// `u64::MAX` (reserved as the idle marker).
    pub fn new(processes: usize, initial: u64) -> Self {
        assert!(processes >= 1);
        assert_ne!(initial, IDLE, "u64::MAX is reserved");
        HazardVm {
            processes,
            v: CachePadded::new(AtomicU64::new(initial)),
            ann: (0..processes)
                .map(|_| CachePadded::new(AtomicU64::new(IDLE)))
                .collect(),
            proc: PerProc::new(processes, |_| Proc::default()),
            counter: VersionCounter::with_initial(),
        }
    }
}

impl VersionMaintenance for HazardVm {
    fn processes(&self) -> usize {
        self.processes
    }

    fn acquire(&self, k: usize) -> u64 {
        loop {
            let d = self.v.load(VERSION_LOAD);
            self.ann[k].store(d, ANNOUNCE_PUBLISH);
            // ANNOUNCE_VALIDATE_FENCE: the announcement must be globally
            // visible before the validate load (StoreLoad; pairs with
            // the release scan's `scan_fence`).
            announce_validate_fence();
            // Re-validate: if still current, the announcement was visible
            // before the version could be retired, so it is protected.
            if d == self.v.load(VERSION_LOAD) {
                return d;
            }
        }
    }

    fn set(&self, k: usize, data: u64) -> bool {
        debug_assert_ne!(data, IDLE, "u64::MAX is reserved");
        // SELF_LOAD: our own slot, last written by our own acquire.
        let old = self.ann[k].load(SELF_LOAD);
        if self
            .v
            .compare_exchange(old, data, VERSION_CAS, CAS_FAILURE)
            .is_ok()
        {
            self.counter.created();
            // Safety: only process k touches proc[k] (VM contract).
            unsafe { self.proc.with(k, |p| p.retired.push(old)) };
            true
        } else {
            false
        }
    }

    fn release(&self, k: usize, out: &mut Vec<u64>) {
        // ANNOUNCE_CLEAR: a scan observing IDLE acquires every use we
        // made of the version; a scan that misses it just keeps the
        // version one more round (within the 2P imprecision budget).
        self.ann[k].store(IDLE, ANNOUNCE_CLEAR);
        let threshold = 2 * self.processes;
        // Safety: only process k touches proc[k].
        unsafe {
            self.proc.with(k, |p| {
                if p.retired.len() < threshold {
                    return;
                }
                // Scan phase: snapshot all hazard slots, hand back every
                // retired version that no one has announced. SCAN_FENCE:
                // pairs with acquire's announce/validate fence — any
                // announcement this snapshot misses belongs to a reader
                // whose validation will observe the retirement and retry.
                scan_fence();
                let announced: Vec<u64> = self.ann.iter().map(|a| a.load(SCAN_LOAD)).collect();
                let before = p.retired.len();
                p.retired.retain(|ver| {
                    if announced.contains(ver) {
                        true // still hazarded: keep
                    } else {
                        out.push(*ver);
                        false
                    }
                });
                self.counter.collected((before - p.retired.len()) as u64);
            });
        }
    }

    fn current(&self) -> u64 {
        self.v.load(VERSION_LOAD)
    }

    fn uncollected_versions(&self) -> u64 {
        self.counter.uncollected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retired_versions_flush_at_threshold() {
        let p = 2; // threshold = 4
        let vm = HazardVm::new(p, 0);
        let mut out = Vec::new();
        for i in 1..=10u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        // Flushes happen in bursts of >= threshold; everything dead and
        // unannounced must eventually be returned.
        assert!(out.len() >= 10 - 2 * p, "out: {out:?}");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), out.len(), "no double-collect");
        assert!(!out.contains(&10), "current version never collected");
    }

    #[test]
    fn announced_version_is_protected() {
        let vm = HazardVm::new(2, 0);
        let mut out = Vec::new();
        assert_eq!(vm.acquire(1), 0); // reader pins version 0
        for i in 1..=20u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        assert!(!out.contains(&0), "hazarded version must survive scans");
        vm.release(1, &mut out);
        // After the reader lets go, a later writer scan may reclaim it.
        for i in 21..=40u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
        }
        assert!(out.contains(&0), "unpinned version eventually reclaimed");
    }

    #[test]
    fn uncollected_bounded_by_2p_plus_current_single_writer() {
        let p = 4;
        let vm = HazardVm::new(p, 0);
        let mut out = Vec::new();
        for i in 1..=1000u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
            assert!(
                vm.uncollected_versions() <= (2 * p as u64) + 1,
                "HP bound violated at round {i}"
            );
        }
    }
}
