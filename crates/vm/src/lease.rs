//! A lock-free lease registry for VM process ids.
//!
//! The VM problem's contract says each of the `P` process ids "may be used
//! by at most one thread at a time". [`PidPool`] turns that doc-comment
//! contract into a runtime-enforced lease: a free pid is popped from a
//! tagged Treiber freelist (the same ABA-guarded idiom as the arena's
//! per-shard freelists in `mvcc-plm`), held exclusively until released,
//! and pushed back for reuse. A specific pid can also be claimed with
//! [`PidPool::lease_exact`], which fails if the pid is already held.
//!
//! The pool is the substrate of `mvcc-core`'s `Session` handles; it lives
//! here because the contract it enforces is the VM problem's, not the
//! transaction layer's, and other wrappers (`mvcc-fds::VersionedCell`)
//! reuse it.
//!
//! # Design
//!
//! Every pid carries a small state machine next to the freelist:
//!
//! * `FREE` — not leased; the pid has an entry on the freelist,
//! * `LEASED` — leased; no freelist entry,
//! * `RESERVED` — leased via [`PidPool::lease_exact`] *while its freelist
//!   entry still existed*; the entry is now stale (a tombstone).
//!
//! [`PidPool::lease`] pops entries and CASes `FREE -> LEASED`; when it
//! pops a tombstone it converts the holder to plain `LEASED` (consuming
//! the stale entry) and pops again. [`PidPool::release`] either relists
//! the pid (`LEASED` path: publish `FREE`, then push) or simply flips a
//! still-listed tombstone back to `FREE`. Both sides loop over CASes, so
//! the pair of racing transitions (`RESERVED -> LEASED` by a popper vs
//! `RESERVED -> FREE` by the releaser) always converges: every pid is
//! either on the list with a `FREE`/`RESERVED` state or off the list and
//! `LEASED`.
//!
//! # Memory orderings
//!
//! The pool runs entirely on tunable roles from [`crate::ordering`]
//! (acquire/release by default, `SeqCst` under `strict-sc`): the lease
//! state machine on [`LEASE_CAS`]/[`LEASE_STATE_LOAD`]/
//! [`LEASE_RELEASE_STORE`] — the claiming CAS's acquire is the edge
//! that hands one holder's writes to the next when a pid migrates
//! across threads (what `PerProc`'s safety contract leans on) — and the
//! freelist on [`FREELIST_HEAD_LOAD`]/[`FREELIST_CAS`]/
//! [`FREELIST_LINK`], the classic tagged-Treiber pairing. No StoreLoad
//! window exists here: a popper that misses a just-pushed pid returns
//! `Exhausted`, which the waiting layers above (`mvcc-core`'s session
//! pool) already treat as "park and retry after the mutex-mediated
//! release hook" — the retry synchronizes through that mutex. The pure
//! diagnostic counters ([`PidPool::leased`] / [`PidPool::is_leased`])
//! read with `Relaxed` (stats only, never decisions).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::RwLock;

use crate::ordering::{
    CAS_FAILURE, FREELIST_CAS, FREELIST_HEAD_LOAD, FREELIST_LINK, HOOK_FLAG_READ, HOOK_FLAG_SET,
    LEASE_CAS, LEASE_RELEASE_STORE, LEASE_STATE_LOAD,
};

const NIL: u32 = u32::MAX;
const TAG_SHIFT: u32 = 32;
const LOW_MASK: u64 = (1u64 << 32) - 1;

const FREE: u32 = 0;
const LEASED: u32 = 1;
const RESERVED: u32 = 2;

/// Error returned by the lease operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseError {
    /// Every pid is currently leased ([`PidPool::lease`]).
    Exhausted {
        /// Total number of pids in the pool.
        processes: usize,
    },
    /// The requested pid is already held ([`PidPool::lease_exact`]).
    PidLeased {
        /// The pid that was requested.
        pid: usize,
    },
    /// The requested pid does not exist ([`PidPool::lease_exact`] with
    /// `pid >= processes`).
    OutOfRange {
        /// The pid that was requested.
        pid: usize,
        /// Total number of pids in the pool.
        processes: usize,
    },
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::Exhausted { processes } => {
                write!(f, "all {processes} process ids are leased")
            }
            LeaseError::PidLeased { pid } => {
                write!(f, "process id {pid} is already leased")
            }
            LeaseError::OutOfRange { pid, processes } => {
                write!(f, "process id {pid} is out of range (pool has {processes})")
            }
        }
    }
}

impl std::error::Error for LeaseError {}

struct PidSlot {
    state: AtomicU32,
    /// Freelist link: next free pid, or [`NIL`].
    next: AtomicU32,
}

/// Callback invoked (with the freed pid) after every [`PidPool::release`].
pub type ReleaseHook = Box<dyn Fn(usize) + Send + Sync>;

/// A lock-free pool of `0..processes` leasable process ids.
pub struct PidPool {
    /// Tagged Treiber head: `(tag << 32) | pid`, [`NIL`] when empty. The
    /// tag increments on every successful CAS, guarding against ABA.
    head: AtomicU64,
    slots: Box<[PidSlot]>,
    /// `true` once any hook is registered: the release path reads this
    /// single flag before touching the hook lock, so a hook-less pool's
    /// release (and always its lease) stays lock- and allocation-free.
    has_hooks: AtomicBool,
    /// Wake-on-release callbacks (session pools parked on exhaustion).
    /// Write-locked only by [`PidPool::add_release_hook`]; the release
    /// path takes the read side, which never blocks hook readers.
    hooks: RwLock<Vec<ReleaseHook>>,
}

impl PidPool {
    /// A pool with every pid in `0..processes` free. Pids are handed out
    /// low-first initially (LIFO thereafter).
    pub fn new(processes: usize) -> Self {
        assert!(processes <= NIL as usize, "pid space overflow");
        let slots: Box<[PidSlot]> = (0..processes)
            .map(|i| PidSlot {
                state: AtomicU32::new(FREE),
                // Initial freelist is 0 -> 1 -> ... -> P-1.
                next: AtomicU32::new(if i + 1 < processes { i as u32 + 1 } else { NIL }),
            })
            .collect();
        PidPool {
            head: AtomicU64::new(if processes == 0 { NIL as u64 } else { 0 }),
            slots,
            has_hooks: AtomicBool::new(false),
            hooks: RwLock::new(Vec::new()),
        }
    }

    /// Register a callback to run after every [`PidPool::release`], with
    /// the freed pid. This is the wake-up wire for waiting-mode session
    /// pools: a parked `acquire` learns a pid freed without polling.
    ///
    /// Hooks must not call back into the pool's lease/release API (they
    /// run on the releasing thread, inside its release call) and should
    /// be cheap — typically a condvar notify. Registration is append-only
    /// and may happen at any time; releases that race with it may or may
    /// not see the new hook.
    pub fn add_release_hook(&self, hook: impl Fn(usize) + Send + Sync + 'static) {
        self.hooks
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::new(hook));
        // HOOK_FLAG_SET: publishes the append above to HOOK_FLAG_READ.
        self.has_hooks.store(true, HOOK_FLAG_SET);
    }

    /// Run the registered release hooks for `pid` (no-op without hooks:
    /// one relaxed-ish atomic load, no lock).
    fn notify_release(&self, pid: usize) {
        if self.has_hooks.load(HOOK_FLAG_READ) {
            for hook in self.hooks.read().unwrap_or_else(|e| e.into_inner()).iter() {
                hook(pid);
            }
        }
    }

    /// Number of pids in the pool.
    pub fn processes(&self) -> usize {
        self.slots.len()
    }

    /// Number of pids currently leased (racy snapshot, diagnostics only).
    ///
    /// Relaxed loads: this is a pure statistics sweep — the snapshot is
    /// racy whatever the ordering, no lease/release decision ever reads
    /// it, and callers needing a settled count (tests, shutdown checks)
    /// already synchronize via joins. First slice of the ROADMAP
    /// relaxed-ordering audit; the lease/release state machine itself
    /// stays SeqCst.
    pub fn leased(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state.load(Ordering::Relaxed) != FREE)
            .count()
    }

    /// Is `pid` currently leased? (Racy snapshot, diagnostics only —
    /// Relaxed for the same reason as [`PidPool::leased`].)
    pub fn is_leased(&self, pid: usize) -> bool {
        self.slots[pid].state.load(Ordering::Relaxed) != FREE
    }

    fn pop(&self) -> Option<u32> {
        loop {
            // FREELIST_HEAD_LOAD: synchronizes with the pushing CAS (and
            // its release sequence), making the link below visible.
            let head = self.head.load(FREELIST_HEAD_LOAD);
            let pid = (head & LOW_MASK) as u32;
            if pid == NIL {
                return None;
            }
            // FREELIST_LINK: published by the push CAS we synchronized
            // with; a stale read is discarded by the tag CAS failing.
            let next = self.slots[pid as usize].next.load(FREELIST_LINK);
            let tag = (head >> TAG_SHIFT).wrapping_add(1);
            let new = (tag << TAG_SHIFT) | next as u64;
            if self
                .head
                .compare_exchange(head, new, FREELIST_CAS, CAS_FAILURE)
                .is_ok()
            {
                return Some(pid);
            }
        }
    }

    fn push(&self, pid: u32) {
        loop {
            let head = self.head.load(FREELIST_HEAD_LOAD);
            // FREELIST_LINK: we own this node until the CAS below
            // publishes it (release).
            self.slots[pid as usize]
                .next
                .store((head & LOW_MASK) as u32, FREELIST_LINK);
            let tag = (head >> TAG_SHIFT).wrapping_add(1);
            let new = (tag << TAG_SHIFT) | pid as u64;
            if self
                .head
                .compare_exchange(head, new, FREELIST_CAS, CAS_FAILURE)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Lease any free pid. `Err(Exhausted)` when every pid is held.
    pub fn lease(&self) -> Result<usize, LeaseError> {
        'next_entry: loop {
            let Some(pid) = self.pop() else {
                return Err(LeaseError::Exhausted {
                    processes: self.processes(),
                });
            };
            let slot = &self.slots[pid as usize];
            loop {
                // LEASE_CAS: the acquire on success is the ownership
                // hand-off edge from the previous holder's release.
                match slot
                    .state
                    .compare_exchange(FREE, LEASED, LEASE_CAS, CAS_FAILURE)
                {
                    Ok(_) => return Ok(pid as usize),
                    Err(RESERVED) => {
                        // Stale entry of a pid claimed by `lease_exact`:
                        // consume the tombstone (the holder is now plain
                        // LEASED and will relist on release) and move on.
                        if slot
                            .state
                            .compare_exchange(RESERVED, LEASED, LEASE_CAS, CAS_FAILURE)
                            .is_ok()
                        {
                            continue 'next_entry;
                        }
                        // The reserver released concurrently: state is
                        // FREE again and we hold its (sole) entry — retry
                        // the FREE -> LEASED claim.
                    }
                    Err(_) => unreachable!("popped a pid whose entry was already consumed"),
                }
            }
        }
    }

    /// Lease the specific `pid`. `Err(PidLeased)` if already held,
    /// `Err(OutOfRange)` if the pool has no such pid.
    pub fn lease_exact(&self, pid: usize) -> Result<(), LeaseError> {
        if pid >= self.processes() {
            return Err(LeaseError::OutOfRange {
                pid,
                processes: self.processes(),
            });
        }
        // The entry (if any) stays on the list as a tombstone; `lease`
        // skips it and `release` accounts for it.
        // LEASE_CAS: same ownership hand-off edge as `lease`.
        self.slots[pid]
            .state
            .compare_exchange(FREE, RESERVED, LEASE_CAS, CAS_FAILURE)
            .map(|_| ())
            .map_err(|_| LeaseError::PidLeased { pid })
    }

    /// Return a leased pid to the pool. The caller must be the holder.
    /// Once the pid is back, any registered release hooks run (see
    /// [`PidPool::add_release_hook`]).
    pub fn release(&self, pid: usize) {
        let slot = &self.slots[pid];
        loop {
            match slot.state.load(LEASE_STATE_LOAD) {
                LEASED => {
                    // Off-list: publish FREE first, then relist. A
                    // `lease_exact` that claims the pid inside this window
                    // turns the entry we are about to push into a
                    // tombstone, which `lease` handles.
                    // LEASE_RELEASE_STORE: hands our writes to the next
                    // claimant's LEASE_CAS acquire.
                    slot.state.store(FREE, LEASE_RELEASE_STORE);
                    self.push(pid as u32);
                    break;
                }
                RESERVED => {
                    // Our entry should still be on the list; just flip the
                    // state. A concurrent `lease` may consume the entry
                    // first (RESERVED -> LEASED), in which case we loop
                    // into the LEASED arm and relist.
                    // LEASE_CAS: release side of the hand-off edge.
                    if slot
                        .state
                        .compare_exchange(RESERVED, FREE, LEASE_CAS, CAS_FAILURE)
                        .is_ok()
                    {
                        break;
                    }
                }
                _ => panic!("release of pid {pid} that is not leased"),
            }
        }
        self.notify_release(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lease_all_then_exhausted() {
        let pool = PidPool::new(4);
        let mut got: Vec<usize> = (0..4).map(|_| pool.lease().unwrap()).collect();
        assert_eq!(
            pool.lease(),
            Err(LeaseError::Exhausted { processes: 4 }),
            "5th lease must fail"
        );
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3], "each pid leased exactly once");
        for pid in got {
            pool.release(pid);
        }
        assert_eq!(pool.leased(), 0);
    }

    #[test]
    fn release_makes_pid_reusable() {
        let pool = PidPool::new(1);
        let pid = pool.lease().unwrap();
        pool.release(pid);
        assert_eq!(pool.lease().unwrap(), pid, "sole pid comes back");
        pool.release(pid);
    }

    #[test]
    fn lease_exact_conflicts() {
        let pool = PidPool::new(3);
        pool.lease_exact(1).unwrap();
        assert_eq!(pool.lease_exact(1), Err(LeaseError::PidLeased { pid: 1 }));
        // The other two pids are still leasable around the tombstone.
        let a = pool.lease().unwrap();
        let b = pool.lease().unwrap();
        assert_eq!(
            HashSet::from([a, b]),
            HashSet::from([0, 2]),
            "tombstoned pid must be skipped"
        );
        assert_eq!(pool.lease(), Err(LeaseError::Exhausted { processes: 3 }));
        pool.release(1);
        assert_eq!(pool.lease(), Ok(1));
        pool.release(1);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.leased(), 0);
    }

    #[test]
    fn lease_exact_out_of_range_is_a_typed_error() {
        let pool = PidPool::new(2);
        assert_eq!(
            pool.lease_exact(2),
            Err(LeaseError::OutOfRange {
                pid: 2,
                processes: 2
            })
        );
        assert_eq!(pool.leased(), 0, "failed lease must not consume a pid");
    }

    #[test]
    fn release_hooks_fire_with_the_freed_pid() {
        use std::sync::Mutex;
        let pool = PidPool::new(3);
        let freed: std::sync::Arc<Mutex<Vec<usize>>> = Default::default();
        // Releases before any registration run no hook.
        let early = pool.lease().unwrap();
        pool.release(early);
        let log = std::sync::Arc::clone(&freed);
        pool.add_release_hook(move |pid| log.lock().unwrap().push(pid));
        let a = pool.lease().unwrap();
        let b = pool.lease().unwrap();
        pool.release(b);
        pool.release(a);
        // Both registered hooks observe every release, in call order.
        let second = std::sync::Arc::clone(&freed);
        pool.add_release_hook(move |pid| second.lock().unwrap().push(pid + 100));
        pool.lease_exact(2).unwrap();
        pool.release(2);
        assert_eq!(*freed.lock().unwrap(), vec![b, a, 2, 102]);
    }

    #[test]
    fn release_hook_fires_on_the_tombstone_path() {
        use std::sync::atomic::AtomicUsize;
        let pool = PidPool::new(2);
        let fired = std::sync::Arc::new(AtomicUsize::new(0));
        let f = std::sync::Arc::clone(&fired);
        pool.add_release_hook(move |_| {
            f.fetch_add(1, Ordering::SeqCst);
        });
        // `lease_exact` leaves the freelist entry as a tombstone; its
        // release takes the RESERVED -> FREE arm, which must notify too.
        pool.lease_exact(0).unwrap();
        pool.release(0);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_churn_never_double_leases() {
        use std::sync::atomic::{AtomicBool, AtomicU32};
        const PIDS: usize = 4;
        const THREADS: usize = 8;
        let pool = PidPool::new(PIDS);
        let held: [AtomicBool; PIDS] = std::array::from_fn(|_| AtomicBool::new(false));
        let exact_hits = AtomicU32::new(0);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let pool = &pool;
                let held = &held;
                let exact_hits = &exact_hits;
                s.spawn(move || {
                    for i in 0..3_000u32 {
                        // Mix anonymous leases with targeted ones to drive
                        // the tombstone paths.
                        let pid = if (i as usize + t).is_multiple_of(3) {
                            let want = (i as usize + t) % PIDS;
                            match pool.lease_exact(want) {
                                Ok(()) => {
                                    exact_hits.fetch_add(1, Ordering::Relaxed);
                                    want
                                }
                                Err(_) => continue,
                            }
                        } else {
                            match pool.lease() {
                                Ok(p) => p,
                                Err(_) => continue,
                            }
                        };
                        assert!(
                            !held[pid].swap(true, Ordering::SeqCst),
                            "pid {pid} double-leased"
                        );
                        std::hint::spin_loop();
                        held[pid].store(false, Ordering::SeqCst);
                        pool.release(pid);
                    }
                });
            }
        });
        assert_eq!(pool.leased(), 0, "all pids returned after churn");
        assert!(
            exact_hits.load(Ordering::Relaxed) > 0,
            "exact path exercised"
        );
        // The full pool is still leasable.
        let all: Vec<usize> = (0..PIDS).map(|_| pool.lease().unwrap()).collect();
        assert_eq!(all.iter().collect::<HashSet<_>>().len(), PIDS);
    }
}
