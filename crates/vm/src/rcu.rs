//! Read-copy-update based Version Maintenance (§6, Citrus-style grace
//! periods).
//!
//! `acquire` is `read_lock` (announce the current grace-period generation)
//! plus a read of the current version; `set` CASes the version; the
//! release that follows a successful `set` calls `synchronize`, **blocking**
//! until every read-side critical section that predates it has finished,
//! and then returns the single replaced version — so collection is precise
//! and at most one dead version ever exists, but the writer's progress is
//! hostage to the slowest reader (the paper's motivation for PSWF, and the
//! reason RCU's update throughput collapses in Table 2).
//!
//! ## Memory orderings
//!
//! `read_lock` is `crate::ordering`'s pattern 1: publish the generation
//! with [`ANNOUNCE_PUBLISH`], cross [`announce_validate_fence`], read
//! the version. `synchronize` pins its generation bump at `SeqCst`
//! ([`GRACE_PERIOD_RMW`]) and crosses [`scan_fence`] before scanning
//! reader generations: a reader the scan misses is one whose version
//! read is ordered after the writer's install, so it cannot hold the
//! version being reclaimed; a reader the scan waits for hands its
//! critical section over through [`ANNOUNCE_CLEAR`]/[`SCAN_LOAD`].

use crossbeam::utils::CachePadded;
use std::sync::atomic::AtomicU64;

use crate::counter::VersionCounter;
use crate::ordering::{
    announce_validate_fence, scan_fence, ANNOUNCE_CLEAR, ANNOUNCE_PUBLISH, CAS_FAILURE, CLOCK_LOAD,
    GRACE_PERIOD_RMW, SCAN_LOAD, VERSION_CAS, VERSION_LOAD,
};
use crate::util::PerProc;
use crate::VersionMaintenance;

/// Reader-generation value meaning "not inside a read-side section".
const QUIESCENT: u64 = 0;

struct Proc {
    /// Data token returned by this process's last `acquire`.
    acquired: u64,
    /// Version replaced by this process's successful `set`, awaiting a
    /// grace period.
    pending_old: Option<u64>,
}

/// RCU-based solution to the Version Maintenance problem.
pub struct RcuVm {
    processes: usize,
    /// Current version's data token.
    v: CachePadded<AtomicU64>,
    /// Grace-period generation counter (starts at 1; 0 means quiescent).
    gen: CachePadded<AtomicU64>,
    /// Per-process announced generation.
    reader_gen: Box<[CachePadded<AtomicU64>]>,
    proc: PerProc<Proc>,
    counter: VersionCounter,
}

impl RcuVm {
    /// Create an instance for `processes` processes with `initial` as the
    /// first version's data token.
    pub fn new(processes: usize, initial: u64) -> Self {
        assert!(processes >= 1);
        RcuVm {
            processes,
            v: CachePadded::new(AtomicU64::new(initial)),
            gen: CachePadded::new(AtomicU64::new(1)),
            reader_gen: (0..processes)
                .map(|_| CachePadded::new(AtomicU64::new(QUIESCENT)))
                .collect(),
            proc: PerProc::new(processes, |_| Proc {
                acquired: 0,
                pending_old: None,
            }),
            counter: VersionCounter::with_initial(),
        }
    }

    /// Block until all read-side critical sections that existed at the
    /// start of this call have completed.
    fn synchronize(&self) {
        // GRACE_PERIOD_RMW: pinned SeqCst — orders the preceding version
        // CAS against the scan below (StoreLoad), on top of totally
        // ordering the generation chain readers announce against.
        let target = self.gen.fetch_add(1, GRACE_PERIOD_RMW) + 1;
        // SCAN_FENCE: pairs with read_lock's announce/validate fence.
        scan_fence();
        for slot in self.reader_gen.iter() {
            let mut spins = 0u32;
            loop {
                let g = slot.load(SCAN_LOAD);
                // A reader is past us if it is quiescent or entered after
                // the generation bump.
                if g == QUIESCENT || g >= target {
                    break;
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl VersionMaintenance for RcuVm {
    fn processes(&self) -> usize {
        self.processes
    }

    fn acquire(&self, k: usize) -> u64 {
        // read_lock: publish our generation, then read the version. The
        // announce/validate fence orders the publish against
        // synchronize's scan, so either the writer waits for us or we
        // observe the new version.
        let g = self.gen.load(CLOCK_LOAD);
        self.reader_gen[k].store(g, ANNOUNCE_PUBLISH);
        announce_validate_fence();
        let d = self.v.load(VERSION_LOAD);
        // Safety: only process k touches proc[k] (VM contract).
        unsafe { self.proc.with(k, |p| p.acquired = d) };
        d
    }

    fn set(&self, k: usize, data: u64) -> bool {
        let old = unsafe { self.proc.with(k, |p| p.acquired) };
        if self
            .v
            .compare_exchange(old, data, VERSION_CAS, CAS_FAILURE)
            .is_ok()
        {
            self.counter.created();
            unsafe { self.proc.with(k, |p| p.pending_old = Some(old)) };
            true
        } else {
            false
        }
    }

    fn release(&self, k: usize, out: &mut Vec<u64>) {
        // read_unlock first so our own read-side section never blocks our
        // own synchronize. ANNOUNCE_CLEAR: the waiting writer's SCAN_LOAD
        // acquires our whole read-side critical section.
        self.reader_gen[k].store(QUIESCENT, ANNOUNCE_CLEAR);
        let pending = unsafe { self.proc.with(k, |p| p.pending_old.take()) };
        if let Some(old) = pending {
            self.synchronize();
            self.counter.collected(1);
            out.push(old);
        }
    }

    fn current(&self) -> u64 {
        self.v.load(VERSION_LOAD)
    }

    fn uncollected_versions(&self) -> u64 {
        self.counter.uncollected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
    use std::sync::Arc;

    #[test]
    fn writer_release_returns_old_version_immediately_when_no_readers() {
        let vm = RcuVm::new(2, 0);
        let mut out = Vec::new();
        for i in 1..=10u64 {
            vm.acquire(0);
            assert!(vm.set(0, i));
            vm.release(0, &mut out);
            assert_eq!(vm.uncollected_versions(), 1, "RCU keeps exactly 1");
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn writer_blocks_until_reader_exits() {
        let vm = Arc::new(RcuVm::new(2, 0));
        let writer_done = Arc::new(AtomicBool::new(false));

        // Reader (process 1) pins version 0.
        vm.acquire(1);

        let vm2 = vm.clone();
        let done2 = writer_done.clone();
        let writer = std::thread::spawn(move || {
            let mut out = Vec::new();
            vm2.acquire(0);
            assert!(vm2.set(0, 1));
            vm2.release(0, &mut out); // must block on the reader
            done2.store(true, SeqCst);
            out
        });

        // Give the writer ample time to reach synchronize.
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert!(
            !writer_done.load(SeqCst),
            "RCU writer must block while a reader is in its critical section"
        );

        let mut out = Vec::new();
        vm.release(1, &mut out); // reader exits; grace period elapses
        assert!(out.is_empty(), "reader never returns versions under RCU");
        let collected = writer.join().unwrap();
        assert_eq!(collected, vec![0]);
        assert!(writer_done.load(SeqCst));
    }

    #[test]
    fn reader_entering_after_synchronize_does_not_block_it() {
        let vm = Arc::new(RcuVm::new(3, 0));
        // Process 1 reads, releases; then writer syncs: no blocking.
        vm.acquire(1);
        let mut out = Vec::new();
        vm.release(1, &mut out);
        vm.acquire(0);
        assert!(vm.set(0, 1));
        vm.release(0, &mut out);
        assert_eq!(out, vec![0]);
    }
}
