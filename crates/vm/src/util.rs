//! Per-process mutable state, exploiting the VM problem's contract that
//! operations with the same process id never run concurrently.

use crossbeam::utils::CachePadded;
use std::cell::UnsafeCell;

/// A fixed array of per-process cells. Slot `k` may only be accessed by
/// process `k`'s operations, which the Version Maintenance problem
/// guarantees are never concurrent — so `&mut` access through a shared
/// reference is sound for the caller that upholds that contract.
///
/// No atomics live here, so the relaxed-ordering audit touches this
/// module only through its contract: when ownership of a process id
/// migrates across OS threads (a `mvcc-core` session ending on one
/// thread and the pid being re-leased on another), the happens-before
/// edge that makes the previous owner's plain writes visible to the next
/// is [`PidPool`]'s lease hand-off — the `LEASE_RELEASE_STORE` release /
/// `LEASE_CAS` acquire pairing of [`crate::ordering`]. Callers that
/// move a raw pid between threads by other means must supply an
/// equivalent edge themselves.
///
/// [`PidPool`]: crate::PidPool
pub(crate) struct PerProc<T> {
    slots: Box<[CachePadded<UnsafeCell<T>>]>,
}

// Safety: each slot is only accessed by its owning process (enforced by the
// VM usage contract); the container itself is shared read-only.
unsafe impl<T: Send> Sync for PerProc<T> {}
unsafe impl<T: Send> Send for PerProc<T> {}

impl<T> PerProc<T> {
    pub(crate) fn new(n: usize, init: impl Fn(usize) -> T) -> Self {
        PerProc {
            slots: (0..n)
                .map(|k| CachePadded::new(UnsafeCell::new(init(k))))
                .collect(),
        }
    }

    /// Run `f` with exclusive access to process `k`'s slot.
    ///
    /// # Safety
    /// The caller must guarantee no other thread is concurrently inside
    /// `with` for the same `k` (the VM problem's same-`k` exclusion).
    #[inline]
    pub(crate) unsafe fn with<R>(&self, k: usize, f: impl FnOnce(&mut T) -> R) -> R {
        f(unsafe { &mut *self.slots[k].get() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_slots() {
        let pp = PerProc::new(3, |k| k * 10);
        unsafe {
            pp.with(0, |v| *v += 1);
            pp.with(2, |v| *v += 2);
            assert_eq!(pp.with(0, |v| *v), 1);
            assert_eq!(pp.with(1, |v| *v), 10);
            assert_eq!(pp.with(2, |v| *v), 22);
        }
    }
}
