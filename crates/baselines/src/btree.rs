//! A concurrent B+tree with top-down lock coupling ("crabbing") and
//! preemptive splits — the paper's B+tree comparator [61].
//!
//! * Readers descend with read-lock coupling: at most two locks held, the
//!   parent's released as soon as the child is acquired.
//! * Writers descend with write-lock coupling and split any full child
//!   *before* entering it, so a split never needs to propagate back up and
//!   at most two nodes are write-locked at any time.
//! * Deletion removes the key from its leaf without structural rebalancing
//!   (nodes may become underfull but never invalid) — the standard
//!   deferred-compaction simplification; the YCSB mixes of Figure 7 never
//!   delete.

use parking_lot::{ArcRwLockReadGuard, ArcRwLockWriteGuard, RawRwLock, RwLock};
use std::sync::Arc;

use crate::ConcurrentMap;

/// Maximum keys per node; nodes split when they reach this.
const MAX_KEYS: usize = 31;

type NodeRef = Arc<RwLock<Node>>;
type WriteGuard = ArcRwLockWriteGuard<RawRwLock, Node>;
type ReadGuard = ArcRwLockReadGuard<RawRwLock, Node>;

enum Node {
    Internal {
        /// `children[i]` holds keys `< keys[i]`; `children.len() == keys.len() + 1`.
        keys: Vec<u64>,
        children: Vec<NodeRef>,
    },
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
    },
}

impl Node {
    fn empty_leaf() -> NodeRef {
        Arc::new(RwLock::new(Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
        }))
    }

    fn is_full(&self) -> bool {
        match self {
            Node::Internal { keys, .. } => keys.len() >= MAX_KEYS,
            Node::Leaf { keys, .. } => keys.len() >= MAX_KEYS,
        }
    }

    /// Index of the child to follow for `key`.
    fn child_index(keys: &[u64], key: u64) -> usize {
        keys.partition_point(|k| *k <= key)
    }
}

/// Concurrent B+tree over `u64 -> u64`.
pub struct BPlusTree {
    /// Lock order: the root holder first, then nodes top-down.
    root: RwLock<NodeRef>,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// Empty tree.
    pub fn new() -> Self {
        BPlusTree {
            root: RwLock::new(Node::empty_leaf()),
        }
    }

    /// Split the full child at `idx` of the (write-locked) internal parent.
    /// `child` is the child's write guard; returns the separator key and
    /// the new right sibling.
    fn split_child(parent: &mut Node, idx: usize, child: &mut Node) -> (u64, NodeRef) {
        let (sep, right) = match child {
            Node::Leaf { keys, vals } => {
                let mid = keys.len() / 2;
                let rkeys: Vec<u64> = keys.split_off(mid);
                let rvals: Vec<u64> = vals.split_off(mid);
                let sep = rkeys[0];
                (
                    sep,
                    Arc::new(RwLock::new(Node::Leaf {
                        keys: rkeys,
                        vals: rvals,
                    })),
                )
            }
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let mut rkeys: Vec<u64> = keys.split_off(mid);
                let sep = rkeys.remove(0);
                let rchildren: Vec<NodeRef> = children.split_off(mid + 1);
                (
                    sep,
                    Arc::new(RwLock::new(Node::Internal {
                        keys: rkeys,
                        children: rchildren,
                    })),
                )
            }
        };
        match parent {
            Node::Internal { keys, children } => {
                keys.insert(idx, sep);
                children.insert(idx + 1, right.clone());
            }
            Node::Leaf { .. } => unreachable!("leaf cannot be a parent"),
        }
        (sep, right)
    }

    /// Write-lock the root, growing the tree if the root is full, and
    /// return (node, guard) with the root holder already released.
    fn lock_root_for_write(&self, key: u64) -> (NodeRef, WriteGuard) {
        let mut holder = self.root.write();
        let mut cur = holder.clone();
        let mut guard = cur.write_arc();
        if guard.is_full() {
            // Grow: fresh internal root over the old one, split the old.
            let mut new_root = Node::Internal {
                keys: Vec::new(),
                children: vec![cur.clone()],
            };
            let (sep, right) = Self::split_child(&mut new_root, 0, &mut guard);
            let new_ref = Arc::new(RwLock::new(new_root));
            *holder = new_ref.clone();
            if key >= sep {
                drop(guard);
                cur = right;
                guard = cur.write_arc();
            }
            // else: keep descending into the old (now half) root.
            let _ = new_ref;
        }
        drop(holder);
        (cur, guard)
    }
}

impl ConcurrentMap for BPlusTree {
    fn get(&self, key: u64) -> Option<u64> {
        let holder = self.root.read();
        let cur = holder.clone();
        let mut guard: ReadGuard = cur.read_arc();
        drop(holder);
        loop {
            match &*guard {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(&key).ok().map(|i| vals[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = Node::child_index(keys, key);
                    let child = children[idx].clone();
                    let next = child.read_arc();
                    guard = next; // parent guard drops here (coupling)
                }
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        let (_cur, mut guard) = self.lock_root_for_write(key);
        loop {
            // Preemptive split keeps every descended-into child non-full.
            let child_ref = match &mut *guard {
                Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                    Ok(i) => {
                        vals[i] = value;
                        return false;
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        vals.insert(i, value);
                        return true;
                    }
                },
                Node::Internal { keys, children } => {
                    let idx = Node::child_index(keys, key);
                    children[idx].clone()
                }
            };
            let mut child_guard = child_ref.write_arc();
            if child_guard.is_full() {
                let idx = match &*guard {
                    Node::Internal { keys, .. } => Node::child_index(keys, key),
                    Node::Leaf { .. } => unreachable!(),
                };
                let (sep, right) = Self::split_child(&mut guard, idx, &mut child_guard);
                if key >= sep {
                    drop(child_guard);
                    child_guard = right.write_arc();
                }
            }
            guard = child_guard; // release the parent, descend
        }
    }

    fn remove(&self, key: u64) -> bool {
        let holder = self.root.read();
        let cur = holder.clone();
        let mut guard: WriteGuard = cur.write_arc();
        drop(holder);
        loop {
            let child_ref = match &mut *guard {
                Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                    Ok(i) => {
                        keys.remove(i);
                        vals.remove(i);
                        return true;
                    }
                    Err(_) => return false,
                },
                Node::Internal { keys, children } => {
                    let idx = Node::child_index(keys, key);
                    children[idx].clone()
                }
            };
            let next = child_ref.write_arc();
            guard = next;
        }
    }

    fn name(&self) -> &'static str {
        "B+tree (lock coupling)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn model_check() {
        conformance::sequential_model_check(&BPlusTree::new(), 3, 5000);
    }

    #[test]
    fn disjoint_writers() {
        conformance::concurrent_disjoint_writers(&BPlusTree::new());
    }

    #[test]
    fn contended_upserts() {
        conformance::concurrent_contended_upserts(&BPlusTree::new());
    }

    #[test]
    fn sequential_bulk_insert_and_lookup() {
        let t = BPlusTree::new();
        let n = 20_000u64;
        for k in 0..n {
            assert!(t.insert(k, k * 2));
        }
        for k in 0..n {
            assert_eq!(t.get(k), Some(k * 2), "key {k}");
        }
        assert_eq!(t.get(n), None);
    }

    #[test]
    fn descending_inserts_split_left_edge() {
        let t = BPlusTree::new();
        for k in (0..5_000u64).rev() {
            assert!(t.insert(k, k));
        }
        for k in 0..5_000u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn remove_then_reuse() {
        let t = BPlusTree::new();
        for k in 0..1000u64 {
            t.insert(k, k);
        }
        for k in (0..1000u64).step_by(3) {
            assert!(t.remove(k));
            assert!(!t.remove(k));
        }
        for k in 0..1000u64 {
            let expect = if k % 3 == 0 { None } else { Some(k) };
            assert_eq!(t.get(k), expect);
        }
        // Underfull leaves still accept inserts.
        for k in (0..1000u64).step_by(3) {
            assert!(t.insert(k, k + 1));
        }
        assert_eq!(t.get(999), Some(1000));
    }
}
