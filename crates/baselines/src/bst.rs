//! A lock-free *external* binary search tree — standing in for the
//! paper's non-blocking chromatic tree [19] (see DESIGN.md's substitution
//! note).
//!
//! Internal nodes are pure routers (`< key` goes left), leaves carry the
//! entries, in the style of Ellen et al.'s non-blocking BST. Two
//! simplifications keep the implementation compact while preserving the
//! lock-free design point Figure 7 contrasts against:
//!
//! * **No structural delete** — `remove` tombstones the leaf (a wait-free
//!   atomic flag flip) instead of unlinking, and a re-insert revives it.
//!   The YCSB mixes never delete; for delete-heavy workloads this trades
//!   space for simplicity.
//! * Because edges only ever change leaf → internal (the tree grows
//!   monotonically) a single CAS per structural insert is linearizable
//!   with no helping or marking protocol, and there is no reclamation ABA
//!   (GC is off during runs, per the paper's methodology).
//!
//! Random YCSB keys keep the external tree balanced in expectation
//! (depth ≈ 2·ln n), matching how the paper's comparator behaves on
//! Zipfian key spaces.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use crate::ConcurrentMap;

struct Node {
    key: u64,
    /// Routing children; both null for leaves (external tree).
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
    /// Leaf payload.
    value: AtomicU64,
    /// Leaf liveness (false = tombstoned).
    present: AtomicBool,
}

impl Node {
    fn leaf(key: u64, value: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            left: AtomicPtr::new(std::ptr::null_mut()),
            right: AtomicPtr::new(std::ptr::null_mut()),
            value: AtomicU64::new(value),
            present: AtomicBool::new(true),
        }))
    }

    fn internal(key: u64, left: *mut Node, right: *mut Node) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            left: AtomicPtr::new(left),
            right: AtomicPtr::new(right),
            value: AtomicU64::new(0),
            present: AtomicBool::new(false),
        }))
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.left.load(Ordering::Acquire).is_null()
    }
}

/// Lock-free external BST over `u64 -> u64`.
pub struct LockFreeBst {
    root: AtomicPtr<Node>,
}

unsafe impl Send for LockFreeBst {}
unsafe impl Sync for LockFreeBst {}

impl Default for LockFreeBst {
    fn default() -> Self {
        Self::new()
    }
}

impl LockFreeBst {
    /// Empty tree.
    pub fn new() -> Self {
        LockFreeBst {
            root: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Find the leaf that `key` routes to, plus its parent and which side
    /// of the parent the leaf hangs on. Root-leaf has a null parent.
    fn search(&self, key: u64) -> (*mut Node, *mut Node, bool) {
        let mut parent = std::ptr::null_mut();
        let mut went_right = false;
        let mut cur = self.root.load(Ordering::Acquire);
        unsafe {
            while !cur.is_null() && !(*cur).is_leaf() {
                parent = cur;
                if key < (*cur).key {
                    went_right = false;
                    cur = (*cur).left.load(Ordering::Acquire);
                } else {
                    went_right = true;
                    cur = (*cur).right.load(Ordering::Acquire);
                }
            }
        }
        (parent, cur, went_right)
    }
}

impl ConcurrentMap for LockFreeBst {
    fn get(&self, key: u64) -> Option<u64> {
        let (_p, leaf, _r) = self.search(key);
        if leaf.is_null() {
            return None;
        }
        unsafe {
            if (*leaf).key == key && (*leaf).present.load(Ordering::Acquire) {
                Some((*leaf).value.load(Ordering::Acquire))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        let mut fresh: *mut Node = std::ptr::null_mut();
        loop {
            let (parent, leaf, went_right) = self.search(key);
            unsafe {
                if !leaf.is_null() && (*leaf).key == key {
                    // Upsert/revive the existing leaf, wait-free.
                    if !fresh.is_null() {
                        drop(Box::from_raw(fresh)); // lost a race earlier
                    }
                    (*leaf).value.store(value, Ordering::Release);
                    let was = (*leaf).present.swap(true, Ordering::AcqRel);
                    return !was;
                }
                if fresh.is_null() {
                    fresh = Node::leaf(key, value);
                }
                if leaf.is_null() {
                    // Empty tree: install the first leaf.
                    if self
                        .root
                        .compare_exchange(
                            std::ptr::null_mut(),
                            fresh,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return true;
                    }
                    continue;
                }
                // Grow: replace the sibling leaf with a router over both.
                let lkey = (*leaf).key;
                let internal = if key < lkey {
                    Node::internal(lkey, fresh, leaf)
                } else {
                    Node::internal(key, leaf, fresh)
                };
                let slot = if parent.is_null() {
                    &self.root
                } else if went_right {
                    &(*parent).right
                } else {
                    &(*parent).left
                };
                if slot
                    .compare_exchange(leaf, internal, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return true;
                }
                // Lost the race: discard the router (keep the fresh leaf
                // for the retry) and re-search.
                drop(Box::from_raw(internal));
            }
        }
    }

    fn remove(&self, key: u64) -> bool {
        let (_p, leaf, _r) = self.search(key);
        if leaf.is_null() {
            return false;
        }
        unsafe {
            if (*leaf).key == key {
                (*leaf).present.swap(false, Ordering::AcqRel)
            } else {
                false
            }
        }
    }

    fn name(&self) -> &'static str {
        "LockFreeBst (external)"
    }
}

impl Drop for LockFreeBst {
    fn drop(&mut self) {
        fn free(p: *mut Node) {
            if p.is_null() {
                return;
            }
            unsafe {
                free((*p).left.load(Ordering::Relaxed));
                free((*p).right.load(Ordering::Relaxed));
                drop(Box::from_raw(p));
            }
        }
        free(self.root.load(Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn model_check() {
        conformance::sequential_model_check(&LockFreeBst::new(), 4, 5000);
    }

    #[test]
    fn disjoint_writers() {
        conformance::concurrent_disjoint_writers(&LockFreeBst::new());
    }

    #[test]
    fn contended_upserts() {
        conformance::concurrent_contended_upserts(&LockFreeBst::new());
    }

    #[test]
    fn tombstone_revive_cycle() {
        let t = LockFreeBst::new();
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51), "existing key is an update");
        assert_eq!(t.get(5), Some(51));
        assert!(t.remove(5));
        assert!(!t.remove(5), "double remove");
        assert_eq!(t.get(5), None);
        assert!(t.insert(5, 52), "revive counts as new insert");
        assert_eq!(t.get(5), Some(52));
    }

    #[test]
    fn routing_with_adjacent_keys() {
        let t = LockFreeBst::new();
        for k in [10u64, 9, 11, 8, 12, 10] {
            t.insert(k, k);
        }
        for k in 8..=12u64 {
            assert_eq!(t.get(k), Some(k));
        }
        assert_eq!(t.get(7), None);
        assert_eq!(t.get(13), None);
    }

    #[test]
    fn concurrent_growth_loses_no_inserts() {
        let t = LockFreeBst::new();
        std::thread::scope(|s| {
            for th in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    // Interleaved ranges force CAS races on shared parents.
                    for i in 0..4_000u64 {
                        t.insert(i * 4 + th, i);
                    }
                });
            }
        });
        for th in 0..4u64 {
            for i in 0..4_000u64 {
                assert_eq!(t.get(i * 4 + th), Some(i), "lost key {}", i * 4 + th);
            }
        }
    }
}
