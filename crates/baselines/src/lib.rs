//! # mvcc-baselines — concurrent ordered maps compared against in Figure 7
//!
//! The paper benchmarks its batched functional tree against five
//! state-of-the-art concurrent structures (skiplist, OpenBW-tree, Masstree,
//! B+tree, chromatic tree). OpenBW and Masstree are large external C++
//! systems; per DESIGN.md we cover the same design space with four
//! from-scratch implementations:
//!
//! * [`LazySkipList`] — the Herlihy–Shavit *lazy* skiplist: lock-free
//!   wait-free `get`, fine-grained per-node locking with logical deletion
//!   marks for updates;
//! * [`BPlusTree`] — a B+tree with top-down lock coupling and preemptive
//!   splits (at most two nodes locked at any time);
//! * [`LockFreeBst`] — a lock-free external binary search tree in the
//!   Ellen et al. style, simplified to the insert/upsert/get +
//!   tombstone-remove operation set that YCSB exercises (see module docs);
//! * [`CoarseMap`] — a reader-writer-locked `BTreeMap`, the floor any
//!   concurrent structure must beat.
//!
//! All implement [`ConcurrentMap`] over `u64` keys and values (the paper
//! uses 64-bit integers for the YCSB runs) so the Figure 7 harness can
//! sweep them uniformly. Matching the paper's methodology, internal
//! garbage collection is *off*: removed nodes are reclaimed when the
//! structure drops, not during the run.

mod bst;
mod btree;
mod skiplist;

pub use bst::LockFreeBst;
pub use btree::BPlusTree;
pub use skiplist::LazySkipList;

use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Uniform interface for the Figure 7 structures: an ordered map from
/// `u64` to `u64` safe for concurrent use.
pub trait ConcurrentMap: Send + Sync {
    /// Point lookup.
    fn get(&self, key: u64) -> Option<u64>;
    /// Insert or overwrite; returns `true` if the key was newly inserted.
    fn insert(&self, key: u64, value: u64) -> bool;
    /// Remove; returns `true` if the key was present.
    fn remove(&self, key: u64) -> bool;
    /// Display name for benchmark tables.
    fn name(&self) -> &'static str;
}

/// Coarse-grained baseline: one `RwLock` around a `BTreeMap`.
#[derive(Default)]
pub struct CoarseMap {
    inner: RwLock<BTreeMap<u64, u64>>,
}

impl CoarseMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ConcurrentMap for CoarseMap {
    fn get(&self, key: u64) -> Option<u64> {
        self.inner.read().get(&key).copied()
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        self.inner.write().insert(key, value).is_none()
    }

    fn remove(&self, key: u64) -> bool {
        self.inner.write().remove(&key).is_some()
    }

    fn name(&self) -> &'static str {
        "RwLock<BTreeMap>"
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared conformance suite run against every implementation.
    use super::ConcurrentMap;
    use rand::prelude::*;
    use std::collections::BTreeMap;

    pub fn sequential_model_check(map: &impl ConcurrentMap, seed: u64, ops: usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for i in 0..ops {
            let key = rng.gen_range(0..200u64);
            match rng.gen_range(0..3) {
                0 => {
                    let newly = map.insert(key, i as u64);
                    assert_eq!(newly, !model.contains_key(&key), "insert({key}) @op{i}");
                    model.insert(key, i as u64);
                }
                1 => {
                    let was = map.remove(key);
                    assert_eq!(was, model.remove(&key).is_some(), "remove({key}) @op{i}");
                }
                _ => {
                    assert_eq!(map.get(key), model.get(&key).copied(), "get({key}) @op{i}");
                }
            }
        }
        for (k, v) in &model {
            assert_eq!(map.get(*k), Some(*v));
        }
    }

    pub fn concurrent_disjoint_writers(map: &impl ConcurrentMap) {
        let threads = 4;
        let per = 500u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = &map;
                s.spawn(move || {
                    let base = t as u64 * per;
                    for k in base..base + per {
                        assert!(map.insert(k, k * 2));
                    }
                    for k in base..base + per {
                        assert_eq!(map.get(k), Some(k * 2));
                    }
                    for k in (base..base + per).step_by(2) {
                        assert!(map.remove(k));
                    }
                });
            }
        });
        let mut present = 0;
        for k in 0..threads as u64 * per {
            let got = map.get(k);
            if k % 2 == 0 {
                assert_eq!(got, None, "key {k} should be removed");
            } else {
                assert_eq!(got, Some(k * 2), "key {k} should remain");
                present += 1;
            }
        }
        assert_eq!(present, threads as u64 * per / 2);
    }

    pub fn concurrent_contended_upserts(map: &impl ConcurrentMap) {
        // All threads hammer the same small key set with updates; at the
        // end every key must hold one of the written values.
        let threads = 4;
        let rounds = 2_000u64;
        for k in 0..16u64 {
            map.insert(k, 0);
        }
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = &map;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t as u64);
                    for i in 0..rounds {
                        let k = rng.gen_range(0..16u64);
                        map.insert(k, (t as u64) << 32 | i);
                        let _ = map.get(rng.gen_range(0..16u64));
                    }
                });
            }
        });
        for k in 0..16u64 {
            assert!(map.get(k).is_some(), "key {k} lost under contention");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_model() {
        conformance::sequential_model_check(&CoarseMap::new(), 1, 3000);
    }

    #[test]
    fn coarse_disjoint() {
        conformance::concurrent_disjoint_writers(&CoarseMap::new());
    }

    #[test]
    fn coarse_contended() {
        conformance::concurrent_contended_upserts(&CoarseMap::new());
    }
}
