#![allow(clippy::needless_range_loop)]
//! The lazy skiplist (Herlihy–Lev–Luchangco–Shavit, "A Simple Optimistic
//! Skiplist Algorithm") — the paper's skiplist comparator [55].
//!
//! * `get` is wait-free: one marked/fully-linked check after a plain
//!   traversal, no locks, no retries.
//! * `insert`/`remove` use per-node spinlocks with optimistic validation
//!   and *logical deletion* (a mark bit) before physical unlinking.
//! * Updates of existing keys write the value through an atomic (YCSB's
//!   "update" path never restructures).
//!
//! Matching the paper's Figure 7 methodology ("we turn GC off"), physically
//! unlinked nodes are parked in a graveyard and reclaimed when the skiplist
//! drops.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use crate::ConcurrentMap;

const MAX_LEVEL: usize = 16;

/// -1 = head sentinel, 0 = data node, 1 = tail sentinel.
#[derive(PartialEq, Clone, Copy)]
enum Kind {
    Head,
    Data,
    Tail,
}

struct Node {
    kind: Kind,
    key: u64,
    value: AtomicU64,
    /// Height of this node: participates in levels `0..top_level+1`.
    top_level: usize,
    next: [AtomicPtr<Node>; MAX_LEVEL],
    marked: AtomicBool,
    fully_linked: AtomicBool,
    lock: SpinLock,
}

/// Minimal test-and-test-and-set lock; nodes are raw-pointer managed, so a
/// guardless lock keeps the multi-node locking of insert/remove simple.
struct SpinLock(AtomicBool);

impl SpinLock {
    const fn new() -> Self {
        SpinLock(AtomicBool::new(false))
    }
    fn lock(&self) {
        loop {
            if !self.0.swap(true, Ordering::Acquire) {
                return;
            }
            while self.0.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
    }
    fn unlock(&self) {
        self.0.store(false, Ordering::Release);
    }
}

impl Node {
    fn new(kind: Kind, key: u64, value: u64, top_level: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            kind,
            key,
            value: AtomicU64::new(value),
            top_level,
            next: [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_LEVEL],
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(false),
            lock: SpinLock::new(),
        }))
    }

    /// `self < key`? Sentinels compare as ∓∞.
    #[inline]
    fn before(&self, key: u64) -> bool {
        match self.kind {
            Kind::Head => true,
            Kind::Tail => false,
            Kind::Data => self.key < key,
        }
    }

    #[inline]
    fn is(&self, key: u64) -> bool {
        self.kind == Kind::Data && self.key == key
    }
}

/// Lazy lock-based skiplist over `u64 -> u64`.
pub struct LazySkipList {
    head: *mut Node,
    /// Physically removed nodes, reclaimed at drop (GC off, per Figure 7).
    graveyard: Mutex<Vec<*mut Node>>,
    /// Cheap xorshift state for level selection.
    level_seed: AtomicU64,
    len: AtomicUsize,
}

unsafe impl Send for LazySkipList {}
unsafe impl Sync for LazySkipList {}

impl Default for LazySkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl LazySkipList {
    /// Empty skiplist.
    pub fn new() -> Self {
        let head = Node::new(Kind::Head, 0, 0, MAX_LEVEL - 1);
        let tail = Node::new(Kind::Tail, u64::MAX, 0, MAX_LEVEL - 1);
        unsafe {
            for level in 0..MAX_LEVEL {
                (*head).next[level].store(tail, Ordering::Relaxed);
            }
            (*head).fully_linked.store(true, Ordering::Relaxed);
            (*tail).fully_linked.store(true, Ordering::Relaxed);
        }
        LazySkipList {
            head,
            graveyard: Mutex::new(Vec::new()),
            level_seed: AtomicU64::new(0x9E3779B97F4A7C15),
            len: AtomicUsize::new(0),
        }
    }

    /// Approximate number of entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn random_level(&self) -> usize {
        // Geometric with p = 1/2, capped. Xorshift on a shared word is
        // contended but only touched on structural inserts.
        let mut x = self.level_seed.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.level_seed.store(x, Ordering::Relaxed);
        (x.trailing_ones() as usize).min(MAX_LEVEL - 1)
    }

    /// Standard skiplist search: fill `preds`/`succs` per level; return the
    /// highest level at which `key` was found.
    fn find(
        &self,
        key: u64,
        preds: &mut [*mut Node; MAX_LEVEL],
        succs: &mut [*mut Node; MAX_LEVEL],
    ) -> Option<usize> {
        let mut found = None;
        let mut pred = self.head;
        for level in (0..MAX_LEVEL).rev() {
            unsafe {
                let mut curr = (*pred).next[level].load(Ordering::Acquire);
                while (*curr).before(key) {
                    pred = curr;
                    curr = (*pred).next[level].load(Ordering::Acquire);
                }
                if found.is_none() && (*curr).is(key) {
                    found = Some(level);
                }
                preds[level] = pred;
                succs[level] = curr;
            }
        }
        found
    }
}

impl ConcurrentMap for LazySkipList {
    fn get(&self, key: u64) -> Option<u64> {
        // Wait-free contains: traverse, then check link/mark state.
        let mut pred = self.head;
        let mut curr = std::ptr::null_mut();
        for level in (0..MAX_LEVEL).rev() {
            unsafe {
                curr = (*pred).next[level].load(Ordering::Acquire);
                while (*curr).before(key) {
                    pred = curr;
                    curr = (*pred).next[level].load(Ordering::Acquire);
                }
            }
        }
        unsafe {
            if (*curr).is(key)
                && (*curr).fully_linked.load(Ordering::Acquire)
                && !(*curr).marked.load(Ordering::Acquire)
            {
                Some((*curr).value.load(Ordering::Acquire))
            } else {
                None
            }
        }
    }

    fn insert(&self, key: u64, value: u64) -> bool {
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        loop {
            if let Some(lfound) = self.find(key, &mut preds, &mut succs) {
                let node = succs[lfound];
                unsafe {
                    if !(*node).marked.load(Ordering::Acquire) {
                        // Upsert: wait for full linking, then overwrite.
                        while !(*node).fully_linked.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        (*node).value.store(value, Ordering::Release);
                        return false;
                    }
                }
                // Marked: a removal is in flight; retry.
                continue;
            }
            let top = self.random_level();
            // Lock unique predecessors bottom-up and validate.
            let mut locked: Vec<*mut Node> = Vec::with_capacity(top + 1);
            let mut valid = true;
            unsafe {
                let mut prev: *mut Node = std::ptr::null_mut();
                for level in 0..=top {
                    let pred = preds[level];
                    let succ = succs[level];
                    if pred != prev {
                        (*pred).lock.lock();
                        locked.push(pred);
                        prev = pred;
                    }
                    valid = !(*pred).marked.load(Ordering::Acquire)
                        && !(*succ).marked.load(Ordering::Acquire)
                        && (*pred).next[level].load(Ordering::Acquire) == succ;
                    if !valid {
                        break;
                    }
                }
                if !valid {
                    for p in locked {
                        (*p).lock.unlock();
                    }
                    continue;
                }
                let node = Node::new(Kind::Data, key, value, top);
                for level in 0..=top {
                    (*node).next[level].store(succs[level], Ordering::Relaxed);
                }
                for level in 0..=top {
                    (*preds[level]).next[level].store(node, Ordering::Release);
                }
                (*node).fully_linked.store(true, Ordering::Release);
                for p in locked {
                    (*p).lock.unlock();
                }
            }
            self.len.fetch_add(1, Ordering::Relaxed);
            return true;
        }
    }

    fn remove(&self, key: u64) -> bool {
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut victim: *mut Node = std::ptr::null_mut();
        let mut is_marked = false;
        let mut top = 0usize;
        loop {
            let lfound = self.find(key, &mut preds, &mut succs);
            unsafe {
                if !is_marked {
                    let Some(lf) = lfound else { return false };
                    victim = succs[lf];
                    let ok = (*victim).fully_linked.load(Ordering::Acquire)
                        && (*victim).top_level == lf
                        && !(*victim).marked.load(Ordering::Acquire);
                    if !ok {
                        return false;
                    }
                    top = (*victim).top_level;
                    (*victim).lock.lock();
                    if (*victim).marked.load(Ordering::Acquire) {
                        (*victim).lock.unlock();
                        return false;
                    }
                    (*victim).marked.store(true, Ordering::Release); // logical delete
                    is_marked = true;
                }
                // Lock predecessors and validate they still point at victim.
                let mut locked: Vec<*mut Node> = Vec::with_capacity(top + 1);
                let mut valid = true;
                let mut prev: *mut Node = std::ptr::null_mut();
                for level in 0..=top {
                    let pred = preds[level];
                    if pred != prev {
                        (*pred).lock.lock();
                        locked.push(pred);
                        prev = pred;
                    }
                    valid = !(*pred).marked.load(Ordering::Acquire)
                        && (*pred).next[level].load(Ordering::Acquire) == victim;
                    if !valid {
                        break;
                    }
                }
                if !valid {
                    for p in locked {
                        (*p).lock.unlock();
                    }
                    continue; // re-find and retry unlinking
                }
                for level in (0..=top).rev() {
                    let succ = (*victim).next[level].load(Ordering::Acquire);
                    (*preds[level]).next[level].store(succ, Ordering::Release);
                }
                (*victim).lock.unlock();
                for p in locked {
                    (*p).lock.unlock();
                }
            }
            self.graveyard.lock().push(victim);
            self.len.fetch_sub(1, Ordering::Relaxed);
            return true;
        }
    }

    fn name(&self) -> &'static str {
        "LazySkipList"
    }
}

impl Drop for LazySkipList {
    fn drop(&mut self) {
        unsafe {
            // Free the level-0 chain (head, data nodes, tail)...
            let mut cur = self.head;
            while !cur.is_null() {
                let next = (*cur).next[0].load(Ordering::Relaxed);
                drop(Box::from_raw(cur));
                if cur == next {
                    break;
                }
                cur = next;
            }
            // ...and the deferred graveyard.
            for p in self.graveyard.get_mut().drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn model_check() {
        conformance::sequential_model_check(&LazySkipList::new(), 2, 5000);
    }

    #[test]
    fn disjoint_writers() {
        conformance::concurrent_disjoint_writers(&LazySkipList::new());
    }

    #[test]
    fn contended_upserts() {
        conformance::concurrent_contended_upserts(&LazySkipList::new());
    }

    #[test]
    fn boundary_keys() {
        let s = LazySkipList::new();
        assert!(s.insert(0, 1));
        assert!(s.insert(u64::MAX, 2)); // tail sentinel must not collide
        assert_eq!(s.get(0), Some(1));
        assert_eq!(s.get(u64::MAX), Some(2));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn reinsert_after_remove() {
        let s = LazySkipList::new();
        for round in 0..50u64 {
            assert!(s.insert(7, round), "round {round}");
            assert_eq!(s.get(7), Some(round));
            assert!(s.remove(7));
            assert_eq!(s.get(7), None);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_insert_remove_same_keys() {
        let s = LazySkipList::new();
        std::thread::scope(|sc| {
            for t in 0..4 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..2000u64 {
                        let k = i % 32;
                        if (t + i) % 2 == 0 {
                            s.insert(k, i);
                        } else {
                            s.remove(k);
                        }
                        let _ = s.get(k);
                    }
                });
            }
        });
        // Structure is intact: a full scan terminates and is sorted.
        let mut prev = None;
        for k in 0..32u64 {
            if let Some(v) = s.get(k) {
                let _ = v;
                if let Some(p) = prev {
                    assert!(p < k);
                }
                prev = Some(k);
            }
        }
    }
}
