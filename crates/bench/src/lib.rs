//! # mvcc-bench — experiment drivers regenerating the paper's evaluation
//!
//! One module per experiment family; the `src/bin/` harnesses print the
//! corresponding table/figure rows. All parameters scale via environment
//! variables so the same code runs on the paper's 144-thread box or a
//! 1-core CI machine (the workspace-level `BENCH.md` documents every
//! recorded `BENCH_*.json` schema and its regeneration command):
//!
//! | var | default | meaning |
//! |-----|---------|---------|
//! | `MVCC_SECS`     | 2.0  | seconds per measured run |
//! | `MVCC_N`        | 100000 | initial tree size (paper: 10⁸) |
//! | `MVCC_READERS`  | 3    | query threads (paper: 140) |
//! | `MVCC_KEYSPACE` | 100000 | YCSB key space (paper: 5·10⁷) |
//! | `MVCC_DOCS`     | 5000 | initial documents for Table 3 |

pub mod json;
pub mod rangesum;
pub mod table1;
pub mod table3;
pub mod ycsb;

/// Read a scaling knob from the environment.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read an integer scaling knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Seconds per measured run.
pub fn run_secs() -> f64 {
    env_f64("MVCC_SECS", 2.0)
}

/// Number of query threads.
pub fn reader_threads() -> usize {
    env_u64("MVCC_READERS", 3) as usize
}
