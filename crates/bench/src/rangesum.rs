//! The §7.1 single-writer / multi-reader range-sum experiment behind
//! **Table 2** and **Figure 6**.
//!
//! One writer thread commits update transactions of `nu` insertions each;
//! `readers` threads run query transactions of `nq` range-sum queries
//! each, answered in O(log n) from the sum augmentation. The number of
//! live (uncollected) versions is sampled before every update and its
//! maximum reported — the GC-precision metric that separates PSWF/PSLF/RCU
//! from HP/EP.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mvcc_core::Database;
use mvcc_ftree::{Forest, SumU64Map};
use mvcc_vm::VmKind;
use mvcc_workloads::harness::run_for;

use rand::prelude::*;

/// Parameters of one cell of Table 2 / one point of Figure 6.
#[derive(Debug, Clone, Copy)]
pub struct RangeSumConfig {
    /// Initial tree size (paper: 10⁸).
    pub n: u64,
    /// Queries per read transaction.
    pub nq: usize,
    /// Insertions per write transaction.
    pub nu: usize,
    /// Query threads (paper: 140).
    pub readers: usize,
    /// Run duration.
    pub secs: f64,
    /// VM algorithm; `None` is the paper's "Base" (no version
    /// maintenance, no GC).
    pub kind: Option<VmKind>,
}

/// One row cell of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct RangeSumResult {
    /// Query throughput, millions of range-sums per second.
    pub query_mops: f64,
    /// Update throughput, millions of insertions per second.
    pub update_mops: f64,
    /// Maximum number of live versions observed before updates.
    pub max_live_versions: u64,
}

fn preload(db: &Database<SumU64Map, Box<dyn mvcc_vm::VersionMaintenance>>, n: u64) {
    let batch: Vec<(u64, u64)> = (0..n).map(|k| (k * 2, k)).collect();
    // Scoped session: the pid returns to the pool before the workers
    // lease theirs.
    let mut s = db.session().expect("fresh database has free pids");
    s.write(|txn| txn.multi_insert(batch.clone(), |_o, v| *v));
}

/// Run one configuration and report throughputs plus the version high-water
/// mark.
pub fn run(cfg: RangeSumConfig) -> RangeSumResult {
    match cfg.kind {
        Some(kind) => run_vm(cfg, kind),
        None => run_base(cfg),
    }
}

fn run_vm(cfg: RangeSumConfig, kind: VmKind) -> RangeSumResult {
    let threads = cfg.readers + 1;
    let db: Database<SumU64Map, _> = Database::with_kind(kind, threads);
    preload(&db, cfg.n);
    let max_versions = AtomicU64::new(0);
    let key_hi = cfg.n * 2;
    let span = (key_hi / 100).max(2);
    let writer_ops = AtomicU64::new(0);

    // One session per worker, parked behind an (uncontended) mutex: the
    // harness closure is shared across threads but worker `t` is the
    // only locker of slot `t`.
    let sessions: Vec<parking_lot::Mutex<mvcc_core::Session<'_, SumU64Map, _>>> = (0..threads)
        .map(|_| parking_lot::Mutex::new(db.session().expect("one pid per worker")))
        .collect();

    let report = run_for(threads, Duration::from_secs_f64(cfg.secs), |t, iter| {
        let mut rng = SmallRng::seed_from_u64((t as u64) << 32 | (iter & 0xFFFF_FFFF));
        let mut session = sessions[t].lock();
        if t == 0 {
            // Writer: sample live versions, then commit nu insertions.
            max_versions.fetch_max(db.live_versions(), Ordering::Relaxed);
            let batch: Vec<(u64, u64)> = (0..cfg.nu)
                .map(|_| (rng.gen_range(0..key_hi), rng.gen_range(0..1000)))
                .collect();
            session.write(|txn| txn.multi_insert(batch.clone(), |_o, v| *v));
            writer_ops.fetch_add(cfg.nu as u64, Ordering::Relaxed);
            0 // writer ops tracked separately
        } else {
            // Reader: one transaction of nq range-sum queries.
            session.read(|s| {
                let mut acc = 0u64;
                for _ in 0..cfg.nq {
                    let lo = rng.gen_range(0..key_hi.saturating_sub(span));
                    acc = acc.wrapping_add(s.aug_range(&lo, &(lo + span)));
                }
                std::hint::black_box(acc);
            });
            cfg.nq as u64
        }
    });

    RangeSumResult {
        query_mops: report.total_ops() as f64 / report.elapsed.as_secs_f64() / 1e6,
        update_mops: writer_ops.load(Ordering::Relaxed) as f64 / report.elapsed.as_secs_f64() / 1e6,
        max_live_versions: max_versions.load(Ordering::Relaxed),
    }
}

/// The paper's "Base": the same tree and workload with no version
/// maintenance at all — readers query a fixed preloaded snapshot while the
/// writer chains updates privately. Upper-bounds the achievable throughput.
fn run_base(cfg: RangeSumConfig) -> RangeSumResult {
    let forest: Forest<SumU64Map> = Forest::new();
    let batch: Vec<(u64, u64)> = (0..cfg.n).map(|k| (k * 2, k)).collect();
    let preloaded = forest.multi_insert(forest.empty(), batch, |_o, v| *v);
    let key_hi = cfg.n * 2;
    let span = (key_hi / 100).max(2);
    let writer_ops = AtomicU64::new(0);
    // The writer owns a private chain starting from the snapshot.
    forest.retain(preloaded);
    let writer_root = std::sync::Mutex::new(preloaded);

    let report = run_for(
        cfg.readers + 1,
        Duration::from_secs_f64(cfg.secs),
        |t, iter| {
            let mut rng = SmallRng::seed_from_u64((t as u64) << 32 | (iter & 0xFFFF_FFFF));
            if t == 0 {
                let batch: Vec<(u64, u64)> = (0..cfg.nu)
                    .map(|_| (rng.gen_range(0..key_hi), rng.gen_range(0..1000)))
                    .collect();
                let mut root = writer_root.lock().unwrap();
                *root = forest.multi_insert(*root, batch, |_o, v| *v);
                writer_ops.fetch_add(cfg.nu as u64, Ordering::Relaxed);
                0
            } else {
                let mut acc = 0u64;
                for _ in 0..cfg.nq {
                    let lo = rng.gen_range(0..key_hi.saturating_sub(span));
                    acc = acc.wrapping_add(forest.aug_range(preloaded, &lo, &(lo + span)));
                }
                std::hint::black_box(acc);
                cfg.nq as u64
            }
        },
    );

    RangeSumResult {
        query_mops: report.total_ops() as f64 / report.elapsed.as_secs_f64() / 1e6,
        update_mops: writer_ops.load(Ordering::Relaxed) as f64 / report.elapsed.as_secs_f64() / 1e6,
        max_live_versions: 0,
    }
}
