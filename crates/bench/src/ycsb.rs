//! The §7.2 YCSB comparison behind **Figure 7**: our batched functional
//! tree versus the concurrent baselines on workloads A/B/C.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use mvcc_baselines::ConcurrentMap;
use mvcc_core::{BatchWriter, Database, MapOp};
use mvcc_ftree::U64Map;
use mvcc_workloads::harness::run_for;
use mvcc_workloads::ycsb::{Mix, Op, YcsbConfig, YcsbGenerator};

use rand::prelude::*;

/// Ops per harness iteration (amortizes the deadline check).
const CHUNK: usize = 64;

/// Drive a [`ConcurrentMap`] baseline with `threads` symmetric workers.
/// Returns throughput in Mop/s.
pub fn run_baseline(
    map: &(impl ConcurrentMap + ?Sized),
    mix: Mix,
    keyspace: u64,
    threads: usize,
    secs: f64,
) -> f64 {
    // Preload the full key space (the paper's "original dataset") in
    // shuffled order — sorted insertion would degenerate the external
    // BST (which does not rebalance) into a path, benchmarking its worst
    // case rather than the YCSB steady state.
    let mut keys: Vec<u64> = (0..keyspace).collect();
    keys.shuffle(&mut SmallRng::seed_from_u64(0x10ad));
    for k in keys {
        map.insert(k, k);
    }
    // One generator per worker, built once — the Zipfian zeta
    // precomputation is O(keyspace) and must stay out of the hot loop.
    let gens: Vec<Mutex<(SmallRng, YcsbGenerator)>> = (0..threads)
        .map(|t| {
            Mutex::new((
                SmallRng::seed_from_u64(0x5eed ^ (t as u64) << 32),
                YcsbGenerator::new(YcsbConfig::new(mix, keyspace)),
            ))
        })
        .collect();
    let report = run_for(threads, Duration::from_secs_f64(secs), |t, _iter| {
        let mut slot = gens[t].lock();
        let (rng, gen) = &mut *slot;
        let mut done = 0u64;
        for _ in 0..CHUNK {
            match gen.next_op(rng) {
                Op::Read(k) => {
                    std::hint::black_box(map.get(k));
                }
                Op::Update(k, v) => {
                    map.insert(k, v);
                }
            }
            done += 1;
        }
        done
    });
    report.mops()
}

/// Drive our system: reads are delay-free read transactions; updates are
/// submitted to per-thread buffers and committed in parallel batches by a
/// dedicated combining writer (Appendix F). Returns Mop/s over the worker
/// threads' completed operations.
pub fn run_ours(mix: Mix, keyspace: u64, threads: usize, secs: f64) -> f64 {
    // One session for the combiner plus one per worker.
    let db: Database<U64Map> = Database::new(threads + 1);
    {
        let mut s = db.session().expect("fresh pool");
        let preload: Vec<(u64, u64)> = (0..keyspace).map(|k| (k, k)).collect();
        s.write(|txn| txn.multi_insert(preload.clone(), |_o, v| *v));
    }

    let bw: BatchWriter<U64Map> = BatchWriter::new(threads, 4096);
    let stop = AtomicBool::new(false);

    let report = std::thread::scope(|s| {
        // Combiner thread (not counted toward worker throughput, like the
        // paper's single writer applying batches).
        let combiner = s.spawn(|| {
            let mut session = db.session().expect("combiner pid");
            while !stop.load(Ordering::Relaxed) {
                if bw.combine(&mut session) == 0 {
                    std::thread::yield_now();
                }
            }
            // Final drain so every submitted update is applied.
            while bw.combine(&mut session) > 0 {}
        });

        // Per-worker state: RNG + generator + leased session, each behind
        // an uncontended mutex (worker `t` is slot `t`'s only locker).
        type WorkerSlot<'db> = (SmallRng, YcsbGenerator, mvcc_core::Session<'db, U64Map>);
        let gens: Vec<Mutex<WorkerSlot<'_>>> = (0..threads)
            .map(|t| {
                Mutex::new((
                    SmallRng::seed_from_u64(0x5eed ^ (t as u64) << 32),
                    YcsbGenerator::new(YcsbConfig::new(mix, keyspace)),
                    db.session().expect("one pid per worker"),
                ))
            })
            .collect();
        let report = run_for(threads, Duration::from_secs_f64(secs), |t, _iter| {
            let mut slot = gens[t].lock();
            let (rng, gen, session) = &mut *slot;
            let mut done = 0u64;
            for _ in 0..CHUNK {
                match gen.next_op(rng) {
                    Op::Read(k) => {
                        std::hint::black_box(session.read(|snap| snap.get(&k).copied()));
                    }
                    Op::Update(k, v) => {
                        bw.submit_blocking(t, MapOp::Insert(k, v));
                    }
                }
                done += 1;
            }
            done
        });
        stop.store(true, Ordering::Relaxed);
        combiner.join().unwrap();
        report
    });
    report.mops()
}
