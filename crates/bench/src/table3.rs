//! The §7.2 inverted-index experiment behind **Table 3**: does running
//! updates and queries *simultaneously* cost more than running the same
//! work separately? The paper reports Tu (updates alone) + Tq (queries
//! alone) ≈ Tu+q (together): the single writer adds almost no overhead.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mvcc_index::InvertedIndex;
use mvcc_workloads::corpus::{Corpus, CorpusConfig};

/// One row of Table 3.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Query threads used in the mixed run.
    pub p: usize,
    /// Seconds to run the update stream alone.
    pub tu: f64,
    /// Seconds to run the query stream alone.
    pub tq: f64,
    /// Duration of the mixed run (fixed).
    pub tuq: f64,
    /// Updates completed in the mixed run.
    pub updates_done: u64,
    /// Queries completed in the mixed run.
    pub queries_done: u64,
}

/// Scaling parameters.
#[derive(Debug, Clone, Copy)]
pub struct Table3Config {
    /// Initial corpus size (paper: 8.13M docs).
    pub initial_docs: usize,
    /// Documents per update batch.
    pub batch_docs: usize,
    /// Duration of the mixed run (paper: 30 s).
    pub secs: f64,
    /// Query threads.
    pub query_threads: usize,
}

/// One document as `(doc id, [(term, weight)])`, the `add_documents` input.
type DocTuple = (u64, Vec<(u64, u64)>);

fn doc_tuples(c: &mut Corpus, n: usize) -> Vec<DocTuple> {
    c.take(n).into_iter().map(|d| (d.id, d.terms)).collect()
}

/// Run one Table 3 row.
pub fn run(cfg: Table3Config) -> Table3Row {
    let mut corpus = Corpus::new(CorpusConfig::default());
    let total_pids = cfg.query_threads + 1;
    let idx = InvertedIndex::new(total_pids);
    let mut writer = idx.session().expect("writer pid");
    let initial = doc_tuples(&mut corpus, cfg.initial_docs);
    for chunk in initial.chunks(512) {
        writer.add_documents(chunk);
    }

    // ---- Phase 1: mixed run for `secs` (this defines the work volume) ----
    let stop = AtomicBool::new(false);
    let updates_done = AtomicU64::new(0);
    let queries_done = AtomicU64::new(0);
    // Snapshot the RNG-driven update stream so the solo run replays it.
    let mut update_batches: Vec<Vec<DocTuple>> = Vec::new();
    let query_seed_base = 0xFACE;

    let mixed_start = Instant::now();
    std::thread::scope(|s| {
        for qt in 0..cfg.query_threads {
            let idx = &idx;
            let stop = &stop;
            let queries_done = &queries_done;
            s.spawn(move || {
                let mut session = idx.session().expect("query pid");
                let mut local_corpus = Corpus::new(CorpusConfig {
                    seed: query_seed_base + qt as u64,
                    ..CorpusConfig::default()
                });
                while !stop.load(Ordering::Relaxed) {
                    let (a, b) = local_corpus.query_terms();
                    std::hint::black_box(session.and_query(a, b, 10));
                    queries_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Writer on this thread.
        let deadline = Duration::from_secs_f64(cfg.secs);
        while mixed_start.elapsed() < deadline {
            let batch = doc_tuples(&mut corpus, cfg.batch_docs);
            writer.add_documents(&batch);
            update_batches.push(batch);
            updates_done.fetch_add(1, Ordering::Relaxed);
        }
        stop.store(true, Ordering::Relaxed);
    });
    let tuq = mixed_start.elapsed().as_secs_f64();
    let u_done = updates_done.load(Ordering::Relaxed);
    let q_done = queries_done.load(Ordering::Relaxed);

    // ---- Phase 2: the same number of updates, alone ----
    let idx_u = InvertedIndex::new(1);
    let mut writer_u = idx_u.session().expect("solo writer pid");
    let initial2 = {
        let mut c = Corpus::new(CorpusConfig::default());
        doc_tuples(&mut c, cfg.initial_docs)
    };
    for chunk in initial2.chunks(512) {
        writer_u.add_documents(chunk);
    }
    let t0 = Instant::now();
    for batch in &update_batches {
        writer_u.add_documents(batch);
    }
    let tu = t0.elapsed().as_secs_f64();

    // ---- Phase 3: the same number of queries, alone (on the initial
    //      corpus, all threads) ----
    let per_thread = q_done / cfg.query_threads.max(1) as u64;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for qt in 0..cfg.query_threads {
            let idx = &idx;
            s.spawn(move || {
                let mut session = idx.session().expect("query pid");
                let mut local_corpus = Corpus::new(CorpusConfig {
                    seed: query_seed_base + qt as u64,
                    ..CorpusConfig::default()
                });
                for _ in 0..per_thread {
                    let (a, b) = local_corpus.query_terms();
                    std::hint::black_box(session.and_query(a, b, 10));
                }
            });
        }
    });
    let tq = t0.elapsed().as_secs_f64();

    Table3Row {
        p: cfg.query_threads,
        tu,
        tq,
        tuq,
        updates_done: u_done,
        queries_done: q_done,
    }
}
