//! Empirical validation of **Table 1**'s cost bounds: `acquire` is O(1)
//! while `set` and `release` are O(P), and read transactions are
//! delay-free (cost identical to the raw sequential search).

use std::time::Instant;

use mvcc_core::Database;
use mvcc_ftree::{Forest, U64Map};
use mvcc_vm::{PswfVm, VersionMaintenance};

/// Mean nanoseconds per VM operation for a PSWF instance with `p`
/// processes, measured over `iters` acquire/set/release rounds driven by
/// one thread (the bounds are per-operation instruction counts, so a
/// single driver suffices).
#[derive(Debug, Clone, Copy)]
pub struct VmOpCosts {
    /// Processes the instance was built for.
    pub p: usize,
    /// ns per `acquire`.
    pub acquire_ns: f64,
    /// ns per `set`.
    pub set_ns: f64,
    /// ns per `release`.
    pub release_ns: f64,
}

/// Measure PSWF op costs at process count `p`.
pub fn measure_vm_costs(p: usize, iters: u64) -> VmOpCosts {
    let vm = PswfVm::new(p, 0);
    let mut out = Vec::with_capacity(1);
    let mut acquire_ns = 0u128;
    let mut set_ns = 0u128;
    let mut release_ns = 0u128;
    for i in 1..=iters {
        let t0 = Instant::now();
        std::hint::black_box(vm.acquire(0));
        let t1 = Instant::now();
        std::hint::black_box(vm.set(0, i));
        let t2 = Instant::now();
        vm.release(0, &mut out);
        let t3 = Instant::now();
        out.clear();
        acquire_ns += (t1 - t0).as_nanos();
        set_ns += (t2 - t1).as_nanos();
        release_ns += (t3 - t2).as_nanos();
    }
    VmOpCosts {
        p,
        acquire_ns: acquire_ns as f64 / iters as f64,
        set_ns: set_ns as f64 / iters as f64,
        release_ns: release_ns as f64 / iters as f64,
    }
}

/// Delay-freedom check: ns per lookup through a read transaction versus
/// the identical lookup on a raw (non-transactional) tree. The ratio is
/// the reader's *delay factor* — Theorem 5.4 says it is O(1), independent
/// of P.
#[derive(Debug, Clone, Copy)]
pub struct ReadDelay {
    /// Processes in the transactional configuration.
    pub p: usize,
    /// ns per lookup inside a read transaction.
    pub txn_ns: f64,
    /// ns per raw lookup on an identical tree.
    pub raw_ns: f64,
}

impl ReadDelay {
    /// Observed delay factor (≈ constant ⇒ delay-free).
    pub fn factor(&self) -> f64 {
        self.txn_ns / self.raw_ns
    }
}

/// Measure the read-transaction delay factor at process count `p`. Each
/// transaction performs `lookups_per_txn` lookups, amortizing the
/// acquire/release pair exactly as the paper's `nq` does.
pub fn measure_read_delay(p: usize, n: u64, lookups_per_txn: usize, txns: u64) -> ReadDelay {
    let items: Vec<(u64, u64)> = (0..n).map(|k| (k, k)).collect();

    // Raw tree.
    let forest: Forest<U64Map> = Forest::new();
    let root = forest.build_sorted(&items);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..txns {
        for j in 0..lookups_per_txn {
            let k = (i * 2654435761 + j as u64 * 40503) % n;
            acc = acc.wrapping_add(forest.get(root, &k).copied().unwrap_or(0));
        }
    }
    std::hint::black_box(acc);
    let raw = t0.elapsed().as_nanos() as f64 / (txns * lookups_per_txn as u64) as f64;

    // Transactional.
    let db: Database<U64Map> = Database::new(p);
    let mut session = db.session().expect("fresh database has free pids");
    session.write(|txn| txn.multi_insert(items.clone(), |_o, v| *v));
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..txns {
        acc = acc.wrapping_add(session.read(|s| {
            let mut a = 0u64;
            for j in 0..lookups_per_txn {
                let k = (i * 2654435761 + j as u64 * 40503) % n;
                a = a.wrapping_add(s.get(&k).copied().unwrap_or(0));
            }
            a
        }));
    }
    std::hint::black_box(acc);
    let txn = t0.elapsed().as_nanos() as f64 / (txns * lookups_per_txn as u64) as f64;

    ReadDelay {
        p,
        txn_ns: txn,
        raw_ns: raw,
    }
}
