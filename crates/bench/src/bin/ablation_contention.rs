//! **Theorem 3.5 validation: amortized contention in the single-writer
//! setting.**
//!
//! The theorem: with concurrent `set`s disallowed, each `acquire`
//! experiences O(1) amortized contention and each `set`/`release` O(P) —
//! *regardless of the adversarial schedule*. Contention (§2) counts
//! responses of modifying operations on the same word during ours; a
//! failed CAS is exactly such an event, so the instrumented PSWF's
//! CAS-failure count is a faithful lower-bound proxy, and its CAS-attempt
//! count bounds the operations' own modifying traffic.
//!
//! We run one writer + R readers in tight transaction loops and report
//! **CAS failures per operation** as R grows. Theorem 3.5 predicts a
//! constant (O(1) amortized per reader op, the O(P) terms amortized over
//! the writer's O(P)-time ops); a broken helping/status protocol would
//! instead show failures growing with R (readers repeatedly thwarting
//! each other).
//!
//! ```sh
//! cargo run --release -p mvcc-bench --bin ablation_contention
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mvcc_bench::run_secs;
use mvcc_vm::{PswfVm, VersionMaintenance};

struct Point {
    ops: u64,
    cas_failures: u64,
}

fn run(readers: usize, secs: f64) -> Point {
    let vm = Arc::new(PswfVm::new(readers + 1, 0));
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for r in 0..readers {
            let vm = Arc::clone(&vm);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            s.spawn(move || {
                let mut out = Vec::new();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    vm.acquire(r + 1);
                    vm.release(r + 1, &mut out);
                    out.clear();
                    n += 2;
                }
                ops.fetch_add(n, Ordering::Relaxed);
            });
        }
        {
            let vm = Arc::clone(&vm);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            s.spawn(move || {
                let mut out = Vec::new();
                let mut token = 1u64;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    vm.acquire(0);
                    assert!(vm.set(0, token), "single writer never aborts");
                    token += 1;
                    vm.release(0, &mut out);
                    out.clear();
                    n += 3;
                }
                ops.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    });

    Point {
        ops: ops.load(Ordering::Relaxed),
        cas_failures: vm.cas_failures(),
    }
}

fn main() {
    let secs = run_secs();
    println!("Theorem 3.5 — amortized contention, single-writer PSWF ({secs}s per row)");
    println!("(CAS failure = one unit of §2 contention experienced by some operation)");
    println!();
    println!(
        "{:>8} {:>12} {:>14} {:>16}",
        "readers", "ops", "CAS failures", "failures/op"
    );
    println!("{}", "-".repeat(56));
    for readers in [1usize, 2, 4, 8, 16] {
        let p = run(readers, secs);
        println!(
            "{:>8} {:>12} {:>14} {:>16.6}",
            readers,
            p.ops,
            p.cas_failures,
            p.cas_failures as f64 / p.ops as f64,
        );
    }
    println!();
    println!("Expected: failures/op stays O(1)-flat (bounded, not growing with readers).");
}
