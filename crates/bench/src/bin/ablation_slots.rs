//! **Ablation: the PSWF status-array size.**
//!
//! Algorithm 4 pre-allocates `3P+1` status/data slots, the smallest size
//! for which the paper's Lemma B.10 proves that a slot-exhaustion abort
//! always coincides with a concurrent successful `set` (keeping the
//! algorithm 1-abortable and hence lock-free). This bench measures what
//! actually happens with smaller and larger arrays: `P+2` (just above the
//! hard floor), `2P+1` (enough for every acquired version plus every
//! in-flight set), `3P+1` (the paper), and `4P+1` (slack).
//!
//! Expected shape: commit throughput is essentially flat (slot scans are
//! O(slots) either way), while **slot-exhaustion aborts** appear only
//! below `2P+1`; `3P+1` buys the *proof* of legal aborting, not speed.
//!
//! ```sh
//! cargo run --release -p mvcc-bench --bin ablation_slots
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mvcc_bench::{env_u64, run_secs};
use mvcc_vm::{PswfVm, VersionMaintenance};

struct Outcome {
    commits: u64,
    aborts: u64,
}

/// Drive `writers` threads through acquire / set / release loops against
/// one PSWF instance with `slots` status slots.
fn run(writers: usize, slots: usize, secs: f64) -> Outcome {
    let vm = Arc::new(PswfVm::with_slots(writers, slots, 0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut totals = Outcome {
        commits: 0,
        aborts: 0,
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..writers)
            .map(|k| {
                let vm = Arc::clone(&vm);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut out = Vec::new();
                    let (mut commits, mut aborts) = (0u64, 0u64);
                    let mut token = (k as u64 + 1) << 48;
                    while !stop.load(Ordering::Relaxed) {
                        vm.acquire(k);
                        token += 1;
                        if vm.set(k, token) {
                            commits += 1;
                        } else {
                            aborts += 1;
                        }
                        vm.release(k, &mut out);
                        out.clear();
                    }
                    (commits, aborts)
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            let (c, a) = h.join().unwrap();
            totals.commits += c;
            totals.aborts += a;
        }
    });
    totals
}

fn main() {
    let writers = env_u64("MVCC_WRITERS", 4).max(1) as usize;
    let secs = run_secs();
    let p = writers;
    let slot_configs = [
        (p + 2, "P+2"),
        (2 * p + 1, "2P+1"),
        (3 * p + 1, "3P+1 (paper)"),
        (4 * p + 1, "4P+1"),
    ];

    println!("Ablation — PSWF status-array size ({writers} concurrent writers, {secs}s per point)");
    println!("All aborts are legal retries; below 2P+1 some are *spurious* (slot exhaustion");
    println!("without a conflicting commit), which Lemma B.10's 3P+1 sizing rules out.");
    println!();
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>10}",
        "slots", "commits/s", "aborts/s", "abort/commit", "Mop/s"
    );
    println!("{}", "-".repeat(64));
    for (slots, label) in slot_configs {
        let o = run(writers, slots, secs);
        let cps = o.commits as f64 / secs;
        let aps = o.aborts as f64 / secs;
        let ratio = if o.commits > 0 {
            o.aborts as f64 / o.commits as f64
        } else {
            f64::INFINITY
        };
        println!(
            "{:>14} {:>12.0} {:>12.0} {:>12.3} {:>10.3}",
            label,
            cps,
            aps,
            ratio,
            (cps + aps) / 1e6
        );
    }
}
