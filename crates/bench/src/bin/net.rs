//! Network front-end benchmark: admission-wait tails when connections
//! outnumber pids 4×, sync-thread vs async-admission.
//!
//! Both configurations offer the *same* open-loop Poisson load (per
//! client, exponential gaps around `MVCC_NET_MEAN_US`) against the same
//! router shape, and both report the tail of the time a request spent
//! waiting for a session:
//!
//! * `sync_thread` — one OS thread per client blocking in
//!   `Router::session` (the PR-3 path): the wait is measured around the
//!   blocking acquire, and every waiter costs a parked thread.
//! * `async_admission` — the same clients as TCP connections against an
//!   `mvcc-net` server: requests park as futures in the shard admission
//!   queues (server-side wait samples), and the only thread is the
//!   server's poll loop. Client-observed round-trip time is reported
//!   alongside, since the wire adds loopback syscalls on top.
//!
//! A second family measures **overload protection**: the same router
//! shape under an adversarial pipelined storm (every client bursts
//! requests back-to-back, and every pid is camped outside the server
//! for the first `MVCC_NET_STORM_CAMP_MS` so arrivals genuinely
//! queue), once with shedding + request deadlines on and once fully
//! permissive. The shed run answers excess load with typed
//! `Overloaded` replies at the door, so the admission queue stays
//! bounded by the configured depth; the permissive run lets every
//! request wait its full turn and the queue grow with the connection
//! count.
//!
//! Results land in `BENCH_net.json` at the repo root (companion to
//! `BENCH_oversub.json`).
//!
//! ```sh
//! MVCC_PIDS=4 MVCC_SHARDS=2 MVCC_NET_CONNS=32 MVCC_NET_REQS=200 \
//!     cargo run --release -p mvcc-bench --bin net
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use mvcc_bench::env_u64;
use mvcc_bench::json::{self, JsonWriter};
use mvcc_core::{Router, Session};
use mvcc_ftree::U64Map;
use mvcc_net::{Client, ErrorCode, Request, Response, Server, ServerConfig, ServerStats};
use mvcc_workloads::oversub::{run_oversubscribed_with, Arrivals, LatencySummary};

fn summary_json(name: &str, s: &LatencySummary, jw: &mut JsonWriter) {
    jw.begin_object(name);
    jw.field_u64("count", s.count);
    jw.field_u64("mean", s.mean_ns);
    jw.field_u64("p50", s.p50_ns);
    jw.field_u64("p90", s.p90_ns);
    jw.field_u64("p99", s.p99_ns);
    jw.field_u64("p999", s.p999_ns);
    jw.field_u64("max", s.max_ns);
    jw.end_object();
}

fn throughput_rps(requests: u64, elapsed: Duration) -> u64 {
    (requests as f64 / elapsed.as_secs_f64()) as u64
}

/// One adversarial-storm run's worth of results.
struct Storm {
    /// Requests that were actually applied (goodput numerator).
    ok: u64,
    /// Requests answered `Overloaded` (shed at the door or expired).
    rejected: u64,
    elapsed: Duration,
    /// Client-observed latency of *successful* requests.
    rtt: LatencySummary,
    /// Server-side admission-queue waits.
    wait: LatencySummary,
    stats: ServerStats,
}

/// Drive `conns` pipelined clients against a fresh server: each client
/// fires `burst` back-to-back PUTs, drains the replies, and repeats
/// until `reqs` requests are in — an open-loop overload with up to
/// `conns * burst` requests outstanding at once.
///
/// For the first `camp` of the run every pid is held *outside* the
/// server (a stalled-tenant stand-in), so arrivals during that window
/// genuinely queue: the server's poll loop otherwise executes each
/// granted request inline and the admission queue never builds. This
/// is the window where shedding and deadlines earn their keep.
fn run_storm(
    shards: usize,
    pids: usize,
    conns: usize,
    reqs: usize,
    burst: usize,
    camp: Duration,
    config: ServerConfig,
) -> Storm {
    let router = Arc::new(Router::<U64Map>::new(shards, pids));
    let handle =
        Server::start_with(Arc::clone(&router), "127.0.0.1:0", config).expect("bind loopback");
    let addr = handle.addr();

    // Camp every pid of every shard before the first client connects.
    let campers: Vec<Session<U64Map>> = (0..shards)
        .flat_map(|sh| {
            let pool = router.with_shard(sh).pool();
            (0..pids).map(move |_| pool.try_acquire().expect("fresh pool has free pids"))
        })
        .collect();

    let t0 = Instant::now();
    let per_client: Vec<(Vec<u64>, u64, u64)> = std::thread::scope(|s| {
        s.spawn(move || {
            std::thread::sleep(camp);
            drop(campers); // capacity returns mid-storm
        });
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut rtts = Vec::with_capacity(reqs);
                    let (mut ok, mut rejected) = (0u64, 0u64);
                    let mut i = 0;
                    while i < reqs {
                        let n = burst.min(reqs - i);
                        let t = Instant::now();
                        for j in 0..n {
                            let k = (c * reqs + i + j) as u64;
                            client
                                .send(&Request::Put { key: k, value: k })
                                .expect("send");
                        }
                        for _ in 0..n {
                            match client.recv().expect("recv") {
                                Response::Done => {
                                    ok += 1;
                                    rtts.push(t.elapsed().as_nanos() as u64);
                                }
                                Response::Error {
                                    code: ErrorCode::Overloaded,
                                    ..
                                } => rejected += 1,
                                other => panic!("unexpected storm reply: {other:?}"),
                            }
                        }
                        i += n;
                    }
                    (rtts, ok, rejected)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();

    let mut wait_samples = handle.server().take_wait_samples();
    let stats = handle.server().stats();
    handle.shutdown().expect("clean server shutdown");
    assert_eq!(router.sessions_leased(), 0, "no pids leaked by the storm");
    assert_eq!(stats.fifo_violations, 0, "admission stayed FIFO");

    let mut rtts: Vec<u64> = Vec::new();
    let (mut ok, mut rejected) = (0u64, 0u64);
    for (r, o, sh) in per_client {
        rtts.extend(r);
        ok += o;
        rejected += sh;
    }
    Storm {
        ok,
        rejected,
        elapsed,
        rtt: LatencySummary::from_ns(&mut rtts),
        wait: LatencySummary::from_ns(&mut wait_samples),
        stats,
    }
}

fn storm_json(name: &str, s: &Storm, jw: &mut JsonWriter) {
    jw.begin_object(name);
    jw.field_u64("ok", s.ok);
    jw.field_u64("rejected", s.rejected);
    jw.field_u128("elapsed_ms", s.elapsed.as_millis());
    jw.field_u64("goodput_rps", throughput_rps(s.ok, s.elapsed));
    jw.field_u64("shed", s.stats.shed);
    jw.field_u64("deadline_expired", s.stats.deadline_expired);
    jw.field_u64("max_queue_depth", s.stats.max_queue_depth);
    summary_json("wait_ns", &s.wait, jw);
    summary_json("rtt_ns", &s.rtt, jw);
    jw.end_object();
}

fn main() {
    let pids = env_u64("MVCC_PIDS", 4) as usize;
    let shards = env_u64("MVCC_SHARDS", 2) as usize;
    let capacity = shards * pids;
    let conns = env_u64("MVCC_NET_CONNS", 4 * capacity as u64) as usize;
    let reqs = env_u64("MVCC_NET_REQS", 200) as usize;
    let mean = Duration::from_micros(env_u64("MVCC_NET_MEAN_US", 200));
    let seed = env_u64("MVCC_NET_SEED", 0x5EED);
    let arrivals = Arrivals::OpenPoisson { mean, seed };

    println!(
        "net front end: {conns} clients over {shards}x{pids} pids \
         ({:.1}x oversubscribed), {reqs} reqs/client, Poisson mean {mean:?}",
        conns as f64 / capacity as f64,
    );

    // --- sync-thread path: blocking acquire per client thread -----------
    let router: Router<U64Map> = Router::new(shards, pids);
    let sync = run_oversubscribed_with(
        conns,
        reqs,
        arrivals,
        |c| router.session(&c),
        |s, c, i| {
            let k = (c * reqs + i) as u64;
            s.insert(k, k);
            s.get(&k);
        },
    );
    assert_eq!(router.sessions_leased(), 0, "all shard pids returned");
    println!("  sync_thread     wait {}", sync.wait);

    // --- async-admission path: the same load over the wire --------------
    let router = Arc::new(Router::<U64Map>::new(shards, pids));
    let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr();

    let t0 = Instant::now();
    let rtts: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let schedule = arrivals.schedule(c, reqs).expect("open loop");
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut rtts = Vec::with_capacity(reqs);
                    let base = Instant::now();
                    for (i, due) in schedule.into_iter().enumerate() {
                        if let Some(slack) = (base + due).checked_duration_since(Instant::now()) {
                            std::thread::sleep(slack);
                        }
                        let k = (c * reqs + i) as u64;
                        let t = Instant::now();
                        client.put(k, k).expect("put");
                        rtts.push(t.elapsed().as_nanos() as u64);
                    }
                    rtts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let net_elapsed = t0.elapsed();

    let mut wait_samples = handle.server().take_wait_samples();
    let stats = handle.server().stats();
    handle.shutdown().expect("clean server shutdown");
    assert_eq!(router.sessions_leased(), 0, "no pids leaked by the server");
    assert_eq!(stats.fifo_violations, 0, "admission stayed FIFO");

    let async_wait = LatencySummary::from_ns(&mut wait_samples);
    let mut all_rtts: Vec<u64> = rtts.into_iter().flatten().collect();
    let total_reqs = all_rtts.len() as u64;
    let rtt = LatencySummary::from_ns(&mut all_rtts);
    println!("  async_admission wait {async_wait}");
    println!("  async_admission rtt  {rtt}");

    // --- overload family: adversarial storm, shed on vs off -------------
    let storm_conns = env_u64("MVCC_NET_STORM_CONNS", conns as u64) as usize;
    let storm_reqs = env_u64("MVCC_NET_STORM_REQS", reqs as u64) as usize;
    let storm_burst = env_u64("MVCC_NET_STORM_BURST", 8) as usize;
    let shed_depth = env_u64("MVCC_NET_SHED_DEPTH", capacity as u64) as usize;
    let camp = Duration::from_millis(env_u64("MVCC_NET_STORM_CAMP_MS", 50));
    println!(
        "storm: {storm_conns} pipelined clients x {storm_reqs} reqs, \
         burst {storm_burst}, shed depth {shed_depth}, pids camped {camp:?}"
    );

    let shed_on = run_storm(
        shards,
        pids,
        storm_conns,
        storm_reqs,
        storm_burst,
        camp,
        ServerConfig {
            shed_depth: Some(shed_depth),
            request_deadline: Some(Duration::from_millis(20)),
            idle_timeout: None,
            retry_after_hint: Duration::from_millis(1),
        },
    );
    println!(
        "  shed_on  ok {} rejected {} goodput {}rps wait {}",
        shed_on.ok,
        shed_on.rejected,
        throughput_rps(shed_on.ok, shed_on.elapsed),
        shed_on.wait,
    );
    let shed_off = run_storm(
        shards,
        pids,
        storm_conns,
        storm_reqs,
        storm_burst,
        camp,
        ServerConfig::default(),
    );
    println!(
        "  shed_off ok {} rejected {} goodput {}rps wait {}",
        shed_off.ok,
        shed_off.rejected,
        throughput_rps(shed_off.ok, shed_off.elapsed),
        shed_off.wait,
    );

    let mut jw = JsonWriter::bench("net_front_end");
    jw.field_u64("pids", pids as u64);
    jw.field_u64("shards", shards as u64);
    jw.field_u64("conns", conns as u64);
    jw.field_u64("reqs_per_conn", reqs as u64);
    jw.field_u128("poisson_mean_us", mean.as_micros());
    jw.field_u64("seed", seed);
    jw.field_u64(
        "host_threads",
        std::thread::available_parallelism().map_or(0, |n| n.get()) as u64,
    );
    jw.begin_object("configs");

    jw.begin_object("sync_thread");
    jw.field_u64("clients", sync.clients as u64);
    jw.field_u64("requests", sync.acquires);
    jw.field_u128("elapsed_ms", sync.elapsed.as_millis());
    jw.field_u64(
        "throughput_rps",
        throughput_rps(sync.acquires, sync.elapsed),
    );
    summary_json("wait_ns", &sync.wait, &mut jw);
    jw.end_object();

    jw.begin_object("async_admission");
    jw.field_u64("clients", conns as u64);
    jw.field_u64("requests", total_reqs);
    jw.field_u128("elapsed_ms", net_elapsed.as_millis());
    jw.field_u64("throughput_rps", throughput_rps(total_reqs, net_elapsed));
    jw.field_u64("served", stats.requests);
    jw.field_u64("fifo_violations", stats.fifo_violations);
    summary_json("wait_ns", &async_wait, &mut jw);
    summary_json("rtt_ns", &rtt, &mut jw);
    jw.end_object();

    jw.end_object();

    jw.begin_object("storm");
    jw.field_u64("conns", storm_conns as u64);
    jw.field_u64("reqs_per_conn", storm_reqs as u64);
    jw.field_u64("burst", storm_burst as u64);
    jw.field_u64("shed_depth", shed_depth as u64);
    jw.field_u128("camp_ms", camp.as_millis());
    storm_json("shed_on", &shed_on, &mut jw);
    storm_json("shed_off", &shed_off, &mut jw);
    jw.end_object();

    json::write_repo_root("BENCH_net.json", &jw.finish());
}
