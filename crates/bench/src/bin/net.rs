//! Network front-end benchmark: admission-wait tails when connections
//! outnumber pids 4×, sync-thread vs async-admission.
//!
//! Both configurations offer the *same* open-loop Poisson load (per
//! client, exponential gaps around `MVCC_NET_MEAN_US`) against the same
//! router shape, and both report the tail of the time a request spent
//! waiting for a session:
//!
//! * `sync_thread` — one OS thread per client blocking in
//!   `Router::session` (the PR-3 path): the wait is measured around the
//!   blocking acquire, and every waiter costs a parked thread.
//! * `async_admission` — the same clients as TCP connections against an
//!   `mvcc-net` server: requests park as futures in the shard admission
//!   queues (server-side wait samples), and the only thread is the
//!   server's poll loop. Client-observed round-trip time is reported
//!   alongside, since the wire adds loopback syscalls on top.
//!
//! Results land in `BENCH_net.json` at the repo root (companion to
//! `BENCH_oversub.json`).
//!
//! ```sh
//! MVCC_PIDS=4 MVCC_SHARDS=2 MVCC_NET_CONNS=32 MVCC_NET_REQS=200 \
//!     cargo run --release -p mvcc-bench --bin net
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use mvcc_bench::env_u64;
use mvcc_bench::json::{self, JsonWriter};
use mvcc_core::Router;
use mvcc_ftree::U64Map;
use mvcc_net::{Client, Server};
use mvcc_workloads::oversub::{run_oversubscribed_with, Arrivals, LatencySummary};

fn summary_json(name: &str, s: &LatencySummary, jw: &mut JsonWriter) {
    jw.begin_object(name);
    jw.field_u64("count", s.count);
    jw.field_u64("mean", s.mean_ns);
    jw.field_u64("p50", s.p50_ns);
    jw.field_u64("p90", s.p90_ns);
    jw.field_u64("p99", s.p99_ns);
    jw.field_u64("p999", s.p999_ns);
    jw.field_u64("max", s.max_ns);
    jw.end_object();
}

fn throughput_rps(requests: u64, elapsed: Duration) -> u64 {
    (requests as f64 / elapsed.as_secs_f64()) as u64
}

fn main() {
    let pids = env_u64("MVCC_PIDS", 4) as usize;
    let shards = env_u64("MVCC_SHARDS", 2) as usize;
    let capacity = shards * pids;
    let conns = env_u64("MVCC_NET_CONNS", 4 * capacity as u64) as usize;
    let reqs = env_u64("MVCC_NET_REQS", 200) as usize;
    let mean = Duration::from_micros(env_u64("MVCC_NET_MEAN_US", 200));
    let seed = env_u64("MVCC_NET_SEED", 0x5EED);
    let arrivals = Arrivals::OpenPoisson { mean, seed };

    println!(
        "net front end: {conns} clients over {shards}x{pids} pids \
         ({:.1}x oversubscribed), {reqs} reqs/client, Poisson mean {mean:?}",
        conns as f64 / capacity as f64,
    );

    // --- sync-thread path: blocking acquire per client thread -----------
    let router: Router<U64Map> = Router::new(shards, pids);
    let sync = run_oversubscribed_with(
        conns,
        reqs,
        arrivals,
        |c| router.session(&c),
        |s, c, i| {
            let k = (c * reqs + i) as u64;
            s.insert(k, k);
            s.get(&k);
        },
    );
    assert_eq!(router.sessions_leased(), 0, "all shard pids returned");
    println!("  sync_thread     wait {}", sync.wait);

    // --- async-admission path: the same load over the wire --------------
    let router = Arc::new(Router::<U64Map>::new(shards, pids));
    let handle = Server::start(Arc::clone(&router), "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr();

    let t0 = Instant::now();
    let rtts: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let schedule = arrivals.schedule(c, reqs).expect("open loop");
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut rtts = Vec::with_capacity(reqs);
                    let base = Instant::now();
                    for (i, due) in schedule.into_iter().enumerate() {
                        if let Some(slack) = (base + due).checked_duration_since(Instant::now()) {
                            std::thread::sleep(slack);
                        }
                        let k = (c * reqs + i) as u64;
                        let t = Instant::now();
                        client.put(k, k).expect("put");
                        rtts.push(t.elapsed().as_nanos() as u64);
                    }
                    rtts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let net_elapsed = t0.elapsed();

    let mut wait_samples = handle.server().take_wait_samples();
    let stats = handle.server().stats();
    handle.shutdown().expect("clean server shutdown");
    assert_eq!(router.sessions_leased(), 0, "no pids leaked by the server");
    assert_eq!(stats.fifo_violations, 0, "admission stayed FIFO");

    let async_wait = LatencySummary::from_ns(&mut wait_samples);
    let mut all_rtts: Vec<u64> = rtts.into_iter().flatten().collect();
    let total_reqs = all_rtts.len() as u64;
    let rtt = LatencySummary::from_ns(&mut all_rtts);
    println!("  async_admission wait {async_wait}");
    println!("  async_admission rtt  {rtt}");

    let mut jw = JsonWriter::bench("net_front_end");
    jw.field_u64("pids", pids as u64);
    jw.field_u64("shards", shards as u64);
    jw.field_u64("conns", conns as u64);
    jw.field_u64("reqs_per_conn", reqs as u64);
    jw.field_u128("poisson_mean_us", mean.as_micros());
    jw.field_u64("seed", seed);
    jw.field_u64(
        "host_threads",
        std::thread::available_parallelism().map_or(0, |n| n.get()) as u64,
    );
    jw.begin_object("configs");

    jw.begin_object("sync_thread");
    jw.field_u64("clients", sync.clients as u64);
    jw.field_u64("requests", sync.acquires);
    jw.field_u128("elapsed_ms", sync.elapsed.as_millis());
    jw.field_u64(
        "throughput_rps",
        throughput_rps(sync.acquires, sync.elapsed),
    );
    summary_json("wait_ns", &sync.wait, &mut jw);
    jw.end_object();

    jw.begin_object("async_admission");
    jw.field_u64("clients", conns as u64);
    jw.field_u64("requests", total_reqs);
    jw.field_u128("elapsed_ms", net_elapsed.as_millis());
    jw.field_u64("throughput_rps", throughput_rps(total_reqs, net_elapsed));
    jw.field_u64("served", stats.requests);
    jw.field_u64("fifo_violations", stats.fifo_violations);
    summary_json("wait_ns", &async_wait, &mut jw);
    summary_json("rtt_ns", &rtt, &mut jw);
    jw.end_object();

    jw.end_object();
    json::write_repo_root("BENCH_net.json", &jw.finish());
}
