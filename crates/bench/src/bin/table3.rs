//! Regenerates **Table 3**: inverted-index update/query separability —
//! running the update stream and the query stream together should take
//! about as long as running them back-to-back (Tu + Tq ≈ Tu+q).
//!
//! ```sh
//! MVCC_DOCS=5000 MVCC_SECS=5 cargo run --release -p mvcc-bench --bin table3
//! ```

use mvcc_bench::table3::{run, Table3Config};
use mvcc_bench::{env_u64, run_secs};

fn main() {
    let initial_docs = env_u64("MVCC_DOCS", 5_000) as usize;
    let secs = run_secs();
    let thread_counts = [1usize, 2, 4];

    println!("Table 3 — inverted index: simultaneous vs separate (seconds)");
    println!("initial corpus = {initial_docs} docs, mixed run = {secs}s");
    println!("(paper: Wikipedia 8.13M docs, 30s runs, 144 threads)");
    println!();
    println!(
        "{:>3} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "p", "Tu", "Tq", "Tu+Tq", "Tu+q", "updates", "queries"
    );
    println!("{}", "-".repeat(64));

    for p in thread_counts {
        let row = run(Table3Config {
            initial_docs,
            batch_docs: 64,
            secs,
            query_threads: p,
        });
        println!(
            "{:>3} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10} {:>10}",
            row.p,
            row.tu,
            row.tq,
            row.tu + row.tq,
            row.tuq,
            row.updates_done,
            row.queries_done
        );
    }
    println!();
    println!("paper's conclusion holds when Tu + Tq ≈ Tu+q (work conserved under mixing)");
}
