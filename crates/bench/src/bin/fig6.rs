//! Regenerates **Figure 6**: maximum number of uncollected versions vs.
//! update granularity `nu` (queries fixed at `nq = 10`), one series per VM
//! algorithm. The paper's shape: HP flat at 2P, EP blowing up at small
//! `nu`, RCU pinned at 1, PSWF/PSLF low throughout.
//!
//! ```sh
//! cargo run --release -p mvcc-bench --bin fig6
//! ```

use mvcc_bench::rangesum::{run, RangeSumConfig};
use mvcc_bench::{env_u64, reader_threads, run_secs};
use mvcc_vm::VmKind;

fn main() {
    let n = env_u64("MVCC_N", 100_000);
    let readers = reader_threads();
    let secs = run_secs();
    let nus = [1usize, 10, 100, 1000];

    println!("Figure 6 — max uncollected versions vs update granularity");
    println!("n = {n}, nq = 10, readers = {readers}, {secs}s per point");
    println!("(paper reference points: HP = 2P, RCU = 1, EP up to ~1000)");
    println!();
    print!("{:>8}", "nu");
    for kind in VmKind::ALL {
        print!("{:>8}", kind.name());
    }
    println!();
    println!("{}", "-".repeat(8 + 8 * VmKind::ALL.len()));

    for nu in nus {
        print!("{:>8}", nu);
        for kind in VmKind::ALL {
            let r = run(RangeSumConfig {
                n,
                nq: 10,
                nu,
                readers,
                secs,
                kind: Some(kind),
            });
            print!("{:>8}", r.max_live_versions);
        }
        println!();
    }
    println!();
    println!(
        "HP bound for this config: 2P = {} (P = {} incl. writer)",
        2 * (readers + 1),
        readers + 1
    );
}
