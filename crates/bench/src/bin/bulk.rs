//! Parallel bulk-operation benchmark: sequential vs work-stealing-pool
//! execution of `union` / `difference` / `filter`.
//!
//! For each tree size and each worker count in {1, 2, 4, nproc} the
//! harness reconfigures the global fork-join pool in-process
//! (`rayon::pool::set_pool_threads`) and times the operation over
//! retained inputs; `workers = 1` *is* the old sequential shim (no pool
//! threads are spawned), so the w=1 row is the sequential baseline the
//! parallel rows are judged against. Results print per configuration
//! and land in `BENCH_bulk.json` at the repo root (companion to
//! `BENCH_arena.json` / `BENCH_oversub.json`), with the host's
//! `nproc` recorded — on the 1-core CI container the parallel rows
//! measure pure fork overhead (the acceptance gate is < 10% regression
//! there), while multicore hosts record the actual speedup.
//!
//! ```sh
//! MVCC_BULK_SIZES=10000,100000,1000000 cargo run --release -p mvcc-bench --bin bulk
//! MVCC_BULK_FULL=1 ...         # adds the 10^7 sweep (~1 GiB peak RSS)
//! MVCC_PAR_CUTOFF=4096 ...     # sweep the fork cutoff
//! ```

use std::time::Instant;

use mvcc_bench::env_u64;
use mvcc_bench::json::{self, JsonWriter};
use mvcc_ftree::{Forest, Root, U64Map};
use rayon::pool;

struct OpResult {
    mean_ns: u128,
    min_ns: u128,
    reps: usize,
}

fn time_reps(reps: usize, mut run: impl FnMut()) -> OpResult {
    let mut total = 0u128;
    let mut min = u128::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        run();
        let dt = t0.elapsed().as_nanos();
        total += dt;
        min = min.min(dt);
    }
    OpResult {
        mean_ns: total / reps as u128,
        min_ns: min,
        reps,
    }
}

type Pairs = Vec<(u64, u64)>;

/// Union inputs: interleaved key ranges (every key new to the other
/// side), the worst case for structural sharing.
fn union_inputs(n: u64) -> (Pairs, Pairs) {
    let a = (0..n).map(|k| (k * 2, k)).collect();
    let b = (0..n).map(|k| (k * 2 + 1, k)).collect();
    (a, b)
}

fn run_op(f: &Forest<U64Map>, op: &str, ta: Root, tb: Root) {
    f.retain(ta);
    let out = match op {
        "union" => {
            f.retain(tb);
            f.union(ta, tb)
        }
        "difference" => {
            f.retain(tb);
            f.difference(ta, tb)
        }
        "filter" => f.filter(ta, |k, _| k % 2 == 0),
        _ => unreachable!(),
    };
    f.release(out);
}

fn main() {
    let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sizes: Vec<u64> = std::env::var("MVCC_BULK_SIZES")
        .ok()
        .map(|s| s.split(',').filter_map(|v| v.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| {
            let mut v = vec![10_000, 100_000, 1_000_000];
            if env_u64("MVCC_BULK_FULL", 0) == 1 {
                v.push(10_000_000);
            }
            v
        });
    let mut workers: Vec<usize> = vec![1, 2, 4, nproc];
    workers.sort_unstable();
    workers.dedup();
    let cutoff = env_u64("MVCC_PAR_CUTOFF", 2048);
    let ops = ["union", "difference", "filter"];

    println!("bulk ops: sizes {sizes:?}, workers {workers:?}, nproc {nproc}, cutoff {cutoff}");

    // results[op][size][workers] -> OpResult
    let mut jw = JsonWriter::bench("parallel_bulk_ops");
    jw.field_u64("host_threads", nproc as u64);
    jw.field_u64("par_cutoff", cutoff);
    jw.field_raw("workers", &format!("{workers:?}"));
    jw.field_raw("sizes", &format!("{sizes:?}"));
    jw.begin_object("ops");

    for op in ops.iter() {
        println!("== {op} ==");
        jw.begin_object(op);
        for &n in sizes.iter() {
            // Means on shared/1-core hosts are noisy; enough reps (and
            // the recorded min) keep the seq-vs-par comparison honest.
            let reps = (5_000_000 / n).clamp(5, 20) as usize;
            let (av, bv) = union_inputs(n);
            jw.begin_object(&n.to_string());
            let mut seq_mean = 0u128;
            let mut seq_min = 0u128;
            for &w in workers.iter() {
                pool::set_pool_threads(w);
                // Build inside the pool config so build_sorted's own
                // parallelism does not leak across configurations.
                let f: Forest<U64Map> = Forest::new();
                let ta = f.build_sorted(&av);
                let tb = f.build_sorted(&bv);
                run_op(&f, op, ta, tb); // warmup: chunks + freelists hot
                let r = time_reps(reps, || run_op(&f, op, ta, tb));
                if w == 1 {
                    seq_mean = r.mean_ns;
                    seq_min = r.min_ns;
                }
                let rel = if seq_mean > 0 {
                    r.mean_ns as f64 / seq_mean as f64
                } else {
                    1.0
                };
                println!(
                    "  n={n:<9} w={w:<3} mean {:>12} ns  min {:>12} ns  ({reps} reps, {:.2}x of seq)",
                    r.mean_ns, r.min_ns, rel
                );
                jw.begin_object(&format!("w{w}"));
                jw.field_u128("mean_ns", r.mean_ns);
                jw.field_u128("min_ns", r.min_ns);
                jw.field_u64("reps", r.reps as u64);
                jw.end_object();
                f.release(ta);
                f.release(tb);
                assert_eq!(f.arena().live(), 0, "bench leaked tree nodes");
                // The acceptance gate from ISSUE 4: on a single-core
                // host the parallel rows measure pure fork overhead,
                // which must stay under 10% for union at 10^6 keys.
                // Compared on min-of-reps (means absorb scheduler noise
                // on shared runners; a real overhead regression shifts
                // the min too).
                if nproc == 1 && *op == "union" && n >= 1_000_000 && w > 1 && seq_min > 0 {
                    let rel_min = r.min_ns as f64 / seq_min as f64;
                    assert!(
                        rel_min < 1.10,
                        "parallel union regressed {rel_min:.2}x vs sequential \
                         at n={n}, w={w} on a 1-core host (gate: < 1.10x)"
                    );
                }
            }
            jw.end_object();
        }
        jw.end_object();
    }
    pool::set_pool_threads(0);

    json::write_repo_root("BENCH_bulk.json", &jw.finish());
}
