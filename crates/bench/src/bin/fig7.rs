//! Regenerates **Figure 7**: YCSB A/B/C throughput of our batched
//! functional tree versus the concurrent baselines.
//!
//! ```sh
//! MVCC_KEYSPACE=100000 MVCC_SECS=2 MVCC_READERS=3 \
//!     cargo run --release -p mvcc-bench --bin fig7
//! ```

use mvcc_baselines::{BPlusTree, CoarseMap, ConcurrentMap, LazySkipList, LockFreeBst};
use mvcc_bench::ycsb::{run_baseline, run_ours};
use mvcc_bench::{env_u64, reader_threads, run_secs};
use mvcc_workloads::ycsb::Mix;

fn main() {
    let keyspace = env_u64("MVCC_KEYSPACE", 100_000);
    let threads = reader_threads() + 1;
    let secs = run_secs();

    println!("Figure 7 — YCSB throughput (Zipfian θ=0.99), {threads} worker threads");
    println!("keyspace = {keyspace}, {secs}s per cell (paper: 5·10^7 keys, 10^7 txns)");
    println!();
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "structure", "A (50/50)", "B (95/5)", "C (100/0)"
    );
    println!("{}", "-".repeat(66));

    // Ours: batched functional tree with snapshot reads.
    let mut ours = Vec::new();
    for mix in Mix::ALL {
        ours.push(run_ours(mix, keyspace, threads, secs));
        eprintln!("  measured Ours {}", mix.name());
    }
    println!(
        "{:<26} {:>12.3} {:>12.3} {:>12.3}",
        "Ours (batched ftree)", ours[0], ours[1], ours[2]
    );

    let baselines: Vec<Box<dyn Fn() -> Box<dyn ConcurrentMap>>> = vec![
        Box::new(|| Box::new(LazySkipList::new())),
        Box::new(|| Box::new(BPlusTree::new())),
        Box::new(|| Box::new(LockFreeBst::new())),
        Box::new(|| Box::new(CoarseMap::new())),
    ];
    for make in &baselines {
        let mut cells = Vec::new();
        let name = make().name();
        for mix in Mix::ALL {
            let map = make(); // fresh structure per cell
            cells.push(run_baseline(&*map, mix, keyspace, threads, secs));
            eprintln!("  measured {name} {}", mix.name());
        }
        println!(
            "{:<26} {:>12.3} {:>12.3} {:>12.3}",
            name, cells[0], cells[1], cells[2]
        );
    }
    println!();
    println!("cells are Mop/s; higher is better");
}
