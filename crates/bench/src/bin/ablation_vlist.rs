//! **Ablation: functional trees vs version lists** — measuring the
//! paper's motivating claim (§1):
//!
//! > "The problem is that these lists need to be traversed to find the
//! > relevant version, which causes extra delay for reads. The delay is
//! > not just a constant, but can be asymptotic in the number of
//! > versions."
//!
//! One writer streams single-key updates; fast readers run range-sum
//! queries; one **laggard reader** repeatedly pins a snapshot for a
//! configurable duration. Under the paper's system (functional tree +
//! PSWF) the laggard costs nothing but the memory of one extra version —
//! reader work per query is unchanged. Under the version-list design
//! (`mvcc-vlist`), the laggard holds the vacuum horizon back, chains
//! grow, and *every* reader pays one hop per uncollected version on
//! every key it touches.
//!
//! Expected shape: `hops/read` and the ftree/vlist throughput gap grow
//! with the pin duration; the functional tree's reader throughput stays
//! flat.
//!
//! ```sh
//! cargo run --release -p mvcc-bench --bin ablation_vlist
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mvcc_bench::{env_u64, reader_threads, run_secs};
use mvcc_core::Database;
use mvcc_ftree::SumU64Map;
use mvcc_vlist::VersionListMap;

const WINDOW: u64 = 64;

struct Point {
    reads: u64,
    writes: u64,
    /// Worst chain walk any snapshot reader paid for one lookup.
    max_laggard_hops: u64,
    max_live_versions: u64,
}

/// Common workload shape: `readers` query threads over `[0, keys)`,
/// one writer, one laggard pinning for `pin` per iteration.
fn run_vlist(keys: u64, readers: usize, pin: Duration, secs: f64) -> Point {
    let m = Arc::new(VersionListMap::new(readers + 2));
    for k in 0..keys {
        m.insert(k, k);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let max_live = Arc::new(AtomicU64::new(0));
    let max_hops = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Writer: single-key updates, vacuum every 64 commits.
        {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            let max_live = Arc::clone(&max_live);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    m.insert(i % keys, i);
                    i += 1;
                    if i.is_multiple_of(64) {
                        max_live.fetch_max(m.stats().live_versions, Ordering::Relaxed);
                        m.vacuum();
                    }
                }
                writes.store(i, Ordering::Relaxed);
            });
        }
        // Fast readers (pids 1..=readers).
        for r in 0..readers {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            s.spawn(move || {
                let mut n = 0u64;
                let mut lo = (r as u64 * 37) % (keys - WINDOW);
                while !stop.load(Ordering::Relaxed) {
                    let t = m.begin_read(r + 1);
                    std::hint::black_box(m.range_sum(&t, lo, lo + WINDOW));
                    m.end_read(t);
                    lo = (lo + 61) % (keys - WINDOW);
                    n += 1;
                }
                reads.fetch_add(n, Ordering::Relaxed);
            });
        }
        // Laggard (pid readers+1): pin a snapshot for `pin` each round,
        // re-reading its key and recording the chain hops each lookup
        // pays as newer versions pile up above its snapshot.
        {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            let max_hops = Arc::clone(&max_hops);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t = m.begin_read(readers + 1);
                    let deadline = Instant::now() + pin;
                    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                        let (_, hops) = m.get_at_counted(&t, 0);
                        max_hops.fetch_max(hops, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                    m.end_read(t);
                }
            });
        }
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    });

    Point {
        reads: reads.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        max_laggard_hops: max_hops.load(Ordering::Relaxed),
        max_live_versions: max_live.load(Ordering::Relaxed),
    }
}

fn run_ftree(keys: u64, readers: usize, pin: Duration, secs: f64) -> Point {
    let db: Arc<Database<SumU64Map>> = Arc::new(Database::new(readers + 2));
    {
        let mut s = db.session().expect("fresh pool");
        s.write(|txn| {
            let init: Vec<(u64, u64)> = (0..keys).map(|k| (k, k)).collect();
            txn.multi_insert(init, |_o, v| *v);
        });
    }
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let max_live = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            let max_live = Arc::clone(&max_live);
            s.spawn(move || {
                let mut session = db.session().expect("writer pid");
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    session.insert(i % keys, i);
                    i += 1;
                    if i.is_multiple_of(64) {
                        max_live.fetch_max(db.live_versions(), Ordering::Relaxed);
                    }
                }
                writes.store(i, Ordering::Relaxed);
            });
        }
        for r in 0..readers {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            s.spawn(move || {
                let mut session = db.session().expect("reader pid");
                let mut n = 0u64;
                let mut lo = (r as u64 * 37) % (keys - WINDOW);
                while !stop.load(Ordering::Relaxed) {
                    let sum = session.read(|snap| snap.aug_range(&lo, &(lo + WINDOW - 1)));
                    std::hint::black_box(sum);
                    lo = (lo + 61) % (keys - WINDOW);
                    n += 1;
                }
                reads.fetch_add(n, Ordering::Relaxed);
            });
        }
        {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut session = db.session().expect("laggard pid");
                while !stop.load(Ordering::Relaxed) {
                    let guard = session.begin_read();
                    let deadline = Instant::now() + pin;
                    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                        std::hint::black_box(guard.snapshot().get(&0));
                        std::thread::yield_now();
                    }
                    drop(guard);
                }
            });
        }
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    });

    Point {
        reads: reads.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        max_laggard_hops: 1, // version resolution is one root dereference
        max_live_versions: max_live.load(Ordering::Relaxed),
    }
}

fn main() {
    let keys = env_u64("MVCC_VLIST_KEYS", 1024);
    let readers = reader_threads();
    let secs = run_secs();
    let pins_ms = [0u64, 10, 50, 200];

    println!("Ablation — version lists vs functional trees under a laggard reader");
    println!(
        "({} keys, {} fast readers + 1 laggard + 1 writer, {}s per point, window {})",
        keys, readers, secs, WINDOW
    );
    println!();
    println!(
        "{:>8} {:>10} | {:>10} {:>10} {:>12} {:>9}",
        "pin(ms)", "system", "reads/s", "writes/s", "laggard hops", "max vers"
    );
    println!("{}", "-".repeat(72));
    for pin_ms in pins_ms {
        let pin = Duration::from_millis(pin_ms);
        let v = run_vlist(keys, readers, pin, secs);
        let f = run_ftree(keys, readers, pin, secs);
        println!(
            "{:>8} {:>10} | {:>10.0} {:>10.0} {:>12} {:>9}",
            pin_ms,
            "vlist",
            v.reads as f64 / secs,
            v.writes as f64 / secs,
            v.max_laggard_hops,
            v.max_live_versions
        );
        println!(
            "{:>8} {:>10} | {:>10.0} {:>10.0} {:>12} {:>9}",
            pin_ms,
            "ftree",
            f.reads as f64 / secs,
            f.writes as f64 / secs,
            f.max_laggard_hops,
            f.max_live_versions
        );
    }
    println!();
    println!("Shape check: vlist laggard hops grow with the pin (delay ∝ versions);");
    println!("ftree reader throughput is flat (delay-free readers, Theorem 5.4).");
}
