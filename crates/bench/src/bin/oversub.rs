//! Session-pool oversubscription benchmark: acquire-wait tail latency
//! when client threads outnumber process ids 4×.
//!
//! Two configurations, both closed-loop (each client re-acquires as soon
//! as its previous lease drops) plus one open-loop pass:
//!
//! * `single_pool` — one database with `P` pids, `4P` clients hammering
//!   `SessionPool::acquire`: the pure queueing cost of oversubscription;
//! * `router_NxP` — the same client count spread by key over an `N`-shard
//!   `Router` (aggregate capacity `N×P`): what sharding buys back;
//! * `single_pool_open` — the single pool again under paced (open-loop)
//!   arrivals, where waits compound instead of self-throttling.
//!
//! Results print per configuration and land in `BENCH_oversub.json` at
//! the repo root so successive PRs accumulate the perf trajectory
//! (companion to `BENCH_arena.json`).
//!
//! ```sh
//! MVCC_PIDS=4 MVCC_SHARDS=4 MVCC_ACQUIRES=200 \
//!     cargo run --release -p mvcc-bench --bin oversub
//! ```

use std::time::Duration;

use mvcc_bench::env_u64;
use mvcc_bench::json::{self, JsonWriter};
use mvcc_core::{Database, Router};
use mvcc_ftree::U64Map;
use mvcc_workloads::oversub::{run_oversubscribed, LatencySummary, OversubReport};

/// Per-lease work: a handful of transactions, enough that leases have
/// a measurable hold time without dominating the run.
const TXNS_PER_LEASE: usize = 8;

fn report_json(name: &str, r: &OversubReport, jw: &mut JsonWriter) {
    let w: &LatencySummary = &r.wait;
    jw.begin_object(name);
    jw.field_u64("clients", r.clients as u64);
    jw.field_u64("acquires", r.acquires);
    jw.field_u128("elapsed_ms", r.elapsed.as_millis());
    jw.begin_object("wait_ns");
    jw.field_u64("count", w.count);
    jw.field_u64("mean", w.mean_ns);
    jw.field_u64("p50", w.p50_ns);
    jw.field_u64("p90", w.p90_ns);
    jw.field_u64("p99", w.p99_ns);
    jw.field_u64("p999", w.p999_ns);
    jw.field_u64("max", w.max_ns);
    jw.end_object();
    jw.end_object();
}

fn main() {
    let pids = env_u64("MVCC_PIDS", 4) as usize;
    let shards = env_u64("MVCC_SHARDS", 4) as usize;
    let acquires = env_u64("MVCC_ACQUIRES", 200) as usize;
    let clients = 4 * pids;

    println!(
        "oversubscription: {clients} clients over P = {pids} pids (4x), {acquires} acquires/client"
    );

    // --- single pool, closed loop ---------------------------------------
    let db: Database<U64Map> = Database::new(pids);
    let pool = db.pool();
    let single = run_oversubscribed(
        clients,
        acquires,
        None,
        |_c| pool.acquire(),
        |s, c, i| {
            for t in 0..TXNS_PER_LEASE {
                let k = (c * acquires + i + t) as u64;
                s.insert(k, k);
                s.remove(&k);
            }
        },
    );
    assert_eq!(db.sessions_leased(), 0, "all pids returned");
    println!("  single_pool      wait {}", single.wait);

    // --- router, closed loop --------------------------------------------
    let router: Router<U64Map> = Router::new(shards, pids);
    let routed = run_oversubscribed(
        clients,
        acquires,
        None,
        |c| router.session(&c),
        |s, c, i| {
            for t in 0..TXNS_PER_LEASE {
                let k = (c * acquires + i + t) as u64;
                s.insert(k, k);
                s.remove(&k);
            }
        },
    );
    assert_eq!(router.sessions_leased(), 0, "all shard pids returned");
    println!("  router_{shards}x{pids}       wait {}", routed.wait);

    // --- single pool, open loop -----------------------------------------
    let db_open: Database<U64Map> = Database::new(pids);
    let pool_open = db_open.pool();
    let open = run_oversubscribed(
        clients,
        acquires,
        Some(Duration::from_micros(200)),
        |_c| pool_open.acquire(),
        |s, c, i| {
            for t in 0..TXNS_PER_LEASE {
                let k = (c * acquires + i + t) as u64;
                s.insert(k, k);
                s.remove(&k);
            }
        },
    );
    println!("  single_pool_open wait {}", open.wait);

    let mut jw = JsonWriter::bench("session_pool_oversubscription");
    jw.field_u64("pids", pids as u64);
    jw.field_u64("shards", shards as u64);
    jw.field_u64("clients", clients as u64);
    jw.field_u64("acquires_per_client", acquires as u64);
    jw.field_u64("txns_per_lease", TXNS_PER_LEASE as u64);
    jw.field_u64(
        "host_threads",
        std::thread::available_parallelism().map_or(0, |n| n.get()) as u64,
    );
    jw.begin_object("configs");
    report_json("single_pool", &single, &mut jw);
    report_json(&format!("router_{shards}x{pids}"), &routed, &mut jw);
    report_json("single_pool_open", &open, &mut jw);
    jw.end_object();

    json::write_repo_root("BENCH_oversub.json", &jw.finish());
}
