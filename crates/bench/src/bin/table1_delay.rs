//! Empirically validates **Table 1**'s asymptotic bounds:
//!
//! * `acquire` cost is flat in P (O(1));
//! * `set` and `release` grow linearly in P (O(P));
//! * read transactions are delay-free: per-lookup cost inside a
//!   transaction stays within a small constant of the raw tree search,
//!   independent of P.
//!
//! ```sh
//! cargo run --release -p mvcc-bench --bin table1_delay
//! ```

use mvcc_bench::env_u64;
use mvcc_bench::table1::{measure_read_delay, measure_vm_costs};

fn main() {
    let iters = env_u64("MVCC_ITERS", 200_000);
    let ps = [1usize, 2, 4, 8, 16, 32, 64, 128];

    println!("Table 1 (empirical) — PSWF op cost vs process count P");
    println!("{iters} acquire/set/release rounds per row, single driver thread");
    println!();
    println!(
        "{:>5} {:>13} {:>13} {:>13}",
        "P", "acquire ns", "set ns", "release ns"
    );
    println!("{}", "-".repeat(48));
    let mut first_acquire = None;
    for p in ps {
        let c = measure_vm_costs(p, iters);
        first_acquire.get_or_insert(c.acquire_ns);
        println!(
            "{:>5} {:>13.1} {:>13.1} {:>13.1}",
            c.p, c.acquire_ns, c.set_ns, c.release_ns
        );
    }
    println!();
    println!("expected: acquire flat (O(1)); set/release linear in P (O(P))");
    println!();

    let n = env_u64("MVCC_N", 100_000);
    println!("Read-transaction delay factor (Theorem 5.4: delay-free)");
    println!("n = {n}, 100 lookups per transaction");
    println!();
    println!(
        "{:>5} {:>13} {:>13} {:>8}",
        "P", "txn ns/get", "raw ns/get", "factor"
    );
    println!("{}", "-".repeat(44));
    for p in [1usize, 8, 64] {
        let d = measure_read_delay(p, n, 100, 2_000);
        println!(
            "{:>5} {:>13.1} {:>13.1} {:>8.3}",
            d.p,
            d.txn_ns,
            d.raw_ns,
            d.factor()
        );
    }
    println!();
    println!("expected: factor ≈ 1 and independent of P");
}
