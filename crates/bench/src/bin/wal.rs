//! Durability cost and recovery scaling: what the WAL charges per commit
//! under each fsync policy, and how recovery time grows with the length
//! of the un-checkpointed WAL tail.
//!
//! Three experiment families, all into `BENCH_wal.json`:
//!
//! * `modes` — a single durable writer committing fixed-size batches of
//!   Zipfian updates against real files for `MVCC_SECS`, once per
//!   `Durability::{Off, EveryN(8), Always}`. Reports commits/s, ops/s
//!   and the per-commit latency distribution. `off` runs the unchanged
//!   in-memory commit path (the no-regression baseline the acceptance
//!   criteria cite); `always` pays one fsync per commit, so the gap
//!   between the three rows *is* the durability price list.
//! * `group_commit` — 1/2/4/8 concurrent `Durability::Always` writers,
//!   once with each writer paying its own fsync
//!   ([`GroupCommit::Serial`], the `always` mode's multi-writer shape)
//!   and once with overlapping commits coalescing into shared fsyncs
//!   ([`GroupCommit::Leader`]). The leader rows should match serial at
//!   one writer (nothing overlaps) and pull ahead as writers are added,
//!   with `mean_group` telling how many commits each fsync amortized.
//! * `recovery` — fill a WAL tail of `N` batches (no checkpoint), then
//!   time `DurableDatabase::recover`; repeat with a checkpoint taken
//!   right before the tail so only the tail replays. Recovery must scale
//!   with the tail, not the database: the checkpointed rows stay flat as
//!   the pre-checkpoint history grows.
//! * `bounded_queue` — one writer calling `write_acked` flat out
//!   against a [`GroupCommit::Flusher`] thread, once with the commit
//!   queue unbounded and once capped at a small watermark. The bounded
//!   row rate-matches the writer to the disk (its `blocked_enqueues` /
//!   `blocked_ms` show the backpressure actually engaging) instead of
//!   letting unfsynced batches pile up in memory.
//! * `maintenance` — the same time-boxed writer, once bare and once
//!   with the background supervisor
//!   ([`DurableDatabase::start_maintenance`]) checkpointing at the
//!   `MVCC_CKPT_BYTES` wal-bytes threshold. The unsupervised row's WAL
//!   footprint and recovery time grow linearly with the run; the
//!   supervised row's stay bounded near the threshold — that bound is
//!   the row pair's whole point.
//!
//! Knobs: `MVCC_SECS` (per-mode measurement window), `MVCC_KEYSPACE`
//! (Zipfian key space), `MVCC_WAL_BATCH` (ops per commit, default 16),
//! `MVCC_WAL_TAIL` (longest recovery tail, default 4000),
//! `MVCC_WAL_BOUND` (bounded-queue watermark, default 4 batches),
//! `MVCC_CKPT_BYTES` (supervisor checkpoint threshold, default 256 KiB).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mvcc_bench::json::{self, JsonWriter};
use mvcc_bench::{env_u64, run_secs};
use mvcc_core::{
    Durability, DurableConfig, DurableDatabase, DurableSession, GroupCommit, MaintenancePolicy,
};
use mvcc_ftree::U64Map;
use mvcc_workloads::{run_for_collect, LatencySummary, ScrambledZipf};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn mode_name(d: Durability) -> &'static str {
    match d {
        Durability::Off => "off",
        Durability::EveryN(_) => "every8",
        Durability::Always => "always",
    }
}

/// A scratch directory under the system temp dir, fresh per call.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mvcc-bench-wal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf, durability: Durability) -> DurableDatabase<U64Map> {
    match DurableDatabase::recover(dir, 2, DurableConfig::default().with_durability(durability)) {
        Ok(db) => db,
        Err(e) => panic!("open {}: {e}", dir.display()),
    }
}

/// One time-boxed single-writer run; returns (commits/s, ops/s, latency).
fn measure_mode(
    durability: Durability,
    secs: f64,
    batch: u64,
    zipf: &ScrambledZipf,
) -> (f64, f64, LatencySummary) {
    let dir = scratch_dir(mode_name(durability));
    let db = open(&dir, durability);
    let (report, states) = run_for_collect(
        1,
        Duration::from_secs_f64(secs),
        |_| {
            (
                db.session().expect("fresh pool has a free lease"),
                SmallRng::seed_from_u64(42),
                Vec::<u64>::new(),
            )
        },
        |_, iter, (session, rng, samples): &mut (DurableSession<'_, U64Map>, _, _)| {
            let t0 = Instant::now();
            session
                .write(|txn| {
                    for i in 0..batch {
                        txn.insert(zipf.sample(rng), iter * batch + i);
                    }
                })
                .expect("durable commit");
            samples.push(t0.elapsed().as_nanos() as u64);
            1
        },
    );
    let commits_per_sec = report.ops_per_sec();
    let mut samples = states.into_iter().next().map(|(_, _, s)| s).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (
        commits_per_sec,
        commits_per_sec * batch as f64,
        LatencySummary::from_ns(&mut samples),
    )
}

fn group_name(g: GroupCommit) -> &'static str {
    match g {
        GroupCommit::Serial => "serial",
        GroupCommit::Leader => "leader",
        GroupCommit::Flusher { .. } => "flusher",
    }
}

/// One time-boxed multi-writer `Durability::Always` run; returns total
/// commits/s, the merged per-commit latency across writers, and the
/// mean records-per-fsync the WAL achieved.
fn measure_group(
    writers: usize,
    group: GroupCommit,
    secs: f64,
    batch: u64,
    zipf: &ScrambledZipf,
) -> (f64, LatencySummary, f64) {
    let dir = scratch_dir(&format!("group-{writers}-{}", group_name(group)));
    let db: DurableDatabase<U64Map> = DurableDatabase::recover(
        &dir,
        writers,
        DurableConfig::default().with_group_commit(group),
    )
    .unwrap_or_else(|e| panic!("open {}: {e}", dir.display()));
    let (report, states) = run_for_collect(
        writers,
        Duration::from_secs_f64(secs),
        |i| {
            (
                db.session().expect("pool sized to the writer count"),
                SmallRng::seed_from_u64(42 + i as u64),
                Vec::<u64>::new(),
            )
        },
        |_, iter, (session, rng, samples): &mut (DurableSession<'_, U64Map>, _, _)| {
            let t0 = Instant::now();
            session
                .write(|txn| {
                    for i in 0..batch {
                        txn.insert(zipf.sample(rng), iter * batch + i);
                    }
                })
                .expect("durable commit");
            samples.push(t0.elapsed().as_nanos() as u64);
            1
        },
    );
    let mean_group = db.durable_stats().mean_group();
    let mut samples: Vec<u64> = states.into_iter().flat_map(|(_, _, s)| s).collect();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    (
        report.ops_per_sec(),
        LatencySummary::from_ns(&mut samples),
        mean_group,
    )
}

/// One time-boxed saturation run: a single writer calling `write_acked`
/// flat out against a `Flusher` group-commit thread, with the commit
/// queue either unbounded (`bound == 0`) or capped at `bound` batches.
/// Returns (commits/s, final durable stats).
fn measure_saturation(
    bound: usize,
    secs: f64,
    batch: u64,
    zipf: &ScrambledZipf,
) -> (f64, mvcc_core::DurableStats) {
    let dir = scratch_dir(&format!("sat-{bound}"));
    let mut cfg = DurableConfig::default()
        .with_group_commit(GroupCommit::Flusher {
            max_coalesce: Duration::from_micros(200),
        })
        .with_flush_slo(Duration::from_millis(2));
    if bound > 0 {
        cfg = cfg.with_max_pending_batches(bound);
    }
    let db: DurableDatabase<U64Map> = DurableDatabase::recover(&dir, 2, cfg)
        .unwrap_or_else(|e| panic!("open {}: {e}", dir.display()));
    let (report, _) = run_for_collect(
        1,
        Duration::from_secs_f64(secs),
        |_| {
            (
                db.session().expect("fresh pool has a free lease"),
                SmallRng::seed_from_u64(42),
            )
        },
        |_, iter, (session, rng): &mut (DurableSession<'_, U64Map>, _)| {
            // The ack is dropped: the bench measures the enqueue path
            // and the queue bound, not fsync completion latency (the
            // final `db.sync()` drains everything before stats).
            let _ack = session
                .write_acked(|txn| {
                    for i in 0..batch {
                        txn.insert(zipf.sample(rng), iter * batch + i);
                    }
                })
                .expect("acked durable commit");
            1
        },
    );
    db.sync().expect("drain the commit queue");
    let stats = db.durable_stats();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    (report.ops_per_sec(), stats)
}

/// One time-boxed run of the same single writer, with or without the
/// background maintenance supervisor bounding the WAL at `ckpt_bytes`.
/// Returns (commits/s, final wal bytes, checkpoints taken, batches
/// replayed on recovery, recover_ms).
fn measure_maintenance(
    supervised: bool,
    ckpt_bytes: u64,
    secs: f64,
    batch: u64,
    zipf: &ScrambledZipf,
) -> (f64, u64, u64, u64, f64) {
    let dir = scratch_dir(&format!("maint-{}", if supervised { "on" } else { "off" }));
    // EveryN keeps the fill disk-bound on frames, not fsyncs, so the
    // supervised/unsupervised rows see the same write pressure. Segments
    // roll well under the checkpoint threshold — only *sealed* segments
    // can be truncated, so rotation bounds what the supervisor reclaims.
    let db: Arc<DurableDatabase<U64Map>> = Arc::new(
        DurableDatabase::recover(
            &dir,
            2,
            DurableConfig {
                segment_bytes: (ckpt_bytes / 4).max(4 << 10),
                ..DurableConfig::default().with_durability(Durability::EveryN(8))
            },
        )
        .unwrap_or_else(|e| panic!("open {}: {e}", dir.display())),
    );
    let handle = supervised.then(|| {
        db.start_maintenance(MaintenancePolicy::default().with_wal_bytes_threshold(ckpt_bytes))
    });
    let (report, _) = run_for_collect(
        1,
        Duration::from_secs_f64(secs),
        |_| {
            (
                db.session().expect("fresh pool has a free lease"),
                SmallRng::seed_from_u64(42),
            )
        },
        |_, iter, (session, rng): &mut (DurableSession<'_, U64Map>, _)| {
            session
                .write(|txn| {
                    for i in 0..batch {
                        txn.insert(zipf.sample(rng), iter * batch + i);
                    }
                })
                .expect("durable commit");
            1
        },
    );
    if let Some(handle) = handle {
        handle.shutdown();
    }
    db.sync().expect("final sync");
    let wal_bytes = db.wal_bytes();
    let checkpoints = db.maintenance_stats().checkpoints;
    drop(db);
    let t0 = Instant::now();
    let db: DurableDatabase<U64Map> = DurableDatabase::recover(&dir, 2, DurableConfig::default())
        .unwrap_or_else(|e| panic!("recover {}: {e}", dir.display()));
    let elapsed = t0.elapsed();
    let replayed = db.recovery().replayed as u64;
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    (
        report.ops_per_sec(),
        wal_bytes,
        checkpoints,
        replayed,
        elapsed.as_secs_f64() * 1e3,
    )
}

/// Fill `history` then (optionally) checkpoint, then fill `tail` more
/// commits, then time recovery. Returns (replayed, recover_ms).
fn measure_recovery(history: u64, tail: u64, checkpoint: bool, batch: u64) -> (u64, f64) {
    let dir = scratch_dir(&format!(
        "rec-{history}-{tail}-{}",
        if checkpoint { "ck" } else { "raw" }
    ));
    // EveryN fill: every frame lands, sync cost stays off the fill's
    // critical path — the bench times recovery, not the fill.
    {
        let db = open(&dir, Durability::EveryN(64));
        let mut session = db.session().expect("fresh pool has a free lease");
        let mut commit = |i: u64| {
            session
                .write(|txn| {
                    for j in 0..batch {
                        txn.insert((i * batch + j) % 100_000, i);
                    }
                })
                .expect("durable commit");
        };
        for i in 0..history {
            commit(i);
        }
        if checkpoint {
            db.checkpoint().expect("checkpoint");
        }
        for i in history..history + tail {
            commit(i);
        }
        db.sync().expect("final sync");
    }
    let t0 = Instant::now();
    let db: DurableDatabase<U64Map> = DurableDatabase::recover(&dir, 2, DurableConfig::default())
        .unwrap_or_else(|e| {
            panic!("recover {}: {e}", dir.display());
        });
    let elapsed = t0.elapsed();
    let replayed = db.recovery().replayed as u64;
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    (replayed, elapsed.as_secs_f64() * 1e3)
}

fn main() {
    let secs = run_secs() / 2.0;
    let batch = env_u64("MVCC_WAL_BATCH", 16);
    let keyspace = env_u64("MVCC_KEYSPACE", 100_000);
    let tail_max = env_u64("MVCC_WAL_TAIL", 4_000);
    let zipf = ScrambledZipf::ycsb(keyspace);
    let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "wal: {secs:.2}s per mode, {batch} ops/commit, keyspace {keyspace}, \
         recovery tails up to {tail_max}"
    );

    let mut jw = JsonWriter::bench("wal_durability");
    jw.field_u64("host_threads", nproc as u64);
    jw.field_f64("secs_per_mode", secs);
    jw.field_u64("ops_per_commit", batch);
    jw.field_u64("keyspace", keyspace);
    jw.field_str(
        "note",
        "single durable writer against real files; off = unchanged in-memory \
         commit path (no-regression baseline), every8 = group commit (fsync \
         every 8th), always = fsync per commit; recovery rows time \
         DurableDatabase::recover with the given un-checkpointed tail — \
         checkpointed rows replay only the tail, so they stay flat as the \
         pre-checkpoint history grows; group_commit rows run N concurrent \
         Always writers with per-commit fsyncs (serial) vs coalesced group \
         fsyncs (leader)",
    );

    jw.begin_object("modes");
    for durability in [Durability::Off, Durability::EveryN(8), Durability::Always] {
        let (commits, ops, latency) = measure_mode(durability, secs, batch, &zipf);
        println!(
            "  {:<7} {commits:>9.0} commits/s  {ops:>10.0} ops/s  p50 {:>8} ns  p99 {:>8} ns",
            mode_name(durability),
            latency.p50_ns,
            latency.p99_ns
        );
        jw.begin_object(mode_name(durability));
        jw.field_f64("commits_per_sec", commits);
        jw.field_f64("ops_per_sec", ops);
        jw.begin_object("commit_latency");
        jw.field_u64("count", latency.count);
        jw.field_u64("mean_ns", latency.mean_ns);
        jw.field_u64("p50_ns", latency.p50_ns);
        jw.field_u64("p99_ns", latency.p99_ns);
        jw.field_u64("max_ns", latency.max_ns);
        jw.end_object();
        jw.end_object();
    }
    jw.end_object();

    jw.begin_object("group_commit");
    for writers in [1usize, 2, 4, 8] {
        jw.begin_object(&format!("writers_{writers}"));
        for group in [GroupCommit::Serial, GroupCommit::Leader] {
            let (commits, latency, mean_group) = measure_group(writers, group, secs, batch, &zipf);
            println!(
                "  {writers} writer(s) {:<7} {commits:>9.0} commits/s  p50 {:>8} ns  \
                 p99 {:>8} ns  mean group {mean_group:.2}",
                group_name(group),
                latency.p50_ns,
                latency.p99_ns
            );
            jw.begin_object(group_name(group));
            jw.field_f64("commits_per_sec", commits);
            jw.field_f64("mean_records_per_fsync", mean_group);
            jw.begin_object("commit_latency");
            jw.field_u64("count", latency.count);
            jw.field_u64("mean_ns", latency.mean_ns);
            jw.field_u64("p50_ns", latency.p50_ns);
            jw.field_u64("p99_ns", latency.p99_ns);
            jw.field_u64("p999_ns", latency.p999_ns);
            jw.field_u64("max_ns", latency.max_ns);
            jw.end_object();
            jw.end_object();
        }
        jw.end_object();
    }
    jw.end_object();

    jw.begin_object("recovery");
    for tail in [tail_max / 40, tail_max / 4, tail_max] {
        let tail = tail.max(1);
        let (replayed, ms) = measure_recovery(0, tail, false, batch);
        println!("  tail {tail:>6} (raw)          replayed {replayed:>6}  {ms:>8.2} ms");
        jw.begin_object(&format!("tail_{tail}"));
        jw.field_u64("batches_replayed", replayed);
        jw.field_f64("recover_ms", ms);
        jw.end_object();

        // Same total history, but checkpointed before the tail: recovery
        // cost should track the tail length, not the full history.
        let (replayed, ms) = measure_recovery(tail_max - tail, tail, true, batch);
        println!("  tail {tail:>6} (checkpointed) replayed {replayed:>6}  {ms:>8.2} ms");
        jw.begin_object(&format!("checkpointed_tail_{tail}"));
        jw.field_u64("history_batches", tail_max - tail);
        jw.field_u64("batches_replayed", replayed);
        jw.field_f64("recover_ms", ms);
        jw.end_object();
    }
    jw.end_object();

    let bound = env_u64("MVCC_WAL_BOUND", 4) as usize;
    jw.begin_object("bounded_queue");
    for (name, b) in [("unbounded", 0usize), ("bounded", bound)] {
        let (commits, stats) = measure_saturation(b, secs, batch, &zipf);
        println!(
            "  flusher {name:<9} {commits:>9.0} commits/s  blocked {:>6} enqueues \
             ({:>6.1} ms)  max flush {:>8.1} us  slo misses {}",
            stats.blocked_enqueues,
            stats.blocked_ns as f64 / 1e6,
            stats.max_flush_ns as f64 / 1e3,
            stats.slo_misses,
        );
        jw.begin_object(name);
        jw.field_u64("max_pending_batches", b as u64);
        jw.field_f64("commits_per_sec", commits);
        jw.field_u64("batches_flushed", stats.batches_flushed);
        jw.field_u64("groups_flushed", stats.groups_flushed);
        jw.field_u64("blocked_enqueues", stats.blocked_enqueues);
        jw.field_f64("blocked_ms", stats.blocked_ns as f64 / 1e6);
        jw.field_u64("max_flush_ns", stats.max_flush_ns);
        jw.field_u64("slo_misses", stats.slo_misses);
        jw.end_object();
    }
    jw.end_object();

    let ckpt_bytes = env_u64("MVCC_CKPT_BYTES", 256 << 10);
    jw.begin_object("maintenance");
    for (name, supervised) in [("unsupervised", false), ("supervised", true)] {
        let (commits, wal_bytes, checkpoints, replayed, recover_ms) =
            measure_maintenance(supervised, ckpt_bytes, secs, batch, &zipf);
        println!(
            "  {name:<12} {commits:>9.0} commits/s  wal {:>9} B  {checkpoints:>3} ckpts  \
             recover {replayed:>6} batches in {recover_ms:>8.2} ms",
            wal_bytes,
        );
        jw.begin_object(name);
        jw.field_u64(
            "ckpt_bytes_threshold",
            if supervised { ckpt_bytes } else { 0 },
        );
        jw.field_f64("commits_per_sec", commits);
        jw.field_u64("final_wal_bytes", wal_bytes);
        jw.field_u64("checkpoints", checkpoints);
        jw.field_u64("batches_replayed", replayed);
        jw.field_f64("recover_ms", recover_ms);
        jw.end_object();
    }
    jw.end_object();

    json::write_repo_root("BENCH_wal.json", &jw.finish());
}
