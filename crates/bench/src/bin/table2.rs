//! Regenerates **Table 2**: query/update throughput and max live versions
//! for Base / PSWF / PSLF / HP / EP / RCU over (nq, nu) ∈ {10, 1000}².
//!
//! ```sh
//! MVCC_SECS=2 MVCC_N=100000 MVCC_READERS=3 \
//!     cargo run --release -p mvcc-bench --bin table2
//! ```

use mvcc_bench::rangesum::{run, RangeSumConfig};
use mvcc_bench::{env_u64, reader_threads, run_secs};
use mvcc_vm::VmKind;

fn main() {
    let n = env_u64("MVCC_N", 100_000);
    let readers = reader_threads();
    let secs = run_secs();
    let grid = [(10usize, 10usize), (10, 1000), (1000, 10), (1000, 1000)];

    println!("Table 2 — range-sum queries + batched insertions");
    println!("n = {n}, readers = {readers}, writer = 1, {secs}s per cell");
    println!("(paper: n = 10^8, 140 readers, 15s — shapes, not absolutes)");
    println!();

    let algos: Vec<(String, Option<VmKind>)> = std::iter::once(("Base".to_string(), None))
        .chain(VmKind::ALL.iter().map(|k| (k.name().to_string(), Some(*k))))
        .collect();

    let mut rows = Vec::new();
    for (nq, nu) in grid {
        for (name, kind) in &algos {
            let r = run(RangeSumConfig {
                n,
                nq,
                nu,
                readers,
                secs,
                kind: *kind,
            });
            rows.push((nq, nu, name.clone(), r));
            eprintln!("  measured {name} nq={nq} nu={nu}");
        }
    }

    println!(
        "{:>5} {:>5} | {:>6} {:>12} {:>13} {:>13}",
        "nq", "nu", "algo", "query Mop/s", "update Mop/s", "max versions"
    );
    println!("{}", "-".repeat(64));
    for (nq, nu, name, r) in &rows {
        let ver = if name == "Base" {
            "—".to_string()
        } else {
            format!("{}", r.max_live_versions)
        };
        println!(
            "{:>5} {:>5} | {:>6} {:>12.3} {:>13.4} {:>13}",
            nq, nu, name, r.query_mops, r.update_mops, ver
        );
    }
}
