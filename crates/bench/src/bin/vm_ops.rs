//! Per-operation Version Maintenance latency under both memory-ordering
//! regimes: the proof that the relaxed-ordering audit (`mvcc-vm`'s
//! `ordering` vocabulary) actually bought something.
//!
//! For every VM kind the harness measures `acquire` / `set` / `release`
//! latency in two scenarios:
//!
//! * `uncontended` — one thread, write cycles on pid 0 of a `P`-process
//!   instance (the scans in `set`/`release` still pay their O(P) walk);
//! * `contended_pN` — `N` threads, one pid each, all running write
//!   cycles (sets may legally abort; their latency is measured either
//!   way). On a 1-core host this is time-sliced rather than truly
//!   contended — fence cost is per-instruction, so the relaxed-vs-SC
//!   delta is still real (see the ROADMAP re-measure item for the
//!   multicore story).
//!
//! The ordering regime is a compile-time feature, so one binary can only
//! measure one side. Each run min-merges its regime's floors into a
//! partial file under `target/` (see [`save_partial`] for why
//! accumulation beats one-shot runs) and then assembles `BENCH_vm.json`
//! from every partial present, computing the per-op
//! `strict_min / relaxed_min` ratio when both sides exist (`>= 1.0`
//! means the relaxed build is no slower). CI runs both:
//!
//! ```sh
//! cargo run --release -p mvcc-bench --bin vm_ops
//! cargo run --release -p mvcc-bench --bin vm_ops --features strict-sc
//! ```
//!
//! Knobs: `MVCC_VM_ITERS` (cycles per batch, default 8000),
//! `MVCC_VM_BATCHES` (default 15; per-op value = mean within a batch,
//! min across batches — robust to scheduler noise on shared hosts),
//! `MVCC_VM_PROCS` (contended thread count, default 4).

use std::time::Instant;

use mvcc_bench::env_u64;
use mvcc_bench::json::{self, JsonWriter};
use mvcc_vm::{ordering, VersionMaintenance, VmKind};

/// Which regime this binary was compiled for.
const MODE: &str = if ordering::STRICT_SC {
    "strict_sc"
} else {
    "relaxed"
};
const OTHER_MODE: &str = if ordering::STRICT_SC {
    "relaxed"
} else {
    "strict_sc"
};

const OPS: [&str; 3] = ["acquire", "set", "release"];

/// Per-op accumulated result: batch-mean minimum and overall mean, ns.
#[derive(Clone, Copy, Default)]
struct OpLatency {
    min_ns: f64,
    mean_ns: f64,
}

/// One scenario's worth of measurements: `[acquire, set, release]`.
type Cycle = [OpLatency; 3];

/// Run `batches` batches of `iters` write cycles on `vm` as process
/// `k`, timing each op with `Instant` stamps. The per-batch value is
/// the mean over the batch; returned `min_ns` is the minimum batch mean
/// (the noise-robust figure `BENCH_bulk.json` also uses), `mean_ns` the
/// grand mean. `token_base` keeps concurrent writers' tokens distinct.
fn time_cycles(
    vm: &dyn VersionMaintenance,
    k: usize,
    iters: u64,
    batches: u64,
    token_base: u64,
) -> Cycle {
    let mut out = Vec::new();
    let mut token = token_base;
    let mut totals = [0u128; 3];
    let mut mins = [f64::INFINITY; 3];
    for _ in 0..batches {
        let mut batch = [0u128; 3];
        for _ in 0..iters {
            token += 1;
            let t0 = Instant::now();
            vm.acquire(k);
            let t1 = Instant::now();
            // A failed set is a legal (and measured) outcome under
            // contention; the VM contract still allows our release.
            let _ = vm.set(k, token);
            let t2 = Instant::now();
            vm.release(k, &mut out);
            let t3 = Instant::now();
            batch[0] += (t1 - t0).as_nanos();
            batch[1] += (t2 - t1).as_nanos();
            batch[2] += (t3 - t2).as_nanos();
            out.clear();
        }
        for (i, b) in batch.iter().enumerate() {
            let mean = *b as f64 / iters as f64;
            totals[i] += *b;
            if mean < mins[i] {
                mins[i] = mean;
            }
        }
    }
    let mut cycle = Cycle::default();
    for i in 0..3 {
        cycle[i] = OpLatency {
            min_ns: mins[i],
            mean_ns: totals[i] as f64 / (iters * batches) as f64,
        };
    }
    cycle
}

/// Back-to-back `Instant::now()` cost, so readers can discount the
/// timing overhead baked equally into every op figure.
fn timer_overhead_ns() -> f64 {
    let n = 100_000u32;
    let t0 = Instant::now();
    for _ in 0..n {
        std::hint::black_box(Instant::now());
    }
    t0.elapsed().as_nanos() as f64 / n as f64
}

fn partial_path(mode: &str) -> String {
    format!(
        "{}/../../target/vm_ops.{mode}.partial.tsv",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// `scenario\u{9}kind\u{9}op\u{9}min_ns\u{9}mean_ns` records plus one
/// `meta` line; flat so the assembling run needs no JSON parser.
///
/// Floors (`min_ns`) **accumulate**: if this mode already has a partial
/// on disk, each cell keeps the smaller of the old and new floors.
/// Host-state drift between two invocations (frequency scaling, a noisy
/// neighbour on a shared runner) is the dominant error at this
/// resolution; alternating relaxed/strict runs and min-merging
/// converges both modes to their true floors measured over the same
/// wall-clock span. `mean_ns` is *not* merged — it is always the latest
/// run's plain mean, as the JSON note states. Delete
/// `target/vm_ops.*.partial.tsv` to reset the accumulation (CI does,
/// so its artifacts are single-shot pairs).
fn save_partial(meta: &str, rows: &[(String, VmKind, Cycle)]) {
    let prior = load_partial(MODE);
    let floor_of = |scenario: &str, kind: &str, op: &str, fresh: f64| -> f64 {
        prior
            .as_ref()
            .and_then(|(_, rows)| {
                rows.iter()
                    .find(|(s, k, o, _, _)| s == scenario && k == kind && o == op)
                    .map(|r| r.3)
            })
            .map_or(fresh, |old| old.min(fresh))
    };
    let mut tsv = format!("meta\t{meta}\n");
    for (scenario, kind, cycle) in rows {
        for (i, op) in OPS.iter().enumerate() {
            let min = floor_of(scenario, kind.name(), op, cycle[i].min_ns);
            tsv.push_str(&format!(
                "{scenario}\t{}\t{op}\t{min:.2}\t{:.2}\n",
                kind.name(),
                cycle[i].mean_ns,
            ));
        }
    }
    let path = partial_path(MODE);
    if let Err(e) = std::fs::write(&path, tsv) {
        eprintln!("could not write {path}: {e}");
    }
}

/// Parsed partial: `(scenario, kind, op) -> (min_ns, mean_ns)`.
type Partial = Vec<(String, String, String, f64, f64)>;

fn load_partial(mode: &str) -> Option<(String, Partial)> {
    let text = std::fs::read_to_string(partial_path(mode)).ok()?;
    let mut meta = String::new();
    let mut rows = Vec::new();
    for line in text.lines() {
        let f: Vec<&str> = line.split('\t').collect();
        match f.as_slice() {
            ["meta", m] => meta = m.to_string(),
            [scenario, kind, op, min, mean] => rows.push((
                scenario.to_string(),
                kind.to_string(),
                op.to_string(),
                min.parse().ok()?,
                mean.parse().ok()?,
            )),
            _ => return None,
        }
    }
    Some((meta, rows))
}

fn emit_mode(jw: &mut JsonWriter, scenarios: &[&str], rows: &Partial) {
    for scenario in scenarios {
        jw.begin_object(scenario);
        for kind in VmKind::ALL {
            jw.begin_object(kind.name());
            for op in OPS {
                if let Some((_, _, _, min, mean)) = rows
                    .iter()
                    .find(|(s, k, o, _, _)| s == scenario && k == kind.name() && o == op)
                {
                    jw.begin_object(op);
                    jw.field_f64("min_ns", *min);
                    jw.field_f64("mean_ns", *mean);
                    jw.end_object();
                }
            }
            jw.end_object();
        }
        jw.end_object();
    }
}

fn main() {
    let iters = env_u64("MVCC_VM_ITERS", 8_000);
    let batches = env_u64("MVCC_VM_BATCHES", 15);
    let procs = env_u64("MVCC_VM_PROCS", 4) as usize;
    let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());
    let contended = format!("contended_p{procs}");
    let scenarios = ["uncontended".to_string(), contended.clone()];
    let overhead = timer_overhead_ns();

    println!(
        "vm_ops [{MODE}]: {iters} cycles x {batches} batches, contended at \
         p={procs}, nproc={nproc}, timer overhead {overhead:.1} ns/op"
    );

    let mut rows: Vec<(String, VmKind, Cycle)> = Vec::new();
    for kind in VmKind::ALL {
        // Uncontended: same P as the contended runs so set/release pay
        // the identical O(P) scan cost and the scenarios compare cleanly.
        let vm = kind.build(procs, 0);
        let cycle = time_cycles(vm.as_ref(), 0, iters, batches, 0);
        println!(
            "  {:<5} uncontended   acquire {:>8.1}  set {:>8.1}  release {:>8.1}  (min ns)",
            kind.name(),
            cycle[0].min_ns,
            cycle[1].min_ns,
            cycle[2].min_ns
        );
        rows.push(("uncontended".to_string(), kind, cycle));

        // Contended: one writer per pid. Each thread's token space is
        // disjoint; kinds where stale sets abort measure that path too.
        let vm = kind.build(procs, 0);
        let per_thread: Vec<Cycle> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..procs)
                .map(|k| {
                    let vm = vm.as_ref();
                    s.spawn(move || time_cycles(vm, k, iters, batches, (k as u64 + 1) << 40))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Aggregate across threads: mean of means, min of mins.
        let mut agg = Cycle::default();
        for i in 0..3 {
            agg[i].min_ns = per_thread
                .iter()
                .map(|c| c[i].min_ns)
                .fold(f64::INFINITY, f64::min);
            agg[i].mean_ns = per_thread.iter().map(|c| c[i].mean_ns).sum::<f64>() / procs as f64;
        }
        println!(
            "  {:<5} {contended} acquire {:>8.1}  set {:>8.1}  release {:>8.1}  (min ns)",
            kind.name(),
            agg[0].min_ns,
            agg[1].min_ns,
            agg[2].min_ns
        );
        rows.push((contended.clone(), kind, agg));
    }

    save_partial(
        &format!("iters={iters} batches={batches} procs={procs} timer_ns={overhead:.1}"),
        &rows,
    );

    // Assemble BENCH_vm.json from every partial present.
    let ours = load_partial(MODE).expect("just wrote our own partial");
    let other = load_partial(OTHER_MODE);

    let mut jw = JsonWriter::bench("vm_ops_latency");
    jw.field_u64("host_threads", nproc as u64);
    jw.field_u64("iters_per_batch", iters);
    jw.field_u64("batches", batches);
    jw.field_u64("contended_procs", procs as u64);
    jw.field_f64("timer_overhead_ns", overhead);
    jw.field_str(
        "note",
        "per-op latency includes one Instant::now() pair (timer_overhead_ns), \
         identical across modes; min_ns = minimum batch mean, min-merged across \
         runs of the same mode; strict_over_relaxed_min_ratio >= 1.0 means the \
         relaxed build is no slower; per-op floor deltas under 1 ns — the \
         harness's resolution on a shared host, where code-layout and frequency \
         jitter dominate — are reported as parity (1.0)",
    );
    let scenario_refs: Vec<&str> = scenarios.iter().map(|s| s.as_str()).collect();
    jw.begin_object("modes");
    let (relaxed, strict): (Option<&Partial>, Option<&Partial>) = if MODE == "relaxed" {
        (Some(&ours.1), other.as_ref().map(|o| &o.1))
    } else {
        (other.as_ref().map(|o| &o.1), Some(&ours.1))
    };
    if let Some(rows) = relaxed {
        jw.begin_object("relaxed");
        emit_mode(&mut jw, &scenario_refs, rows);
        jw.end_object();
    }
    if let Some(rows) = strict {
        jw.begin_object("strict_sc");
        emit_mode(&mut jw, &scenario_refs, rows);
        jw.end_object();
    }
    jw.end_object();

    match (relaxed, strict) {
        (Some(r), Some(s)) => {
            jw.begin_object("strict_over_relaxed_min_ratio");
            for scenario in &scenario_refs {
                jw.begin_object(scenario);
                for kind in VmKind::ALL {
                    jw.begin_object(kind.name());
                    for op in OPS {
                        let find = |rows: &Partial| {
                            rows.iter()
                                .find(|(sc, k, o, _, _)| {
                                    sc == scenario && k == kind.name() && o == op
                                })
                                .map(|(_, _, _, min, _)| *min)
                        };
                        if let (Some(rm), Some(sm)) = (find(r), find(s)) {
                            // Deltas under 1 ns are below the harness's
                            // resolution (code-layout and frequency
                            // jitter dominate there — see "note"):
                            // reported as parity, not a winner.
                            let ratio = if (sm - rm).abs() < 1.0 { 1.0 } else { sm / rm };
                            if rm > 0.0 {
                                jw.field_f64(op, ratio);
                            }
                        }
                    }
                    jw.end_object();
                }
                jw.end_object();
            }
            jw.end_object();
        }
        _ => {
            jw.field_str(
                "pending",
                &format!("run the {OTHER_MODE} build to record the other regime and the ratios"),
            );
        }
    }

    json::write_repo_root("BENCH_vm.json", &jw.finish());
}
