//! **Ablation: batch size vs throughput and latency** (Appendix F).
//!
//! The batching writer trades per-operation latency for throughput: a
//! larger batch amortizes the acquire/set/release cost and gives the
//! parallel `multi_insert` more work per commit, but every operation in
//! the batch waits for the whole batch to commit. Appendix F: "a larger
//! batch size leads to higher throughput because of better parallelism,
//! but at the cost of longer latency" — this bench sweeps the combiner's
//! target batch size and reports both sides of the trade.
//!
//! ```sh
//! cargo run --release -p mvcc-bench --bin ablation_batch
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mvcc_bench::{env_u64, run_secs};
use mvcc_core::{BatchWriter, Database, MapOp};
use mvcc_ftree::U64Map;

struct Outcome {
    ops: u64,
    commits: u64,
    mean_latency_us: f64,
}

fn run(producers: usize, target_batch: usize, secs: f64) -> Outcome {
    let db: Arc<Database<U64Map>> = Arc::new(Database::new(1));
    let bw: Arc<BatchWriter<U64Map>> =
        Arc::new(BatchWriter::new(producers, (4 * target_batch).max(1024)));
    let stop = Arc::new(AtomicBool::new(false));
    let latency_ns = Arc::new(AtomicU64::new(0));
    let latency_samples = Arc::new(AtomicU64::new(0));
    let mut ops_total = 0u64;

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let bw = Arc::clone(&bw);
                let stop = Arc::clone(&stop);
                let latency_ns = Arc::clone(&latency_ns);
                let latency_samples = Arc::clone(&latency_samples);
                s.spawn(move || {
                    let mut ops = 0u64;
                    let mut key = (p as u64) << 40;
                    while !stop.load(Ordering::Relaxed) {
                        key += 1;
                        // Sample latency sparsely so the wait does not
                        // dominate the producer's submission rate.
                        if ops.is_multiple_of(512) {
                            let t0 = Instant::now();
                            let ticket = bw.submit_blocking(p, MapOp::Insert(key, key));
                            bw.wait_applied(ticket);
                            latency_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            latency_samples.fetch_add(1, Ordering::Relaxed);
                        } else {
                            bw.submit_blocking(p, MapOp::Insert(key, key));
                        }
                        ops += 1;
                    }
                    ops
                })
            })
            .collect();

        // Combiner: wait until roughly `target_batch` operations are
        // pending (or a 50 ms deadline passes, the paper's latency cap),
        // then commit one batch.
        let combiner_db = Arc::clone(&db);
        let combiner_bw = Arc::clone(&bw);
        let combiner_stop = Arc::clone(&stop);
        let combiner = s.spawn(move || {
            let mut session = combiner_db.session().expect("combiner pid");
            let deadline = Duration::from_millis(50);
            loop {
                let t0 = Instant::now();
                loop {
                    let pending: usize = (0..producers).map(|p| combiner_bw.pending(p)).sum();
                    if pending >= target_batch || t0.elapsed() >= deadline {
                        break;
                    }
                    if combiner_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::yield_now();
                }
                combiner_bw.combine(&mut session);
                if combiner_stop.load(Ordering::Relaxed) {
                    // Final drain so no producer hangs in wait_applied.
                    while combiner_bw.combine(&mut session) > 0 {}
                    break;
                }
            }
        });

        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        combiner.join().unwrap();
        for h in handles {
            ops_total += h.join().unwrap();
        }
    });

    let samples = latency_samples.load(Ordering::Relaxed).max(1);
    Outcome {
        ops: ops_total,
        commits: db.stats().commits,
        mean_latency_us: latency_ns.load(Ordering::Relaxed) as f64 / samples as f64 / 1000.0,
    }
}

fn main() {
    let producers = env_u64("MVCC_PRODUCERS", 3).max(1) as usize;
    let secs = run_secs();
    let targets = [1usize, 16, 256, 4096];

    println!("Ablation — batch size vs throughput/latency (Appendix F)");
    println!("{producers} producers, 1 combiner, {secs}s per point, 50ms latency cap");
    println!();
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>14}",
        "target", "Kops/s", "commits/s", "ops/commit", "latency (us)"
    );
    println!("{}", "-".repeat(68));
    for target in targets {
        let o = run(producers, target, secs);
        println!(
            "{:>12} {:>12.1} {:>12.0} {:>14.1} {:>14.1}",
            target,
            o.ops as f64 / secs / 1000.0,
            o.commits as f64 / secs,
            o.ops as f64 / o.commits.max(1) as f64,
            o.mean_latency_us
        );
    }
    println!();
    println!("Expected shape: ops/commit and Kops/s rise with the target; latency rises too.");
}
