//! Minimal JSON assembly shared by the `BENCH_*.json` harnesses.
//!
//! The bench bins (`bulk`, `oversub`, `vm_ops`) each emit a small
//! machine-readable report at the repo root so successive PRs accumulate
//! a perf trajectory. They used to hand-roll the string assembly
//! (`push_str` + manual comma/brace bookkeeping) independently; this
//! module centralizes it. It is deliberately *not* a serializer — no
//! external dependency exists in this build environment (see
//! `shims/`) — just a pretty-printing writer with container bookkeeping
//! so the call sites read like the document they produce.
//!
//! ```
//! use mvcc_bench::json::JsonWriter;
//!
//! let mut w = JsonWriter::bench("example");
//! w.field_u64("host_threads", 1);
//! w.begin_object("configs");
//! w.begin_object("fast");
//! w.field_u64("mean_ns", 42);
//! w.end_object();
//! w.end_object();
//! let doc = w.finish();
//! assert!(doc.starts_with("{\n  \"bench\": \"example\","));
//! assert!(doc.ends_with("}\n"));
//! ```

/// A pretty-printing JSON object writer (2-space indent, one member per
/// line). Containers are balanced by [`JsonWriter::finish`], which
/// closes anything left open — call sites can bail out of loops without
/// brace bookkeeping.
pub struct JsonWriter {
    buf: String,
    /// One entry per open object: has it emitted a member yet?
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Open the root object and stamp the conventional `"bench"` name
    /// field every `BENCH_*.json` starts with.
    pub fn bench(name: &str) -> Self {
        let mut w = JsonWriter {
            buf: String::from("{"),
            stack: vec![false],
        };
        w.field_str("bench", name);
        w
    }

    fn escape(s: &str) -> String {
        // The harnesses only emit identifier-ish keys/values; escape the
        // two characters that could break the document anyway.
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }

    /// Start a member: comma for the container, newline, indent, key.
    fn key(&mut self, key: &str) {
        if let Some(populated) = self.stack.last_mut() {
            if *populated {
                self.buf.push(',');
            }
            *populated = true;
        }
        self.buf.push('\n');
        for _ in 0..self.stack.len() {
            self.buf.push_str("  ");
        }
        self.buf.push('"');
        self.buf.push_str(&Self::escape(key));
        self.buf.push_str("\": ");
    }

    /// A member whose value is pre-rendered JSON (e.g. a `{vec:?}` array
    /// of numbers). The caller guarantees validity.
    pub fn field_raw(&mut self, key: &str, raw: &str) {
        self.key(key);
        self.buf.push_str(raw);
    }

    /// An unsigned-integer member (covers the `u64`/`u128` timing sums).
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.field_raw(key, &v.to_string());
    }

    /// A `u128` member (nanosecond totals overflow `u64` aggregation).
    pub fn field_u128(&mut self, key: &str, v: u128) {
        self.field_raw(key, &v.to_string());
    }

    /// A float member, fixed to three decimals (ratios, milliseconds).
    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.field_raw(key, &format!("{v:.3}"));
    }

    /// A string member.
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&Self::escape(v));
        self.buf.push('"');
    }

    /// Open a nested object member.
    pub fn begin_object(&mut self, key: &str) {
        self.key(key);
        self.buf.push('{');
        self.stack.push(false);
    }

    /// Close the innermost object.
    pub fn end_object(&mut self) {
        assert!(self.stack.len() > 1, "cannot close the root object early");
        let populated = self.stack.pop().unwrap();
        if populated {
            self.buf.push('\n');
            for _ in 0..self.stack.len() {
                self.buf.push_str("  ");
            }
        }
        self.buf.push('}');
    }

    /// Close every open container (root included) and return the
    /// document, newline-terminated.
    pub fn finish(mut self) -> String {
        while self.stack.len() > 1 {
            self.end_object();
        }
        self.buf.push_str("\n}\n");
        self.buf
    }
}

/// Write `contents` to `<repo root>/<name>` (the convention every
/// `BENCH_*.json` follows; the CI stress job globs them up as a
/// workflow artifact), reporting the outcome on stdout/stderr like the
/// harnesses always did.
pub fn write_repo_root(name: &str, contents: &str) {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, contents) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_shape() {
        let mut w = JsonWriter::bench("t");
        w.field_u64("n", 7);
        w.begin_object("outer");
        w.begin_object("inner");
        w.field_f64("r", 1.0 / 3.0);
        w.end_object();
        w.begin_object("empty");
        w.end_object();
        w.end_object();
        let doc = w.finish();
        assert_eq!(
            doc,
            "{\n  \"bench\": \"t\",\n  \"n\": 7,\n  \"outer\": {\n    \
             \"inner\": {\n      \"r\": 0.333\n    },\n    \"empty\": {}\n  }\n}\n"
        );
    }

    #[test]
    fn finish_closes_open_containers() {
        let mut w = JsonWriter::bench("t");
        w.begin_object("a");
        w.begin_object("b");
        w.field_u64("x", 1);
        let doc = w.finish();
        assert!(doc.ends_with("\"x\": 1\n    }\n  }\n}\n"), "{doc}");
    }

    #[test]
    fn strings_escaped() {
        let w = JsonWriter::bench("q\"uote");
        let doc = w.finish();
        assert!(doc.contains("\"bench\": \"q\\\"uote\""));
    }
}
