//! Criterion microbenchmarks of the Version Maintenance operations across
//! all five algorithms (Table 1 / §7.1 support): per-op latency of the
//! acquire → release and acquire → set → release cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcc_vm::{VersionMaintenance, VmKind};

fn bench_read_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_read_cycle");
    for kind in VmKind::ALL {
        let vm = kind.build(16, 0);
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &(), |b, _| {
            b.iter(|| {
                std::hint::black_box(vm.acquire(0));
                vm.release(0, &mut out);
                out.clear();
            })
        });
    }
    g.finish();
}

fn bench_write_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_write_cycle");
    for kind in VmKind::ALL {
        let vm = kind.build(16, 0);
        let mut out = Vec::new();
        let mut token = 1u64;
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &(), |b, _| {
            b.iter(|| {
                vm.acquire(0);
                assert!(vm.set(0, token));
                token += 1;
                vm.release(0, &mut out);
                out.clear();
            })
        });
    }
    g.finish();
}

fn bench_acquire_scaling(c: &mut Criterion) {
    // Theorem 3.4: acquire O(1) regardless of P; set/release O(P).
    let mut g = c.benchmark_group("pswf_scaling");
    for p in [1usize, 16, 128] {
        let vm = mvcc_vm::PswfVm::new(p, 0);
        let mut out = Vec::new();
        g.bench_with_input(BenchmarkId::new("read_cycle_P", p), &p, |b, _| {
            b.iter(|| {
                std::hint::black_box(vm.acquire(0));
                vm.release(0, &mut out);
                out.clear();
            })
        });
        let vm = mvcc_vm::PswfVm::new(p, 0);
        let mut out = Vec::new();
        let mut token = 1u64;
        g.bench_with_input(BenchmarkId::new("write_cycle_P", p), &p, |b, _| {
            b.iter(|| {
                vm.acquire(0);
                assert!(vm.set(0, token));
                token += 1;
                vm.release(0, &mut out);
                out.clear();
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_read_cycle, bench_write_cycle, bench_acquire_scaling
}
criterion_main!(benches);
