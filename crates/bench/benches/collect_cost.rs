//! Criterion validation of Theorem 4.2: `collect` runs in O(S + 1) time
//! where S is the number of tuples freed — i.e. per-freed-tuple cost is
//! constant across version sizes, and releasing a version that shares all
//! but a path with a live version costs only the path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvcc_ftree::{Forest, U64Map};

fn bench_collect_whole_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("collect_whole_tree");
    g.sample_size(10);
    for s in [1_000u64, 10_000, 100_000] {
        g.throughput(Throughput::Elements(s));
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            let f: Forest<U64Map> = Forest::new();
            let items: Vec<(u64, u64)> = (0..s).map(|k| (k, k)).collect();
            b.iter_batched(
                || f.build_sorted(&items),
                |root| {
                    let freed = f.release(root);
                    assert_eq!(freed, s as usize);
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_collect_shared_path(c: &mut Criterion) {
    // Releasing a version that differs from a live one by a single insert
    // must free only O(log n) tuples no matter how big the tree is.
    let mut g = c.benchmark_group("collect_one_path");
    for n in [1_000u64, 100_000] {
        let f: Forest<U64Map> = Forest::new();
        let items: Vec<(u64, u64)> = (0..n).map(|k| (k * 2, k)).collect();
        let base = f.build_sorted(&items);
        let mut k = 1u64;
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                k = (k * 2654435761) % (2 * n);
                f.retain(base);
                let v2 = f.insert(base, k | 1, k); // odd key: always new
                let freed = f.release(v2);
                // Only the copied path (plus the new node) comes back.
                assert!(freed as u64 <= 2 + 2 * 64);
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_collect_whole_tree, bench_collect_shared_path
}
criterion_main!(benches);
