//! Contention microbenchmarks for the allocator and refcount hot paths.
//!
//! **Arena alloc/free sweep** — the de-serialization the sharded arena
//! buys. Each thread runs alloc/free churn (a 64-node working set,
//! mimicking a writer's path-copy-then-collect cycle) at thread counts
//! {1, 2, 4, 8} under three allocator configurations:
//!
//! * `single_shard` — `Arena::with_shards(1)`: the classic one-freelist
//!   allocator every thread serializes on (the pre-sharding baseline);
//! * `pinned` — sharded arena, each thread pinned to its own shard:
//!   the fast path, zero cross-thread traffic;
//! * `stealing` — sharded arena where each thread frees into an odd
//!   shard no thread allocates from, so every thread's own freelist
//!   stays permanently dry and (once the first fresh block drains)
//!   every allocation exercises the sibling-steal scan.
//!
//! Results are printed and written to `BENCH_arena.json` in the repo
//! root so successive PRs accumulate a perf trajectory.
//!
//! **SNZI vs fetch-and-add** — §4's reference-count contention remark:
//! every thread repeatedly "arrives" and "departs" and the only question
//! ever asked is *is the count zero?* With a single fetch-and-add word
//! all P threads serialize on one cache line; with a SNZI each thread's
//! traffic stays on its own leaf and only 0↔nonzero transitions climb.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use criterion::{BenchmarkId, Criterion, Throughput};
use mvcc_plm::{Arena, Leaf, NodeId, Snzi};

const OPS_PER_THREAD: u64 = 10_000;

/// All threads hammer arrive/depart pairs; returns once every thread has
/// completed its quota.
fn hammer(threads: usize, op: impl FnMut(usize) + Clone + Send) {
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = Arc::clone(&barrier);
            let mut op = op.clone();
            s.spawn(move || {
                barrier.wait();
                for _ in 0..OPS_PER_THREAD {
                    op(t);
                }
            });
        }
    });
}

fn bench_counters(c: &mut Criterion) {
    let max = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut g = c.benchmark_group("refcount_contention");
    for threads in [1usize, 2, 4, 8] {
        if threads > max {
            break;
        }
        g.throughput(Throughput::Elements(threads as u64 * OPS_PER_THREAD));

        let counter = Arc::new(AtomicU64::new(0));
        g.bench_with_input(
            BenchmarkId::new("fetch_add", threads),
            &threads,
            |b, &threads| {
                let counter = Arc::clone(&counter);
                b.iter(|| {
                    let counter = Arc::clone(&counter);
                    hammer(threads, move |_| {
                        counter.fetch_add(1, SeqCst);
                        std::hint::black_box(counter.load(SeqCst) > 0);
                        counter.fetch_sub(1, SeqCst);
                    });
                })
            },
        );

        let snzi = Arc::new(Snzi::new(threads.max(1)));
        g.bench_with_input(
            BenchmarkId::new("snzi", threads),
            &threads,
            |b, &threads| {
                let snzi = Arc::clone(&snzi);
                b.iter(|| {
                    let snzi = Arc::clone(&snzi);
                    hammer(threads, move |t| {
                        snzi.arrive(t);
                        std::hint::black_box(snzi.query());
                        snzi.depart(t);
                    });
                })
            },
        );
    }
    g.finish();
}

// ---------------------------------------------------------------------
// Arena alloc/free sweep
// ---------------------------------------------------------------------

const ARENA_PAIRS_PER_THREAD: u64 = 100_000;
const WORKING_SET: usize = 64;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    SingleShard,
    Pinned,
    Stealing,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::SingleShard => "single_shard",
            Variant::Pinned => "pinned",
            Variant::Stealing => "stealing",
        }
    }
}

/// Run `threads` workers of alloc/free churn; returns pairs/second.
fn arena_churn(variant: Variant, threads: usize) -> f64 {
    let arena: Arc<Arena<Leaf<u64>>> = Arc::new(match variant {
        Variant::SingleShard => Arena::with_shards(1),
        _ => Arena::with_shards(2 * threads.max(1)),
    });
    let barrier = Arc::new(Barrier::new(threads + 1));
    let elapsed = std::thread::scope(|s| {
        for t in 0..threads {
            let arena = Arc::clone(&arena);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let alloc_ctx = arena.ctx_for(2 * t);
                // Stealing: free into an odd shard. Threads only ever
                // allocate from even shards, so no freelist a thread owns
                // is ever replenished — once the first fresh block
                // drains, every allocation runs the sibling-steal scan
                // to recover the slots parked on the odd shards.
                let free_ctx = match variant {
                    Variant::Stealing => arena.ctx_for(2 * t + 1),
                    _ => alloc_ctx,
                };
                let mut held: Vec<NodeId> = Vec::with_capacity(WORKING_SET);
                barrier.wait();
                for i in 0..ARENA_PAIRS_PER_THREAD {
                    held.push(arena.alloc_in(alloc_ctx, Leaf(i)));
                    if held.len() == WORKING_SET {
                        for id in held.drain(..) {
                            arena.collect_in(free_ctx, id);
                        }
                    }
                }
                for id in held {
                    arena.collect_in(free_ctx, id);
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        start.elapsed()
    });
    assert_eq!(arena.live(), 0, "churn must end empty");
    (threads as u64 * ARENA_PAIRS_PER_THREAD) as f64 / elapsed.as_secs_f64()
}

fn bench_arena_sweep() -> String {
    let thread_counts = [1usize, 2, 4, 8];
    let variants = [Variant::SingleShard, Variant::Pinned, Variant::Stealing];
    let mut rates: Vec<(Variant, Vec<(usize, f64)>)> = Vec::new();
    println!("arena_alloc_free sweep ({ARENA_PAIRS_PER_THREAD} pairs/thread, working set {WORKING_SET}):");
    for variant in variants {
        let mut per_threads = Vec::new();
        for &threads in &thread_counts {
            let rate = arena_churn(variant, threads);
            println!(
                "bench  arena_alloc_free/{}/{threads:<2} {rate:>14.0} pairs/s",
                variant.name()
            );
            per_threads.push((threads, rate));
        }
        rates.push((variant, per_threads));
    }

    // Hand-rolled JSON (no serde in the shim set).
    let mut json = String::from("{\n  \"bench\": \"arena_alloc_free\",\n");
    json.push_str(&format!(
        "  \"pairs_per_thread\": {ARENA_PAIRS_PER_THREAD},\n  \"working_set\": {WORKING_SET},\n"
    ));
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str("  \"variants\": {\n");
    for (vi, (variant, per_threads)) in rates.iter().enumerate() {
        json.push_str(&format!("    \"{}\": {{", variant.name()));
        for (ti, (threads, rate)) in per_threads.iter().enumerate() {
            if ti > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!("\"{threads}\": {rate:.0}"));
        }
        json.push('}');
        json.push_str(if vi + 1 < rates.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n");
    let rate_of = |v: Variant, t: usize| {
        rates
            .iter()
            .find(|(var, _)| *var == v)
            .and_then(|(_, r)| r.iter().find(|(th, _)| *th == t))
            .map_or(0.0, |(_, r)| *r)
    };
    let baseline8 = rate_of(Variant::SingleShard, 8);
    let pinned8 = rate_of(Variant::Pinned, 8);
    json.push_str(&format!(
        "  \"speedup_pinned_vs_single_shard_8t\": {:.3},\n",
        if baseline8 > 0.0 {
            pinned8 / baseline8
        } else {
            0.0
        }
    ));
    let baseline1 = rate_of(Variant::SingleShard, 1);
    let pinned1 = rate_of(Variant::Pinned, 1);
    json.push_str(&format!(
        "  \"ratio_pinned_vs_single_shard_1t\": {:.3}\n}}\n",
        if baseline1 > 0.0 {
            pinned1 / baseline1
        } else {
            0.0
        }
    ));
    json
}

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    bench_counters(&mut criterion);

    let json = bench_arena_sweep();
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_arena.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
