//! Criterion microbenchmark for §4's reference-count contention remark:
//! fetch-and-add counters vs a dynamic non-zero indicator (SNZI, [2]).
//!
//! The workload is the hot pattern of the garbage collector's counts:
//! every thread repeatedly "arrives" (a parent starts sharing a tuple)
//! and "departs" (a collect drops one owner), and the only question ever
//! asked is *is the count zero?* With a single fetch-and-add word all
//! P threads serialize on one cache line; with a SNZI each thread's
//! traffic stays on its own leaf and only 0↔nonzero transitions climb.
//!
//! Expected shape: at 1 thread the plain counter wins (it is one
//! instruction); as threads grow the SNZI's per-op cost stays near-flat
//! while the fetch-and-add line degrades.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Barrier};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mvcc_plm::Snzi;

const OPS_PER_THREAD: u64 = 10_000;

/// All threads hammer arrive/depart pairs; returns once every thread has
/// completed its quota.
fn hammer(threads: usize, op: impl FnMut(usize) + Clone + Send) {
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = Arc::clone(&barrier);
            let mut op = op.clone();
            s.spawn(move || {
                barrier.wait();
                for _ in 0..OPS_PER_THREAD {
                    op(t);
                }
            });
        }
    });
}

fn bench_counters(c: &mut Criterion) {
    let max = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut g = c.benchmark_group("refcount_contention");
    for threads in [1usize, 2, 4, 8] {
        if threads > max {
            break;
        }
        g.throughput(Throughput::Elements(threads as u64 * OPS_PER_THREAD));

        let counter = Arc::new(AtomicU64::new(0));
        g.bench_with_input(
            BenchmarkId::new("fetch_add", threads),
            &threads,
            |b, &threads| {
                let counter = Arc::clone(&counter);
                b.iter(|| {
                    let counter = Arc::clone(&counter);
                    hammer(threads, move |_| {
                        counter.fetch_add(1, SeqCst);
                        std::hint::black_box(counter.load(SeqCst) > 0);
                        counter.fetch_sub(1, SeqCst);
                    });
                })
            },
        );

        let snzi = Arc::new(Snzi::new(threads.max(1)));
        g.bench_with_input(
            BenchmarkId::new("snzi", threads),
            &threads,
            |b, &threads| {
                let snzi = Arc::clone(&snzi);
                b.iter(|| {
                    let snzi = Arc::clone(&snzi);
                    hammer(threads, move |t| {
                        snzi.arrive(t);
                        std::hint::black_box(snzi.query());
                        snzi.depart(t);
                    });
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_counters
}
criterion_main!(benches);
