//! Criterion microbenchmarks of the functional tree: point ops, bulk ops
//! vs batch size (the §7.2 batching trade-off), and structural sharing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcc_ftree::{Forest, SumU64Map, U64Map};

const N: u64 = 100_000;

fn preloaded(f: &Forest<U64Map>) -> mvcc_ftree::Root {
    let items: Vec<(u64, u64)> = (0..N).map(|k| (k * 2, k)).collect();
    f.build_sorted(&items)
}

fn bench_point_ops(c: &mut Criterion) {
    let f: Forest<U64Map> = Forest::new();
    let root = preloaded(&f);
    let mut g = c.benchmark_group("ftree_point");
    let mut k = 1u64;
    g.bench_function("get_hit", |b| {
        b.iter(|| {
            k = (k * 2654435761) % (2 * N);
            std::hint::black_box(f.get(root, &((k / 2) * 2)))
        })
    });
    g.bench_function("get_miss", |b| {
        b.iter(|| {
            k = (k * 2654435761) % (2 * N);
            std::hint::black_box(f.get(root, &((k / 2) * 2 + 1)))
        })
    });
    g.bench_function("insert_release", |b| {
        b.iter(|| {
            k = (k * 2654435761) % (2 * N);
            f.retain(root);
            let t = f.insert(root, k, k);
            f.release(t);
        })
    });
    g.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    // Larger batches amortize path copying — the reason batching wins.
    let mut g = c.benchmark_group("ftree_multi_insert");
    g.sample_size(10);
    for batch in [10usize, 100, 1000, 10_000] {
        let f: Forest<U64Map> = Forest::new();
        let root = preloaded(&f);
        let items: Vec<(u64, u64)> = (0..batch as u64).map(|i| (i * 37 % (2 * N), i)).collect();
        g.throughput(criterion::Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                f.retain(root);
                let t = f.multi_insert(root, items.clone(), |_o, v| *v);
                f.release(t);
            })
        });
    }
    g.finish();
}

fn bench_union(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftree_union");
    g.sample_size(10);
    for m in [1_000u64, 10_000, 100_000] {
        let f: Forest<U64Map> = Forest::new();
        let a_items: Vec<(u64, u64)> = (0..N).map(|k| (k * 2, k)).collect();
        let b_items: Vec<(u64, u64)> = (0..m).map(|k| (k * 5 + 1, k)).collect();
        let a = f.build_sorted(&a_items);
        let bt = f.build_sorted(&b_items);
        g.bench_with_input(BenchmarkId::new("n100k_m", m), &m, |bch, _| {
            bch.iter(|| {
                f.retain(a);
                f.retain(bt);
                let u = f.union(a, bt);
                f.release(u);
            })
        });
    }
    g.finish();
}

fn bench_range_sum(c: &mut Criterion) {
    let f: Forest<SumU64Map> = Forest::new();
    let items: Vec<(u64, u64)> = (0..N).map(|k| (k, k)).collect();
    let root = f.build_sorted(&items);
    let mut g = c.benchmark_group("ftree_aug_range");
    let mut k = 1u64;
    g.bench_function("sum_1pct_range", |b| {
        b.iter(|| {
            k = (k * 2654435761) % (N - N / 100);
            std::hint::black_box(f.aug_range(root, &k, &(k + N / 100)))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_point_ops, bench_batch_size, bench_union, bench_range_sum
}
criterion_main!(benches);
