//! Criterion validation of delay-freedom (Theorem 5.4): a lookup inside a
//! read transaction costs (almost) the same as a raw tree lookup, and the
//! overhead does not grow with the configured process count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcc_core::Database;
use mvcc_ftree::{Forest, U64Map};

const N: u64 = 100_000;

fn bench_raw_vs_txn(c: &mut Criterion) {
    let items: Vec<(u64, u64)> = (0..N).map(|k| (k, k)).collect();

    let forest: Forest<U64Map> = Forest::new();
    let root = forest.build_sorted(&items);

    let mut g = c.benchmark_group("read_delay");
    let mut k = 1u64;
    g.bench_function("raw_get", |b| {
        b.iter(|| {
            k = (k * 2654435761) % N;
            std::hint::black_box(forest.get(root, &k))
        })
    });

    for p in [1usize, 16, 128] {
        let db: Database<U64Map> = Database::new(p);
        db.write(0, |f, base| {
            (f.multi_insert(base, items.clone(), |_o, v| *v), ())
        });
        g.bench_with_input(BenchmarkId::new("txn_get_P", p), &p, |b, _| {
            b.iter(|| {
                k = (k * 2654435761) % N;
                std::hint::black_box(db.read(0, |s| s.get(&k).copied()))
            })
        });
        // Amortized: one transaction covering 100 lookups (the paper's nq).
        g.bench_with_input(BenchmarkId::new("txn_get_batch100_P", p), &p, |b, _| {
            b.iter(|| {
                db.read(0, |s| {
                    let mut acc = 0u64;
                    for i in 0..100u64 {
                        let key = (k.wrapping_add(i) * 2654435761) % N;
                        acc = acc.wrapping_add(s.get(&key).copied().unwrap_or(0));
                    }
                    std::hint::black_box(acc)
                })
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_raw_vs_txn
}
criterion_main!(benches);
