//! Criterion validation of delay-freedom (Theorem 5.4) and of the
//! session redesign: a lookup inside a read transaction costs (almost)
//! the same as a raw tree lookup, the overhead does not grow with the
//! configured process count, and the `Session` path — reusable release
//! buffer, local counters, pinned shard — is no slower than the legacy
//! raw-pid path it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcc_core::Database;
use mvcc_ftree::{Forest, U64Map};

const N: u64 = 100_000;

fn bench_raw_vs_txn(c: &mut Criterion) {
    let items: Vec<(u64, u64)> = (0..N).map(|k| (k, k)).collect();

    let forest: Forest<U64Map> = Forest::new();
    let root = forest.build_sorted(&items);

    let mut g = c.benchmark_group("read_delay");
    let mut k = 1u64;
    g.bench_function("raw_get", |b| {
        b.iter(|| {
            k = (k * 2654435761) % N;
            std::hint::black_box(forest.get(root, &k))
        })
    });

    for p in [1usize, 16, 128] {
        let db: Database<U64Map> = Database::new(p);
        let mut session = db.session().unwrap();
        session.write(|txn| txn.multi_insert(items.clone(), |_o, v| *v));
        // Legacy raw-pid path (the deprecated shims; thread-local buffer).
        #[allow(deprecated)]
        g.bench_with_input(BenchmarkId::new("txn_get_pid_P", p), &p, |b, _| {
            b.iter(|| {
                k = (k * 2654435761) % N;
                std::hint::black_box(db.read(0, |s| s.get(&k).copied()))
            })
        });
        // Session path (owned buffer, local counters, pinned shard).
        g.bench_with_input(BenchmarkId::new("txn_get_session_P", p), &p, |b, _| {
            b.iter(|| {
                k = (k * 2654435761) % N;
                std::hint::black_box(session.read(|s| s.get(&k).copied()))
            })
        });
        // Amortized: one transaction covering 100 lookups (the paper's nq).
        g.bench_with_input(
            BenchmarkId::new("txn_get_session_batch100_P", p),
            &p,
            |b, _| {
                b.iter(|| {
                    session.read(|s| {
                        let mut acc = 0u64;
                        for i in 0..100u64 {
                            let key = (k.wrapping_add(i) * 2654435761) % N;
                            acc = acc.wrapping_add(s.get(&key).copied().unwrap_or(0));
                        }
                        std::hint::black_box(acc)
                    })
                })
            },
        );
    }
    g.finish();
}

fn bench_write_paths(c: &mut Criterion) {
    // Single-writer insert/overwrite commits: legacy pid path (global
    // atomics + fresh Vec history was the seed; now thread-local buffer)
    // vs session path (owned buffer + local counters). The acceptance
    // bar for the redesign is session <= pid.
    let mut g = c.benchmark_group("write_overhead");
    {
        let db: Database<U64Map> = Database::new(8);
        let mut k = 0u64;
        #[allow(deprecated)]
        g.bench_function("insert_pid", |b| {
            b.iter(|| {
                k = (k + 1) % 1024;
                db.insert(0, k, k);
            })
        });
    }
    {
        let db: Database<U64Map> = Database::new(8);
        let mut session = db.session().unwrap();
        let mut k = 0u64;
        g.bench_function("insert_session", |b| {
            b.iter(|| {
                k = (k + 1) % 1024;
                session.insert(k, k);
            })
        });
    }
    {
        let db: Database<U64Map> = Database::new(8);
        let mut session = db.session().unwrap();
        let mut k = 0u64;
        g.bench_function("insert_write_txn", |b| {
            b.iter(|| {
                k = (k + 1) % 1024;
                session.write(|txn| txn.insert(k, k));
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_raw_vs_txn, bench_write_paths
}
criterion_main!(benches);
