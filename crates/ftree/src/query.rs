//! Read-only queries: search, order statistics, iteration, and O(log n)
//! augmented range queries.
//!
//! None of these touch reference counts or any shared mutable state — a
//! reader executes exactly the instructions the sequential code would,
//! which is the mechanism behind the paper's *delay-free* read
//! transactions (Theorem 5.4).

use std::cmp::Ordering::{Equal, Greater, Less};
use std::ops::Bound;

use crate::forest::Forest;
use crate::node::Root;
use crate::params::TreeParams;

impl<P: TreeParams> Forest<P> {
    /// Look up `key`; O(log n), allocation-free.
    pub fn get<'a>(&'a self, t: Root, key: &P::K) -> Option<&'a P::V> {
        let mut cur = t;
        while let Some(id) = cur.get() {
            let n = self.node(id);
            match key.cmp(&n.key) {
                Less => cur = n.left,
                Greater => cur = n.right,
                Equal => return Some(&n.value),
            }
        }
        None
    }

    /// Does the map contain `key`?
    #[inline]
    pub fn contains(&self, t: Root, key: &P::K) -> bool {
        self.get(t, key).is_some()
    }

    /// Smallest entry, if any.
    pub fn min(&self, t: Root) -> Option<(&P::K, &P::V)> {
        let mut id = t.get()?;
        loop {
            let n = self.node(id);
            match n.left.get() {
                Some(l) => id = l,
                None => return Some((&n.key, &n.value)),
            }
        }
    }

    /// Largest entry, if any.
    pub fn max(&self, t: Root) -> Option<(&P::K, &P::V)> {
        let mut id = t.get()?;
        loop {
            let n = self.node(id);
            match n.right.get() {
                Some(r) => id = r,
                None => return Some((&n.key, &n.value)),
            }
        }
    }

    /// `i`-th smallest entry (0-based), if `i < size`.
    pub fn kth(&self, t: Root, mut i: usize) -> Option<(&P::K, &P::V)> {
        let mut cur = t;
        while let Some(id) = cur.get() {
            let n = self.node(id);
            let ls = self.size(n.left);
            match i.cmp(&ls) {
                Less => cur = n.left,
                Equal => return Some((&n.key, &n.value)),
                Greater => {
                    i -= ls + 1;
                    cur = n.right;
                }
            }
        }
        None
    }

    /// Number of keys strictly smaller than `key`.
    pub fn rank(&self, t: Root, key: &P::K) -> usize {
        let mut cur = t;
        let mut acc = 0;
        while let Some(id) = cur.get() {
            let n = self.node(id);
            match key.cmp(&n.key) {
                Less => cur = n.left,
                Equal => return acc + self.size(n.left),
                Greater => {
                    acc += self.size(n.left) + 1;
                    cur = n.right;
                }
            }
        }
        acc
    }

    /// In-order traversal.
    pub fn for_each(&self, t: Root, f: &mut impl FnMut(&P::K, &P::V)) {
        if let Some(id) = t.get() {
            let n = self.node(id);
            self.for_each(n.left, f);
            f(&n.key, &n.value);
            self.for_each(n.right, f);
        }
    }

    /// In-order traversal of the inclusive key range `[lo, hi]`, visiting
    /// O(log n + output) nodes.
    pub fn range_for_each(&self, t: Root, lo: &P::K, hi: &P::K, f: &mut impl FnMut(&P::K, &P::V)) {
        let Some(id) = t.get() else { return };
        let n = self.node(id);
        if *lo < n.key {
            self.range_for_each(n.left, lo, hi, f);
        }
        if *lo <= n.key && n.key <= *hi {
            f(&n.key, &n.value);
        }
        if n.key < *hi {
            self.range_for_each(n.right, lo, hi, f);
        }
    }

    /// Collect the whole map into a sorted vector (clones entries).
    pub fn to_vec(&self, t: Root) -> Vec<(P::K, P::V)> {
        let mut out = Vec::with_capacity(self.size(t));
        self.for_each(t, &mut |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// Monoid fold over all entries with keys in `[lo, hi]` (inclusive),
    /// computed from the cached node augmentations in O(log n) — the
    /// range-sum query of the paper's §7.1 experiments.
    pub fn aug_range(&self, t: Root, lo: &P::K, hi: &P::K) -> P::Aug {
        self.aug_range_bounds(t, Bound::Included(lo), Bound::Included(hi))
    }

    /// Like [`Forest::aug_range`] with explicit bounds.
    pub fn aug_range_bounds(&self, t: Root, lo: Bound<&P::K>, hi: Bound<&P::K>) -> P::Aug {
        let Some(id) = t.get() else {
            return P::aug_id();
        };
        let n = self.node(id);
        let below = match lo {
            Bound::Included(k) => n.key < *k,
            Bound::Excluded(k) => n.key <= *k,
            Bound::Unbounded => false,
        };
        if below {
            return self.aug_range_bounds(n.right, lo, hi);
        }
        let above = match hi {
            Bound::Included(k) => n.key > *k,
            Bound::Excluded(k) => n.key >= *k,
            Bound::Unbounded => false,
        };
        if above {
            return self.aug_range_bounds(n.left, lo, hi);
        }
        // Node inside the range: left side only needs the lower bound,
        // right side only the upper — each descends a single path.
        let left = self.aug_left(n.left, lo);
        let right = self.aug_right(n.right, hi);
        P::combine(&P::combine(&left, &P::make_aug(&n.key, &n.value)), &right)
    }

    /// Fold of all entries with key satisfying the lower bound (single
    /// right-spine descent; full subtrees contribute their cached aug).
    fn aug_left(&self, t: Root, lo: Bound<&P::K>) -> P::Aug {
        let Some(id) = t.get() else {
            return P::aug_id();
        };
        let n = self.node(id);
        let in_range = match lo {
            Bound::Included(k) => n.key >= *k,
            Bound::Excluded(k) => n.key > *k,
            Bound::Unbounded => true,
        };
        if in_range {
            let left = self.aug_left(n.left, lo);
            P::combine(
                &P::combine(&left, &P::make_aug(&n.key, &n.value)),
                &self.aug_total(n.right),
            )
        } else {
            self.aug_left(n.right, lo)
        }
    }

    /// Mirror image of [`Forest::aug_left`].
    fn aug_right(&self, t: Root, hi: Bound<&P::K>) -> P::Aug {
        let Some(id) = t.get() else {
            return P::aug_id();
        };
        let n = self.node(id);
        let in_range = match hi {
            Bound::Included(k) => n.key <= *k,
            Bound::Excluded(k) => n.key < *k,
            Bound::Unbounded => true,
        };
        if in_range {
            let right = self.aug_right(n.right, hi);
            P::combine(
                &P::combine(&self.aug_total(n.left), &P::make_aug(&n.key, &n.value)),
                &right,
            )
        } else {
            self.aug_right(n.left, hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{MaxU64Map, SumU64Map, U64Map};

    fn build(f: &Forest<SumU64Map>, keys: impl Iterator<Item = u64>) -> Root {
        let mut t = f.empty();
        for k in keys {
            t = f.insert(t, k, k);
        }
        t
    }

    #[test]
    fn range_sum_matches_naive() {
        let f: Forest<SumU64Map> = Forest::new();
        let t = build(&f, (0..1000).map(|k| k * 7 % 1000));
        for (lo, hi) in [
            (0u64, 999u64),
            (100, 100),
            (250, 750),
            (990, 10_000),
            (5, 6),
        ] {
            let naive: u64 = (lo..=hi.min(999)).filter(|k| *k <= 999).sum();
            assert_eq!(f.aug_range(t, &lo, &hi), naive, "range [{lo},{hi}]");
        }
        // Empty ranges.
        assert_eq!(f.aug_range(t, &500, &400), 0);
        f.release(t);
    }

    #[test]
    fn range_sum_exclusive_bounds() {
        let f: Forest<SumU64Map> = Forest::new();
        let t = build(&f, 0..100);
        use std::ops::Bound::*;
        assert_eq!(
            f.aug_range_bounds(t, Excluded(&10), Excluded(&20)),
            (11..=19).sum::<u64>()
        );
        assert_eq!(
            f.aug_range_bounds(t, Unbounded, Included(&5)),
            (0..=5).sum::<u64>()
        );
        assert_eq!(
            f.aug_range_bounds(t, Included(&95), Unbounded),
            (95..=99).sum::<u64>()
        );
        assert_eq!(
            f.aug_range_bounds(t, Unbounded, Unbounded),
            (0..100).sum::<u64>()
        );
        f.release(t);
    }

    #[test]
    fn max_augmentation_range() {
        let f: Forest<MaxU64Map> = Forest::new();
        let mut t = f.empty();
        for k in 0..200u64 {
            t = f.insert(t, k, (k * 37) % 199);
        }
        for (lo, hi) in [(0u64, 199u64), (50, 60), (120, 121)] {
            let naive = (lo..=hi.min(199)).map(|k| (k * 37) % 199).max().unwrap();
            assert_eq!(f.aug_range(t, &lo, &hi), naive);
        }
        f.release(t);
    }

    #[test]
    fn order_statistics() {
        let f: Forest<U64Map> = Forest::new();
        let keys = [13u64, 2, 77, 40, 8, 99, 55];
        let mut t = f.empty();
        for k in keys {
            t = f.insert(t, k, k);
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for (i, k) in sorted.iter().enumerate() {
            assert_eq!(f.kth(t, i).map(|(k, _)| *k), Some(*k));
            assert_eq!(f.rank(t, k), i);
        }
        assert_eq!(f.kth(t, 7), None);
        assert_eq!(f.rank(t, &1000), 7);
        assert_eq!(f.min(t).map(|(k, _)| *k), Some(2));
        assert_eq!(f.max(t).map(|(k, _)| *k), Some(99));
        f.release(t);
    }

    #[test]
    fn range_iteration() {
        let f: Forest<U64Map> = Forest::new();
        let mut t = f.empty();
        for k in (0..100u64).step_by(3) {
            t = f.insert(t, k, k);
        }
        let mut seen = Vec::new();
        f.range_for_each(t, &10, &40, &mut |k, _| seen.push(*k));
        assert_eq!(seen, vec![12, 15, 18, 21, 24, 27, 30, 33, 36, 39]);
        f.release(t);
    }

    #[test]
    fn empty_tree_queries() {
        let f: Forest<SumU64Map> = Forest::new();
        let t = f.empty();
        assert_eq!(f.get(t, &1), None);
        assert_eq!(f.min(t), None);
        assert_eq!(f.max(t), None);
        assert_eq!(f.kth(t, 0), None);
        assert_eq!(f.rank(t, &5), 0);
        assert_eq!(f.aug_range(t, &0, &100), 0);
        assert_eq!(f.to_vec(t), vec![]);
    }
}
