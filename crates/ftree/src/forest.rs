//! The `Forest`: an arena of persistent trees plus the join-based core
//! (`join`, `split`, `insert`, `remove`) every other operation is built on.

use mvcc_plm::{AllocCtx, Arena, NodeId, OptNodeId};

use crate::node::{Node, Root};
use crate::params::TreeParams;

/// A family of persistent ordered maps sharing one tuple arena. Each map
/// version is a [`Root`]; versions share structure via path copying.
///
/// See the crate docs for the reference-count move-semantics convention:
/// update operations consume one owned reference per input root and return
/// one owned reference to the result.
pub struct Forest<P: TreeParams> {
    arena: Arena<Node<P>>,
}

impl<P: TreeParams> Default for Forest<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: TreeParams> Forest<P> {
    /// Create an empty forest.
    pub fn new() -> Self {
        Forest {
            arena: Arena::new(),
        }
    }

    /// The underlying arena (statistics, advanced use).
    pub fn arena(&self) -> &Arena<Node<P>> {
        &self.arena
    }

    // ------------------------------------------------------------------
    // Allocation contexts (sharded arena)
    // ------------------------------------------------------------------
    //
    // Node allocation goes through the calling thread's arena shard by
    // default; a writer that batches many updates (or a harness driving
    // one logical process across threads) can pin one shard over a whole
    // operation so every path-copied node and every collected slot stays
    // on a single freelist.

    /// The calling thread's allocation context.
    pub fn alloc_ctx(&self) -> AllocCtx {
        self.arena.ctx()
    }

    /// A deterministic context (e.g. one per process or producer id).
    pub fn ctx_for(&self, seed: usize) -> AllocCtx {
        self.arena.ctx_for(seed)
    }

    /// Run `f` with all allocation and collection on this thread routed
    /// through `ctx`'s shard — no parameter threading through recursive
    /// tree code required.
    pub fn with_ctx<R>(&self, ctx: AllocCtx, f: impl FnOnce() -> R) -> R {
        self.arena.with_ctx(ctx, f)
    }

    /// Run one fork-join subtask with allocation routed through the
    /// *executing* thread's own shard.
    ///
    /// The parallel bulk operations wrap both halves of every
    /// `rayon::join` in this: a stolen half then allocates and collects
    /// through its thief's shard (one freelist per allocating thread —
    /// the sharded arena's contract), instead of inheriting whatever pin
    /// happened to be installed on the forking thread.
    #[inline]
    pub(crate) fn with_task_ctx<R>(&self, f: impl FnOnce() -> R) -> R {
        self.arena.with_ctx(self.arena.task_ctx(), f)
    }

    /// [`Forest::insert`] through an explicit allocation context.
    pub fn insert_in(&self, ctx: AllocCtx, t: Root, key: P::K, value: P::V) -> Root {
        self.with_ctx(ctx, || self.insert(t, key, value))
    }

    /// [`Forest::remove`] through an explicit allocation context.
    pub fn remove_in(&self, ctx: AllocCtx, t: Root, key: &P::K) -> (Root, Option<P::V>) {
        self.with_ctx(ctx, || self.remove(t, key))
    }

    /// [`Forest::release`] through an explicit allocation context: the
    /// freed tuples land on `ctx`'s shard freelist.
    pub fn release_in(&self, ctx: AllocCtx, root: Root) -> usize {
        self.with_ctx(ctx, || self.release(root))
    }

    /// The empty map.
    #[inline]
    pub fn empty(&self) -> Root {
        OptNodeId::NONE
    }

    /// Add one owner to a root (snapshot retention). Nil is a no-op.
    #[inline]
    pub fn retain(&self, root: Root) {
        self.arena.inc_opt(root);
    }

    /// Give up one owned reference to a root, precisely collecting every
    /// tuple that thereby becomes unreachable. Returns the number of tuples
    /// freed.
    #[inline]
    pub fn release(&self, root: Root) -> usize {
        self.arena.collect_opt(root)
    }

    // ------------------------------------------------------------------
    // Cached-field helpers (read-only, no rc effects)
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> &Node<P> {
        self.arena.get(id)
    }

    /// AVL height of a (possibly nil) subtree.
    #[inline]
    pub(crate) fn height(&self, t: Root) -> u8 {
        match t.get() {
            Some(id) => self.node(id).height,
            None => 0,
        }
    }

    /// Number of entries in a (possibly nil) subtree.
    #[inline]
    pub fn size(&self, t: Root) -> usize {
        match t.get() {
            Some(id) => self.node(id).size as usize,
            None => 0,
        }
    }

    /// Cached augmentation of a whole (possibly nil) subtree.
    #[inline]
    pub fn aug_total(&self, t: Root) -> P::Aug {
        match t.get() {
            Some(id) => self.node(id).aug.clone(),
            None => P::aug_id(),
        }
    }

    // ------------------------------------------------------------------
    // Node construction / destruction (the PLM `tuple` instruction)
    // ------------------------------------------------------------------

    /// Create a node owning `l` and `r` (ownership of both transfers in).
    pub(crate) fn make(&self, l: Root, key: P::K, value: P::V, r: Root) -> NodeId {
        let mut aug = P::make_aug(&key, &value);
        if let Some(lid) = l.get() {
            aug = P::combine(&self.node(lid).aug, &aug);
        }
        if let Some(rid) = r.get() {
            aug = P::combine(&aug, &self.node(rid).aug);
        }
        let size = 1 + self.size(l) as u32 + self.size(r) as u32;
        let height = 1 + self.height(l).max(self.height(r));
        self.arena.alloc(Node {
            key,
            value,
            aug,
            size,
            height,
            left: l,
            right: r,
        })
    }

    /// Destructure an owned node into `(left, key, value, right)`,
    /// consuming the caller's reference.
    ///
    /// If the caller owns the *only* reference, the node is dismantled in
    /// place (no copy, slot recycled); otherwise the entry is cloned and
    /// the children gain one owner each — this is exactly path copying,
    /// performed lazily at the moment a shared node must change.
    pub(crate) fn expose_owned(&self, id: NodeId) -> (Root, P::K, P::V, Root) {
        if self.arena.rc(id) == 1 {
            // Exclusive: move everything out, recycle the slot.
            let n = self.arena.take(id);
            (n.left, n.key, n.value, n.right)
        } else {
            let (l, r, key, value) = {
                let n = self.node(id);
                (n.left, n.right, n.key.clone(), n.value.clone())
            };
            // Order matters under concurrent collectors: secure the
            // children before giving up our reference to the parent.
            self.arena.inc_opt(l);
            self.arena.inc_opt(r);
            self.arena.collect(id);
            (l, key, value, r)
        }
    }

    // ------------------------------------------------------------------
    // Join-based core (Just Join, AVL variant)
    // ------------------------------------------------------------------

    /// Join two trees around a middle entry: every key in `l` is smaller
    /// and every key in `r` larger than `key`. O(|height(l) − height(r)|).
    pub(crate) fn join(&self, l: Root, key: P::K, value: P::V, r: Root) -> Root {
        let (hl, hr) = (self.height(l), self.height(r));
        if hl > hr + 1 {
            OptNodeId::some(self.join_right(l.unwrap(), key, value, r))
        } else if hr > hl + 1 {
            OptNodeId::some(self.join_left(l, key, value, r.unwrap()))
        } else {
            OptNodeId::some(self.make(l, key, value, r))
        }
    }

    /// `height(l) > height(r) + 1`: descend l's right spine.
    fn join_right(&self, l: NodeId, key: P::K, value: P::V, r: Root) -> NodeId {
        let (ll, lk, lv, lr) = self.expose_owned(l);
        if self.height(lr) <= self.height(r) + 1 {
            let t = self.make(lr, key, value, r);
            if self.height(OptNodeId::some(t)) <= self.height(ll) + 1 {
                self.make(ll, lk, lv, OptNodeId::some(t))
            } else {
                let rotated = self.rotate_right(t);
                self.rotate_left(self.make(ll, lk, lv, OptNodeId::some(rotated)))
            }
        } else {
            let t = self.join_right(lr.unwrap(), key, value, r);
            let th = self.node(t).height;
            let joined = self.make(ll, lk, lv, OptNodeId::some(t));
            if th <= self.height(ll) + 1 {
                joined
            } else {
                self.rotate_left(joined)
            }
        }
    }

    /// Mirror image of [`Forest::join_right`].
    fn join_left(&self, l: Root, key: P::K, value: P::V, r: NodeId) -> NodeId {
        let (rl, rk, rv, rr) = self.expose_owned(r);
        if self.height(rl) <= self.height(l) + 1 {
            let t = self.make(l, key, value, rl);
            if self.height(OptNodeId::some(t)) <= self.height(rr) + 1 {
                self.make(OptNodeId::some(t), rk, rv, rr)
            } else {
                let rotated = self.rotate_left(t);
                self.rotate_right(self.make(OptNodeId::some(rotated), rk, rv, rr))
            }
        } else {
            let t = self.join_left(l, key, value, rl.unwrap());
            let th = self.node(t).height;
            let joined = self.make(OptNodeId::some(t), rk, rv, rr);
            if th <= self.height(rr) + 1 {
                joined
            } else {
                self.rotate_right(joined)
            }
        }
    }

    fn rotate_left(&self, t: NodeId) -> NodeId {
        let (l, k, v, r) = self.expose_owned(t);
        let (rl, rk, rv, rr) = self.expose_owned(r.unwrap());
        let new_l = self.make(l, k, v, rl);
        self.make(OptNodeId::some(new_l), rk, rv, rr)
    }

    fn rotate_right(&self, t: NodeId) -> NodeId {
        let (l, k, v, r) = self.expose_owned(t);
        let (ll, lk, lv, lr) = self.expose_owned(l.unwrap());
        let new_r = self.make(lr, k, v, r);
        self.make(ll, lk, lv, OptNodeId::some(new_r))
    }

    /// Split `t` by `key` into `(< key, entry at key, > key)`. Consumes
    /// `t`; both returned roots are owned.
    #[allow(clippy::type_complexity)]
    pub fn split(&self, t: Root, key: &P::K) -> (Root, Option<(P::K, P::V)>, Root) {
        let Some(id) = t.get() else {
            return (OptNodeId::NONE, None, OptNodeId::NONE);
        };
        let (l, k, v, r) = self.expose_owned(id);
        match key.cmp(&k) {
            std::cmp::Ordering::Less => {
                let (ll, m, lr) = self.split(l, key);
                (ll, m, self.join(lr, k, v, r))
            }
            std::cmp::Ordering::Greater => {
                let (rl, m, rr) = self.split(r, key);
                (self.join(l, k, v, rl), m, rr)
            }
            std::cmp::Ordering::Equal => (l, Some((k, v)), r),
        }
    }

    /// Remove and return the rightmost entry. Consumes `t`.
    pub(crate) fn split_last(&self, t: NodeId) -> (Root, P::K, P::V) {
        let (l, k, v, r) = self.expose_owned(t);
        match r.get() {
            None => (l, k, v),
            Some(rid) => {
                let (rest, lk, lv) = self.split_last(rid);
                (self.join(l, k, v, rest), lk, lv)
            }
        }
    }

    /// Join two trees where every key of `l` is smaller than every key of
    /// `r`, with no middle entry. Consumes both.
    pub fn join2(&self, l: Root, r: Root) -> Root {
        match l.get() {
            None => r,
            Some(lid) => {
                let (rest, k, v) = self.split_last(lid);
                self.join(rest, k, v, r)
            }
        }
    }

    // ------------------------------------------------------------------
    // Point updates
    // ------------------------------------------------------------------

    /// A one-entry map.
    pub fn singleton(&self, key: P::K, value: P::V) -> Root {
        OptNodeId::some(self.make(OptNodeId::NONE, key, value, OptNodeId::NONE))
    }

    /// Insert (replacing any existing value). Consumes `t`.
    pub fn insert(&self, t: Root, key: P::K, value: P::V) -> Root {
        self.insert_with(t, key, value, |_old, new| new.clone())
    }

    /// Insert, resolving duplicates with `combine(old, new)`. Consumes `t`.
    pub fn insert_with(
        &self,
        t: Root,
        key: P::K,
        value: P::V,
        combine: impl Fn(&P::V, &P::V) -> P::V + Copy,
    ) -> Root {
        let Some(id) = t.get() else {
            return self.singleton(key, value);
        };
        let (l, k, v, r) = self.expose_owned(id);
        match key.cmp(&k) {
            std::cmp::Ordering::Less => {
                let l2 = self.insert_with(l, key, value, combine);
                self.join(l2, k, v, r)
            }
            std::cmp::Ordering::Greater => {
                let r2 = self.insert_with(r, key, value, combine);
                self.join(l, k, v, r2)
            }
            std::cmp::Ordering::Equal => {
                let merged = combine(&v, &value);
                self.join(l, key, merged, r)
            }
        }
    }

    /// Remove `key`; returns the new root and the removed value, if any.
    /// Consumes `t`.
    pub fn remove(&self, t: Root, key: &P::K) -> (Root, Option<P::V>) {
        let Some(id) = t.get() else {
            return (OptNodeId::NONE, None);
        };
        let (l, k, v, r) = self.expose_owned(id);
        match key.cmp(&k) {
            std::cmp::Ordering::Less => {
                let (l2, removed) = self.remove(l, key);
                (self.join(l2, k, v, r), removed)
            }
            std::cmp::Ordering::Greater => {
                let (r2, removed) = self.remove(r, key);
                (self.join(l, k, v, r2), removed)
            }
            std::cmp::Ordering::Equal => (self.join2(l, r), Some(v)),
        }
    }

    // ------------------------------------------------------------------
    // Structural audit (used heavily by tests)
    // ------------------------------------------------------------------

    /// Verify order, AVL balance, cached sizes/heights/augmentations and
    /// positive reference counts for the whole subtree. Panics on any
    /// violation; returns the entry count. `O(n)` — test/debug use only.
    pub fn check_invariants(&self, t: Root) -> usize
    where
        P::Aug: PartialEq + std::fmt::Debug,
    {
        fn go<P: TreeParams>(
            f: &Forest<P>,
            t: Root,
            lo: Option<&P::K>,
            hi: Option<&P::K>,
        ) -> (usize, u8, P::Aug)
        where
            P::Aug: PartialEq + std::fmt::Debug,
        {
            let Some(id) = t.get() else {
                return (0, 0, P::aug_id());
            };
            assert!(f.arena.rc(id) >= 1, "non-positive rc at {id:?}");
            let n = f.node(id);
            if let Some(lo) = lo {
                assert!(n.key > *lo, "order violation (left bound)");
            }
            if let Some(hi) = hi {
                assert!(n.key < *hi, "order violation (right bound)");
            }
            let (ls, lh, la) = go(f, n.left, lo, Some(&n.key));
            let (rs, rh, ra) = go(f, n.right, Some(&n.key), hi);
            assert!(
                lh.abs_diff(rh) <= 1,
                "AVL balance violated at {id:?}: {lh} vs {rh}"
            );
            let h = 1 + lh.max(rh);
            assert_eq!(n.height, h, "cached height wrong at {id:?}");
            let s = 1 + ls + rs;
            assert_eq!(n.size as usize, s, "cached size wrong at {id:?}");
            let aug = P::combine(&P::combine(&la, &P::make_aug(&n.key, &n.value)), &ra);
            assert_eq!(n.aug, aug, "cached augmentation wrong at {id:?}");
            (s, h, aug)
        }
        go(self, t, None, None).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{SumU64Map, U64Map};

    #[test]
    fn insert_find_remove_roundtrip() {
        let f: Forest<U64Map> = Forest::new();
        let mut t = f.empty();
        for k in [5u64, 3, 8, 1, 9, 4, 7] {
            t = f.insert(t, k, k * 10);
        }
        f.check_invariants(t);
        assert_eq!(f.size(t), 7);
        assert_eq!(f.get(t, &8), Some(&80));
        assert_eq!(f.get(t, &2), None);
        let (t2, removed) = f.remove(t, &8);
        assert_eq!(removed, Some(80));
        assert_eq!(f.get(t2, &8), None);
        f.check_invariants(t2);
        f.release(t2);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn insert_replaces_and_combines() {
        let f: Forest<U64Map> = Forest::new();
        let t = f.insert(f.empty(), 1, 10);
        let t = f.insert(t, 1, 20);
        assert_eq!(f.get(t, &1), Some(&20));
        assert_eq!(f.size(t), 1);
        let t = f.insert_with(t, 1, 5, |old, new| old + new);
        assert_eq!(f.get(t, &1), Some(&25));
        f.release(t);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn path_copy_preserves_snapshot() {
        let f: Forest<U64Map> = Forest::new();
        let mut v1 = f.empty();
        for k in 0..100u64 {
            v1 = f.insert(v1, k, k);
        }
        f.retain(v1);
        let mut v2 = f.insert(v1, 1000, 1000);
        for k in 0..50u64 {
            let (t, _) = f.remove(v2, &k);
            v2 = t;
        }
        // v1 unchanged.
        assert_eq!(f.size(v1), 100);
        for k in 0..100u64 {
            assert_eq!(f.get(v1, &k), Some(&k), "snapshot corrupted at {k}");
        }
        // v2 mutated.
        assert_eq!(f.size(v2), 51);
        assert_eq!(f.get(v2, &1000), Some(&1000));
        f.check_invariants(v1);
        f.check_invariants(v2);
        f.release(v1);
        f.release(v2);
        assert_eq!(f.arena().live(), 0, "precise GC leaves nothing");
    }

    #[test]
    fn split_and_join2() {
        let f: Forest<U64Map> = Forest::new();
        let mut t = f.empty();
        for k in 0..50u64 {
            t = f.insert(t, k, k);
        }
        let (l, m, r) = f.split(t, &20);
        assert_eq!(m, Some((20, 20)));
        assert_eq!(f.size(l), 20);
        assert_eq!(f.size(r), 29);
        f.check_invariants(l);
        f.check_invariants(r);
        let joined = f.join2(l, r);
        assert_eq!(f.size(joined), 49);
        assert_eq!(f.get(joined, &20), None);
        f.check_invariants(joined);
        f.release(joined);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn split_absent_key() {
        let f: Forest<U64Map> = Forest::new();
        let mut t = f.empty();
        for k in (0..40u64).step_by(2) {
            t = f.insert(t, k, k);
        }
        let (l, m, r) = f.split(t, &7);
        assert_eq!(m, None);
        assert_eq!(f.size(l), 4); // 0 2 4 6
        assert_eq!(f.size(r), 16);
        f.release(l);
        f.release(r);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn ascending_descending_and_random_insertions_stay_balanced() {
        let f: Forest<U64Map> = Forest::new();
        let n = 2_000u64;
        let mut asc = f.empty();
        for k in 0..n {
            asc = f.insert(asc, k, k);
        }
        assert_eq!(f.check_invariants(asc), n as usize);
        assert!(f.height(asc) as f64 <= 1.45 * (n as f64).log2() + 2.0);
        let mut desc = f.empty();
        for k in (0..n).rev() {
            desc = f.insert(desc, k, k);
        }
        assert_eq!(f.check_invariants(desc), n as usize);
        f.release(asc);
        f.release(desc);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn sum_augmentation_maintained_through_updates() {
        let f: Forest<SumU64Map> = Forest::new();
        let mut t = f.empty();
        let mut expected = 0u64;
        for k in 0..500u64 {
            t = f.insert(t, k, k * 3);
            expected += k * 3;
        }
        assert_eq!(f.aug_total(t), expected);
        let (t, removed) = f.remove(t, &100);
        expected -= removed.unwrap();
        assert_eq!(f.aug_total(t), expected);
        f.check_invariants(t);
        f.release(t);
    }

    #[test]
    fn ctx_variants_match_default_paths() {
        let f: Forest<U64Map> = Forest::new();
        let ctx = f.ctx_for(1);
        let mut t = f.empty();
        for k in [5u64, 3, 8, 1, 9] {
            t = f.insert_in(ctx, t, k, k * 10);
        }
        f.check_invariants(t);
        assert_eq!(f.get(t, &8), Some(&80));
        let (t2, removed) = f.remove_in(ctx, t, &8);
        assert_eq!(removed, Some(80));
        f.check_invariants(t2);
        let batch: Vec<(u64, u64)> = (100..150u64).map(|k| (k, k)).collect();
        let t3 = f.multi_insert_in(ctx, t2, batch, |_o, n| *n);
        assert_eq!(f.size(t3), 54);
        let t4 = f.multi_remove_in(ctx, t3, (100..150u64).collect());
        assert_eq!(f.size(t4), 4);
        f.release_in(ctx, t4);
        assert_eq!(f.arena().live(), 0);
    }

    #[test]
    fn many_snapshots_share_structure() {
        let f: Forest<U64Map> = Forest::new();
        let mut roots = Vec::new();
        let mut t = f.empty();
        for k in 0..200u64 {
            t = f.insert(t, k, k);
            f.retain(t);
            roots.push(t);
        }
        // 200 versions of sizes 1..=200, but far fewer than 200*100 nodes.
        let live = f.arena().live();
        assert!(live < 5_000, "sharing failed: {live} nodes live");
        for (i, r) in roots.iter().enumerate() {
            assert_eq!(f.size(*r), i + 1);
        }
        for r in roots {
            f.release(r);
        }
        f.release(t);
        assert_eq!(f.arena().live(), 0);
    }
}
